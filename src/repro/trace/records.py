"""Immutable record types for access traces.

A trace is a time-ordered sequence of :class:`Request` records plus a
catalog of the :class:`Document` objects those requests touch.  These
types carry exactly the fields the paper's protocols can observe in a
server log — timestamp, client, document, size, status — and nothing
else, honouring the paper's constraint that the protocols use only
log-derivable information (section 2.1).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..errors import TraceFormatError

#: HTTP status codes treated as successful document deliveries.
SUCCESS_STATUSES = frozenset({200, 203, 206, 304})


@dataclass(frozen=True, slots=True)
class Document:
    """A servable object ("document" in the paper's broad sense).

    The paper uses *document* for any multimedia object — HTML pages,
    inline images, audio, etc.

    Attributes:
        doc_id: Stable identifier (URL path for real logs).
        size: Size in bytes; must be non-negative.
        kind: Coarse type tag, e.g. ``"page"`` or ``"embedded"``.
        home_server: Identifier of the home server that produces it.
        mutable: Whether the document belongs to the frequently-updated
            ("mutable") class of section 2.
    """

    doc_id: str
    size: int
    kind: str = "page"
    home_server: str = "origin"
    mutable: bool = False

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise TraceFormatError("document id must be non-empty")
        if self.size < 0:
            raise TraceFormatError(f"document {self.doc_id!r} has negative size")


@dataclass(frozen=True, slots=True)
class Request:
    """One logged access.

    Attributes:
        timestamp: Seconds since the trace epoch (monotone within a trace).
        client: Client (host) identifier.
        doc_id: Identifier of the requested document.
        size: Bytes delivered for this access.
        status: HTTP status code (200 for synthetic traces).
        method: HTTP method; only ``GET`` requests carry documents.
        remote: True if the client is outside the server's own
            organisation — the remote/local split of section 2.
    """

    timestamp: float
    client: str
    doc_id: str
    size: int
    status: int = 200
    method: str = "GET"
    remote: bool = True

    def __post_init__(self) -> None:
        if not self.client:
            raise TraceFormatError("request client must be non-empty")
        if not self.doc_id:
            raise TraceFormatError("request doc_id must be non-empty")
        if self.size < 0:
            raise TraceFormatError("request size must be non-negative")

    @property
    def ok(self) -> bool:
        """True when the access successfully delivered a document."""
        return self.status in SUCCESS_STATUSES


class Trace:
    """A time-ordered sequence of requests with a document catalog.

    The constructor validates ordering; use ``sort=True`` to accept
    unordered input (e.g. merged logs) and sort it on ingest.

    Args:
        requests: The access records.
        documents: Catalog of documents; missing entries are synthesised
            from the largest size observed per ``doc_id`` so that real
            logs (which carry no catalog) still work.
        sort: Sort requests by timestamp instead of requiring order.
    """

    def __init__(
        self,
        requests: Iterable[Request],
        documents: Iterable[Document] = (),
        *,
        sort: bool = False,
    ):
        reqs = list(requests)
        if sort:
            reqs.sort(key=lambda r: r.timestamp)
        else:
            for earlier, later in zip(reqs, reqs[1:]):
                if later.timestamp < earlier.timestamp:
                    raise TraceFormatError(
                        "requests out of order; pass sort=True to sort on ingest"
                    )
        self._requests: list[Request] = reqs
        self._timestamps: list[float] = [r.timestamp for r in reqs]

        # Colliding catalog ids keep the largest cataloged size — the
        # same rule merge() documents, so merging traces and building
        # one from concatenated catalogs agree.
        catalog: dict[str, Document] = {}
        for document in documents:
            known = catalog.get(document.doc_id)
            if known is None or document.size > known.size:
                catalog[document.doc_id] = document
        for request in reqs:
            known = catalog.get(request.doc_id)
            if known is None or request.size > known.size:
                catalog[request.doc_id] = Document(
                    doc_id=request.doc_id,
                    size=max(request.size, known.size if known else 0),
                    kind=known.kind if known else "page",
                    home_server=known.home_server if known else "origin",
                    mutable=known.mutable if known else False,
                )
        self._documents = catalog

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    def __repr__(self) -> str:
        span = self.duration
        return (
            f"Trace({len(self._requests)} requests, "
            f"{len(self._documents)} documents, {span:.0f}s span)"
        )

    # -- accessors -----------------------------------------------------------

    @property
    def requests(self) -> Sequence[Request]:
        """The underlying request list (read-only view by convention)."""
        return self._requests

    @property
    def timestamps(self) -> Sequence[float]:
        """Request timestamps in trace order (read-only by convention).

        Kept alongside the requests for binary searches; exposed so
        vectorized consumers can build arrays without re-walking the
        request objects.
        """
        return self._timestamps

    @property
    def documents(self) -> dict[str, Document]:
        """Catalog mapping ``doc_id`` to :class:`Document`."""
        return self._documents

    @property
    def start_time(self) -> float:
        """Timestamp of the first request (0.0 for an empty trace)."""
        return self._timestamps[0] if self._timestamps else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last request (0.0 for an empty trace)."""
        return self._timestamps[-1] if self._timestamps else 0.0

    @property
    def duration(self) -> float:
        """Seconds between first and last request."""
        return self.end_time - self.start_time

    def clients(self) -> set[str]:
        """The set of distinct client identifiers."""
        return {r.client for r in self._requests}

    def document_size(self, doc_id: str) -> int:
        """Size in bytes of a cataloged document.

        Raises:
            TraceFormatError: If the document is unknown.
        """
        try:
            return self._documents[doc_id].size
        except KeyError:
            raise TraceFormatError(f"unknown document {doc_id!r}") from None

    def total_bytes(self) -> int:
        """Total bytes delivered across all requests."""
        return sum(r.size for r in self._requests)

    # -- derived traces -------------------------------------------------------

    def window(self, start: float, end: float) -> "Trace":
        """Return the sub-trace with ``start <= timestamp < end``.

        Uses binary search, so slicing a long trace into daily windows
        is cheap.  The document catalog is re-derived from the window's
        requests plus any catalog entries they reference.
        """
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        subset = self._requests[lo:hi]
        docs = [self._documents[r.doc_id] for r in subset]
        return Trace(subset, docs)

    def filter(self, predicate) -> "Trace":
        """Return a new trace keeping requests where ``predicate(r)`` holds."""
        subset = [r for r in self._requests if predicate(r)]
        docs = [self._documents[r.doc_id] for r in subset]
        return Trace(subset, docs)

    def remote_only(self) -> "Trace":
        """The sub-trace of remote accesses (section 2's focus)."""
        return self.filter(lambda r: r.remote)

    def by_client(self) -> dict[str, list[Request]]:
        """Group requests per client, preserving time order."""
        groups: dict[str, list[Request]] = {}
        for request in self._requests:
            groups.setdefault(request.client, []).append(request)
        return groups

    @classmethod
    def merge(cls, traces: Iterable["Trace"]) -> "Trace":
        """Merge several traces into one time-ordered trace.

        Useful for combining multiple log files of one server, or the
        logs of several servers whose document ids do not collide
        (colliding ids keep the largest cataloged size).
        """
        requests: list[Request] = []
        documents: list[Document] = []
        for trace in traces:
            requests.extend(trace.requests)
            documents.extend(trace.documents.values())
        return cls(requests, documents, sort=True)
