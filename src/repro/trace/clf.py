"""Common Log Format (CLF) parsing and emission.

The paper's traces come from 1995 NCSA/CERN httpd logs in Common Log
Format::

    host ident authuser [day/month/year:HH:MM:SS zone] "METHOD /path PROTO" status bytes

This module converts between CLF lines and :class:`~repro.trace.records.Request`
objects, so the entire pipeline runs on real logs as well as synthetic
traces.  Remote/local classification is done against a set of local
domain suffixes (e.g. ``{"bu.edu"}``), mirroring the paper's
remote-vs-local access split.
"""

from __future__ import annotations

import calendar
import re
from collections.abc import Iterable, Iterator

from ..errors import TraceFormatError
from .records import Request, Trace

_CLF_PATTERN = re.compile(
    r"^(?P<host>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+"
    r"\[(?P<time>[^\]]+)\]\s+"
    r'"(?P<request>[^"]*)"\s+'
    r"(?P<status>\d{3})\s+(?P<size>\d+|-)\s*$"
)

_MONTHS = {abbr: i for i, abbr in enumerate(calendar.month_abbr) if abbr}

_TIME_PATTERN = re.compile(
    r"^(?P<day>\d{2})/(?P<mon>[A-Za-z]{3})/(?P<year>\d{4}):"
    r"(?P<hh>\d{2}):(?P<mm>\d{2}):(?P<ss>\d{2})\s*(?P<zone>[+-]\d{4})?$"
)


def _parse_clf_time(text: str) -> float:
    """Convert a CLF timestamp to UTC seconds since the Unix epoch."""
    match = _TIME_PATTERN.match(text.strip())
    if match is None:
        raise TraceFormatError(f"bad CLF timestamp {text!r}")
    month = _MONTHS.get(match["mon"].capitalize())
    if month is None:
        raise TraceFormatError(f"bad CLF month {match['mon']!r}")
    epoch = calendar.timegm(
        (
            int(match["year"]),
            month,
            int(match["day"]),
            int(match["hh"]),
            int(match["mm"]),
            int(match["ss"]),
            0,
            0,
            0,
        )
    )
    zone = match["zone"]
    if zone:
        offset = int(zone[1:3]) * 3600 + int(zone[3:5]) * 60
        epoch -= offset if zone[0] == "+" else -offset
    return float(epoch)


def _format_clf_time(timestamp: float) -> str:
    """Render UTC seconds since epoch as a CLF timestamp."""
    import time as _time

    parts = _time.gmtime(timestamp)
    month = calendar.month_abbr[parts.tm_mon]
    return (
        f"{parts.tm_mday:02d}/{month}/{parts.tm_year:04d}:"
        f"{parts.tm_hour:02d}:{parts.tm_min:02d}:{parts.tm_sec:02d} +0000"
    )


def _is_local(host: str, local_domains: frozenset[str]) -> bool:
    host = host.lower()
    return any(
        host == domain or host.endswith("." + domain) for domain in local_domains
    )


def parse_clf_line(
    line: str,
    *,
    local_domains: Iterable[str] = (),
    line_number: int | None = None,
) -> Request:
    """Parse one CLF line into a :class:`Request`.

    Args:
        line: The raw log line.
        local_domains: Domain suffixes counted as *local* clients.
        line_number: Optional line number for error messages.

    Raises:
        TraceFormatError: On any malformed field.
    """
    match = _CLF_PATTERN.match(line.strip())
    if match is None:
        raise TraceFormatError("not a Common Log Format line", line_number)

    request_field = match["request"].split()
    if len(request_field) >= 2:
        method, path = request_field[0], request_field[1]
    elif len(request_field) == 1:
        # HTTP/0.9 style request line: bare path implies GET.
        method, path = "GET", request_field[0]
    else:
        raise TraceFormatError("empty request field", line_number)

    size_text = match["size"]
    size = 0 if size_text == "-" else int(size_text)
    host = match["host"]
    locals_frozen = frozenset(d.lower() for d in local_domains)
    return Request(
        timestamp=_parse_clf_time(match["time"]),
        client=host,
        doc_id=path,
        size=size,
        status=int(match["status"]),
        method=method.upper(),
        remote=not _is_local(host, locals_frozen),
    )


def format_clf_line(request: Request) -> str:
    """Render a :class:`Request` as a CLF line (inverse of parsing)."""
    size = str(request.size) if request.size else "0"
    return (
        f"{request.client} - - [{_format_clf_time(request.timestamp)}] "
        f'"{request.method} {request.doc_id} HTTP/1.0" {request.status} {size}'
    )


def read_clf(
    lines: Iterable[str],
    *,
    local_domains: Iterable[str] = (),
    skip_malformed: bool = True,
) -> Trace:
    """Parse an iterable of CLF lines into a :class:`Trace`.

    Args:
        lines: Log lines (e.g. an open file object).
        local_domains: Domain suffixes counted as local clients.
        skip_malformed: If True (default, matching common log-analysis
            practice) malformed lines are dropped; otherwise the first
            bad line raises :class:`TraceFormatError`.
    """
    requests = []
    locals_tuple = tuple(local_domains)
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            requests.append(
                parse_clf_line(line, local_domains=locals_tuple, line_number=number)
            )
        except TraceFormatError:
            if not skip_malformed:
                raise
    return Trace(requests, sort=True)


def write_clf(trace: Trace) -> Iterator[str]:
    """Yield CLF lines for every request in the trace."""
    for request in trace:
        yield format_clf_line(request)
