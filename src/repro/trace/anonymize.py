"""Trace anonymization for sharing server logs.

Both protocols need only the *structure* of a trace — who requested
what, when — not real hostnames or URL text.  :func:`anonymize_trace`
replaces client and document identifiers with opaque, deterministic
pseudonyms (keyed HMAC-style hashing) while preserving everything the
analyses depend on:

* timestamps, sizes, status codes and the remote/local flag;
* the client↔request and document↔request relationships;
* region markers in synthetic client ids (so topology building still
  works), unless ``keep_regions=False``.

The same ``key`` maps the same identifier to the same pseudonym, so
multiple log files of one server anonymize consistently.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import TraceFormatError
from .records import Document, Request, Trace


def _pseudonym(key: bytes, kind: str, value: str, length: int = 12) -> str:
    digest = hmac.new(key, f"{kind}:{value}".encode(), hashlib.sha256)
    return digest.hexdigest()[:length]


def _region_suffix(client_id: str) -> str | None:
    """Extract a synthetic region marker (``.region-NN`` / local)."""
    if ".region-" in client_id:
        return client_id[client_id.rindex(".region-") :]
    if client_id.startswith("local-") or client_id.endswith(".campus"):
        return ".campus"
    return None


def anonymize_trace(
    trace: Trace,
    key: str | bytes,
    *,
    keep_regions: bool = True,
) -> Trace:
    """Return a structurally identical trace with opaque identifiers.

    Args:
        trace: The trace to anonymize.
        key: Secret key; the mapping is deterministic per key.
        keep_regions: Preserve synthetic region/campus markers so the
            topology builder still groups clients geographically.

    Raises:
        TraceFormatError: If the key is empty.
    """
    if isinstance(key, str):
        key = key.encode()
    if not key:
        raise TraceFormatError("anonymization key must be non-empty")

    client_map: dict[str, str] = {}
    doc_map: dict[str, str] = {}

    def map_client(client_id: str) -> str:
        mapped = client_map.get(client_id)
        if mapped is None:
            mapped = "h" + _pseudonym(key, "client", client_id)
            if keep_regions:
                suffix = _region_suffix(client_id)
                if suffix == ".campus":
                    mapped = "local-" + mapped + ".campus"
                elif suffix is not None:
                    mapped = mapped + suffix
            client_map[client_id] = mapped
        return mapped

    def map_doc(doc_id: str) -> str:
        mapped = doc_map.get(doc_id)
        if mapped is None:
            mapped = "/doc/" + _pseudonym(key, "doc", doc_id)
            doc_map[doc_id] = mapped
        return mapped

    requests = [
        Request(
            timestamp=r.timestamp,
            client=map_client(r.client),
            doc_id=map_doc(r.doc_id),
            size=r.size,
            status=r.status,
            method=r.method,
            remote=r.remote,
        )
        for r in trace
    ]
    documents = [
        Document(
            doc_id=map_doc(d.doc_id),
            size=d.size,
            kind=d.kind,
            home_server=d.home_server,
            mutable=d.mutable,
        )
        for d in trace.documents.values()
    ]
    return Trace(requests, documents)
