"""Access traces: record types, parsing, cleaning, and segmentation.

This subpackage provides everything needed to get from a raw HTTP server
log (or a synthetic equivalent) to the cleaned, session/stride-segmented
request stream that drives both of the paper's protocols:

* :mod:`repro.trace.records` — immutable request/document records and the
  :class:`~repro.trace.records.Trace` container.
* :mod:`repro.trace.clf` — Common Log Format parser and writer, so real
  server logs can drive the simulators.
* :mod:`repro.trace.cleaning` — the paper's footnote-6 preprocessing
  (drop errors/scripts/live documents, canonicalize aliases).
* :mod:`repro.trace.sessions` — segmentation of per-client request
  streams into *sessions* (``SessionTimeout``) and *traversal strides*
  (``StrideTimeout``).
* :mod:`repro.trace.stats` — summary statistics of a trace.
"""

from .records import Document, Request, Trace
from .clf import format_clf_line, parse_clf_line, read_clf, write_clf
from .cleaning import CleaningReport, TraceCleaner
from .sessions import Session, Stride, split_sessions, split_strides
from .stats import TraceStatistics, bytes_per_period, requests_per_period, summarize
from .anonymize import anonymize_trace
from .sampling import (
    RatioEstimate,
    SampledRatioReport,
    SamplingConfig,
    client_hash,
    ht_ratio_estimates,
    sample_clients,
)
from .profiler import TraceProfiler, WorkloadProfile, profile_trace

__all__ = [
    "Document",
    "Request",
    "Trace",
    "format_clf_line",
    "parse_clf_line",
    "read_clf",
    "write_clf",
    "CleaningReport",
    "TraceCleaner",
    "Session",
    "Stride",
    "split_sessions",
    "split_strides",
    "TraceStatistics",
    "summarize",
    "requests_per_period",
    "bytes_per_period",
    "anonymize_trace",
    "sample_clients",
    "client_hash",
    "SamplingConfig",
    "RatioEstimate",
    "SampledRatioReport",
    "ht_ratio_estimates",
    "TraceProfiler",
    "WorkloadProfile",
    "profile_trace",
]
