"""Client-level trace sampling and the ratio-estimation machinery.

Long traces make iteration slow; the standard reduction that preserves
both protocols' structure is **client sampling**: keep a random subset
of clients with their *complete* request streams.  Per-client session
and stride structure — everything the dependency model and the caches
see — is untouched; only the population shrinks.

(Request-level sampling would be wrong here: it breaks strides and
inflates miss rates, which is why it is not offered.)

Beyond selection, this module holds the *statistics* of sampling:

* :func:`client_hash` — the one hash family behind both client
  sampling (:func:`sample_clients`) and the workload generator's
  stream sharding, so a shard and a sample agree on who a client is.
* :func:`ht_ratio_estimates` — Horvitz–Thompson ratio estimation with
  bootstrap confidence intervals over per-client contribution vectors.
  Under equal inclusion probability ``π`` (what hash sampling gives),
  each sampled total estimates ``π × population total``, so ``π``
  cancels in every ratio of totals — the point estimates are the plain
  sampled ratios, and they are consistent for the population ratios.
  The intervals come from resampling *clients* (the sampling unit)
  with replacement, which is valid because the speculative-service
  replay decomposes exactly per client (caches and pending pushes are
  per-client state).

The simulator-aware driver that produces the contribution vectors
lives in :mod:`repro.core.sampling` (this layer cannot import the
simulator); the report types it returns are defined here.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceFormatError
from .records import Trace

#: Order of the per-client contribution columns consumed by
#: :func:`ht_ratio_estimates`: the five :class:`SpeculationMetrics`
#: components the four headline ratios are built from.
CONTRIBUTION_COLUMNS = (
    "bytes_sent",
    "server_requests",
    "service_time",
    "miss_bytes",
    "accessed_bytes",
)

#: The four headline ratios, in report order.
RATIO_NAMES = ("bandwidth", "server_load", "service_time", "miss_rate")


def client_hash(client_id: str, *, seed: int = 0) -> int:
    """Deterministic 32-bit hash of a client id.

    The single hash family behind both :func:`sample_clients` and the
    workload generator's client-hash sharding: a client's bucket is a
    pure function of ``(seed, client_id)``, so shards of a stream and
    samples of a trace partition the same population the same way.
    """
    digest = hashlib.sha256(f"{seed}:{client_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def sample_clients(
    trace: Trace,
    fraction: float,
    *,
    seed: int = 0,
) -> Trace:
    """Keep a deterministic ``fraction`` of clients, streams intact.

    Selection hashes each client id with the seed
    (:func:`client_hash`), so the same (fraction, seed) keeps the same
    clients across traces of the same population — windows of one
    trace stay consistent.

    Args:
        trace: The trace to thin.
        fraction: Fraction of clients to keep, in (0, 1].
        seed: Selection salt.

    Raises:
        TraceFormatError: If the fraction is out of range.
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceFormatError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return trace

    threshold = int(fraction * 2**32)
    kept_clients = {
        c for c in trace.clients() if client_hash(c, seed=seed) < threshold
    }
    if not kept_clients and len(trace):
        # Guarantee a non-empty sample: keep the lexicographically
        # first client so downstream pipelines have something to chew.
        kept_clients = {min(trace.clients())}
    return trace.filter(lambda r: r.client in kept_clients)


@dataclass(frozen=True)
class SamplingConfig:
    """How a run should sample its workload's clients.

    Threaded through :class:`repro.api.RunSpec` into the loadtest and
    fleet engines: the generated trace is thinned to a hash-selected
    client subset before replay, and the report carries
    Horvitz–Thompson ratio estimates with bootstrap intervals.

    Attributes:
        fraction: Fraction of clients to keep, in (0, 1].
        seed: Selection salt (independent of the workload seed).
        n_boot: Bootstrap replicates behind each confidence interval.
        level: Confidence level of the intervals, e.g. ``0.95``.
        profile: Also run the :class:`~repro.trace.profiler.TraceProfiler`
            over the sampled trace and attach its summary to the run
            manifest.
    """

    fraction: float = 0.05
    seed: int = 0
    n_boot: int = 400
    level: float = 0.95
    profile: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise TraceFormatError("sampling fraction must be in (0, 1]")
        if self.n_boot < 10:
            raise TraceFormatError("n_boot must be at least 10")
        if not 0.5 <= self.level < 1.0:
            raise TraceFormatError("level must be in [0.5, 1)")


@dataclass(frozen=True)
class RatioEstimate:
    """One estimated ratio with a bootstrap confidence interval.

    Attributes:
        value: The Horvitz–Thompson point estimate.
        low: Lower confidence bound (percentile bootstrap).
        high: Upper confidence bound.
    """

    value: float
    low: float
    high: float

    def covers(self, exact: float) -> bool:
        """True when the interval contains an exact reference value."""
        return self.low <= exact <= self.high

    def format(self) -> str:
        """``0.812 [0.774, 0.851]`` style rendering."""
        return f"{self.value:.4f} [{self.low:.4f}, {self.high:.4f}]"


@dataclass(frozen=True)
class SampledRatioReport:
    """The four estimated ratios of a client-sampled replay.

    Attributes:
        fraction: Client fraction the estimates are based on.
        seed: Selection salt used by the sampler.
        level: Confidence level of the intervals.
        n_boot: Bootstrap replicates used.
        n_clients: Clients in the sample.
        n_population: Clients in the full trace the sample was drawn
            from (0 when unknown).
        n_requests: Requests in the sampled serving half.
        estimates: Ratio name → :class:`RatioEstimate`, keyed by
            :data:`RATIO_NAMES`.
    """

    fraction: float
    seed: int
    level: float
    n_boot: int
    n_clients: int
    n_population: int
    n_requests: int
    estimates: dict[str, RatioEstimate] = field(default_factory=dict)

    def covers(self, exact: dict[str, float]) -> dict[str, bool]:
        """Coverage of exact reference ratios, per ratio name."""
        return {
            name: estimate.covers(exact[name])
            for name, estimate in self.estimates.items()
            if name in exact
        }

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"client sample: {self.n_clients}/{self.n_population or '?'} "
            f"clients ({self.fraction:.1%}), {self.n_requests} requests, "
            f"{self.level:.0%} CIs from {self.n_boot} bootstrap replicates"
        ]
        for name in RATIO_NAMES:
            estimate = self.estimates.get(name)
            if estimate is not None:
                lines.append(f"  {name:<13} {estimate.format()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by manifests and the CLI)."""
        return {
            "fraction": self.fraction,
            "seed": self.seed,
            "level": self.level,
            "n_boot": self.n_boot,
            "n_clients": self.n_clients,
            "n_population": self.n_population,
            "n_requests": self.n_requests,
            "estimates": {
                name: {"value": e.value, "low": e.low, "high": e.high}
                for name, e in self.estimates.items()
            },
        }


def _safe_ratio(numerator: float, denominator: float) -> float:
    """Mirror of the metrics layer's ratio semantics: 0/0 → 1, x/0 → inf."""
    if denominator == 0.0:
        return 1.0 if numerator == 0.0 else math.inf
    return numerator / denominator


def _four_ratios(spec: np.ndarray, base: np.ndarray) -> dict[str, float]:
    """The paper's four ratios from summed contribution vectors.

    ``spec``/``base`` are length-5 vectors ordered like
    :data:`CONTRIBUTION_COLUMNS`.
    """
    spec_miss = _safe_ratio(float(spec[3]), float(spec[4]))
    base_miss = _safe_ratio(float(base[3]), float(base[4]))
    return {
        "bandwidth": _safe_ratio(float(spec[0]), float(base[0])),
        "server_load": _safe_ratio(float(spec[1]), float(base[1])),
        "service_time": _safe_ratio(float(spec[2]), float(base[2])),
        "miss_rate": _safe_ratio(spec_miss, base_miss),
    }


def ht_ratio_estimates(
    speculative: np.ndarray,
    baseline: np.ndarray,
    *,
    n_boot: int = 400,
    level: float = 0.95,
    seed: int = 0,
) -> dict[str, RatioEstimate]:
    """Horvitz–Thompson ratio estimates with bootstrap intervals.

    Args:
        speculative: ``(n_clients, 5)`` per-client contributions of the
            speculative arm, columns ordered like
            :data:`CONTRIBUTION_COLUMNS`.
        baseline: Same shape for the no-speculation arm.
        n_boot: Bootstrap replicates (clients resampled with
            replacement).
        level: Confidence level of the percentile intervals.
        seed: Seeds the bootstrap resampling.

    Returns:
        Ratio name → :class:`RatioEstimate` for the four headline
        ratios.  Equal inclusion probabilities cancel in each ratio of
        totals, so the point estimate is the sampled ratio itself; the
        interval captures the client-sampling variability.

    Raises:
        TraceFormatError: On mismatched or empty contribution arrays.
    """
    spec = np.asarray(speculative, dtype=np.float64)
    base = np.asarray(baseline, dtype=np.float64)
    if spec.shape != base.shape or spec.ndim != 2 or spec.shape[1] != 5:
        raise TraceFormatError(
            "contribution arrays must both be (n_clients, 5)"
        )
    n_clients = spec.shape[0]
    if n_clients == 0:
        raise TraceFormatError("cannot estimate ratios from zero clients")

    points = _four_ratios(spec.sum(axis=0), base.sum(axis=0))

    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(0xB007,))
    )
    draws = rng.integers(n_clients, size=(n_boot, n_clients))
    replicates: dict[str, list[float]] = {name: [] for name in RATIO_NAMES}
    for indices in draws:
        sums = _four_ratios(
            spec[indices].sum(axis=0), base[indices].sum(axis=0)
        )
        for name in RATIO_NAMES:
            replicates[name].append(sums[name])

    alpha = (1.0 - level) / 2.0
    estimates: dict[str, RatioEstimate] = {}
    for name in RATIO_NAMES:
        values = np.asarray(replicates[name])
        finite = values[np.isfinite(values)]
        if len(finite) == 0:
            low = high = points[name]
        else:
            low = float(np.quantile(finite, alpha))
            high = float(np.quantile(finite, 1.0 - alpha))
        estimates[name] = RatioEstimate(
            value=points[name],
            low=min(low, points[name]),
            high=max(high, points[name]),
        )
    return estimates
