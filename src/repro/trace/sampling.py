"""Client-level trace sampling.

Long traces make iteration slow; the standard reduction that preserves
both protocols' structure is **client sampling**: keep a random subset
of clients with their *complete* request streams.  Per-client session
and stride structure — everything the dependency model and the caches
see — is untouched; only the population shrinks.

(Request-level sampling would be wrong here: it breaks strides and
inflates miss rates, which is why it is not offered.)
"""

from __future__ import annotations

import hashlib

from ..errors import TraceFormatError
from .records import Trace


def sample_clients(
    trace: Trace,
    fraction: float,
    *,
    seed: int = 0,
) -> Trace:
    """Keep a deterministic ``fraction`` of clients, streams intact.

    Selection hashes each client id with the seed, so the same
    (fraction, seed) keeps the same clients across traces of the same
    population — windows of one trace stay consistent.

    Args:
        trace: The trace to thin.
        fraction: Fraction of clients to keep, in (0, 1].
        seed: Selection salt.

    Raises:
        TraceFormatError: If the fraction is out of range.
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceFormatError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return trace

    threshold = int(fraction * 2**32)

    def keep(client_id: str) -> bool:
        digest = hashlib.sha256(f"{seed}:{client_id}".encode()).digest()
        return int.from_bytes(digest[:4], "big") < threshold

    kept_clients = {c for c in trace.clients() if keep(c)}
    if not kept_clients and len(trace):
        # Guarantee a non-empty sample: keep the lexicographically
        # first client so downstream pipelines have something to chew.
        kept_clients = {min(trace.clients())}
    return trace.filter(lambda r: r.client in kept_clients)
