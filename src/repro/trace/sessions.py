"""Session and traversal-stride segmentation.

Section 3.2 of the paper defines two time-gap segmentations of each
client's request stream:

* A **traversal stride** is a maximal run of requests where successive
  requests are separated by less than ``StrideTimeout`` seconds.  Strides
  define which request pairs count toward the dependency matrix P.
* A **session** is a maximal run where successive requests are separated
  by less than ``SessionTimeout`` seconds.  Sessions define the lifetime
  of the client's cache (a document fetched during a session stays cached
  until the session ends).

Both are produced by the same gap-splitting core; the two public
functions differ only in naming and the record type they return.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..errors import TraceFormatError
from .records import Request, Trace


@dataclass(frozen=True, slots=True)
class Stride:
    """A traversal stride: dependency-significant run of requests."""

    client: str
    requests: tuple[Request, ...]

    @property
    def start_time(self) -> float:
        return self.requests[0].timestamp

    @property
    def end_time(self) -> float:
        return self.requests[-1].timestamp

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True, slots=True)
class Session:
    """A cache session: run of requests sharing one client cache."""

    client: str
    requests: tuple[Request, ...]

    @property
    def start_time(self) -> float:
        return self.requests[0].timestamp

    @property
    def end_time(self) -> float:
        return self.requests[-1].timestamp

    def __len__(self) -> int:
        return len(self.requests)


def _split_by_gap(
    requests: Sequence[Request], timeout: float
) -> list[tuple[Request, ...]]:
    """Split a single client's time-ordered requests at gaps >= timeout.

    A timeout of 0 puts every request in its own run (no dependency /
    no cache); an infinite timeout yields one run per client.
    """
    if not requests:
        return []
    if math.isinf(timeout):
        return [tuple(requests)]
    if timeout <= 0:
        return [(request,) for request in requests]

    runs: list[tuple[Request, ...]] = []
    current: list[Request] = [requests[0]]
    for request in requests[1:]:
        gap = request.timestamp - current[-1].timestamp
        if gap < 0:
            raise TraceFormatError("client requests out of order")
        if gap < timeout:
            current.append(request)
        else:
            runs.append(tuple(current))
            current = [request]
    runs.append(tuple(current))
    return runs


def split_strides(trace: Trace, stride_timeout: float) -> list[Stride]:
    """Segment a trace into traversal strides (one list, all clients).

    Strides are returned ordered by (client, start time); each stride
    contains requests of a single client.
    """
    strides: list[Stride] = []
    for client, requests in sorted(trace.by_client().items()):
        for run in _split_by_gap(requests, stride_timeout):
            strides.append(Stride(client=client, requests=run))
    return strides


def split_sessions(trace: Trace, session_timeout: float) -> list[Session]:
    """Segment a trace into cache sessions (one list, all clients)."""
    sessions: list[Session] = []
    for client, requests in sorted(trace.by_client().items()):
        for run in _split_by_gap(requests, session_timeout):
            sessions.append(Session(client=client, requests=run))
    return sessions
