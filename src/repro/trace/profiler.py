"""Single-pass workload profiling before replay.

Before a trace is replayed — synthetic, sampled, or imported from a CLF
log — it pays to know what is actually in it: how bursty the arrivals
are, how concentrated the popularity is, how long the sessions run and
how the inter-request gaps split around ``StrideTimeout``.  Those four
shapes decide whether the paper's protocols have anything to work with
(speculation needs strides; dissemination needs a popular head), and
they are exactly what a sampled or freshly imported trace can silently
get wrong.

:class:`TraceProfiler` computes all of it in **one streaming pass** with
memory proportional to clients + documents + time windows, never to the
request count — so it composes with
:meth:`repro.workload.generator.SyntheticTraceGenerator.stream` at
scales where materializing the trace would not fit.

The result, :class:`WorkloadProfile`, renders human-readable
(:meth:`~WorkloadProfile.format`) and JSON-ready
(:meth:`~WorkloadProfile.to_dict`) for run manifests and the
``repro profile`` CLI verb.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..errors import TraceFormatError
from .records import Request, Trace

#: Upper edges (seconds) of the inter-arrival histogram bins; the last
#: bin is open-ended.  Chosen to straddle the paper's StrideTimeout (5 s)
#: and SessionTimeout (30 min) thresholds.
GAP_BIN_EDGES = (0.5, 1.0, 5.0, 30.0, 300.0, 1_800.0)

#: Upper edges (requests) of the session-length histogram bins; the last
#: bin is open-ended.
LENGTH_BIN_EDGES = (1, 2, 4, 8, 16, 32, 64)


def _bin_index(value: float, edges: tuple) -> int:
    for index, edge in enumerate(edges):
        if value <= edge:
            return index
    return len(edges)


def _bin_labels(edges: tuple, unit: str) -> list[str]:
    labels = []
    previous = 0
    for edge in edges:
        labels.append(f"({previous}, {edge}] {unit}")
        previous = edge
    labels.append(f"> {previous} {unit}")
    return labels


@dataclass(frozen=True)
class WorkloadProfile:
    """What one streaming pass learned about a workload.

    Attributes:
        n_requests: Total requests profiled.
        n_clients: Distinct clients observed.
        n_documents: Documents in the catalog (or distinct requested
            documents when profiling a bare request stream).
        duration_seconds: Span from first to last request.
        total_bytes: Sum of request sizes.
        window_seconds: Width of the arrival-count windows.
        window_mean: Mean requests per non-empty window.
        window_peak: Requests in the busiest window.
        burstiness: Peak-to-mean ratio of window counts (1.0 is flat).
        fano: Fano factor (variance/mean) of window counts; 1.0 is
            Poisson, larger is burstier.
        hour_of_day: Request counts per hour of the (virtual) day,
            24 entries — flat without a diurnal cycle.
        top_half_percent_share: Fraction of requests on the most
            popular 0.5% of the document population.
        top_ten_percent_share: Same for the top 10%.
        n_sessions: Sessions found (per-client ``session_timeout``
            segmentation).
        mean_session_length: Mean requests per session.
        session_length_bins: Session-length histogram over
            :data:`LENGTH_BIN_EDGES` (last bin open-ended).
        intra_stride_fraction: Fraction of same-client gaps at or under
            ``stride_timeout`` — the dependency-model's raw material.
        gap_bins: Same-client inter-arrival histogram over
            :data:`GAP_BIN_EDGES` (last bin open-ended).
    """

    n_requests: int
    n_clients: int
    n_documents: int
    duration_seconds: float
    total_bytes: int
    window_seconds: float
    window_mean: float
    window_peak: int
    burstiness: float
    fano: float
    hour_of_day: tuple[int, ...]
    top_half_percent_share: float
    top_ten_percent_share: float
    n_sessions: int
    mean_session_length: float
    session_length_bins: tuple[int, ...]
    intra_stride_fraction: float
    gap_bins: tuple[int, ...] = field(default=())

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"requests            {self.n_requests:>12,}",
            f"clients             {self.n_clients:>12,}",
            f"documents           {self.n_documents:>12,}",
            f"duration (days)     {self.duration_seconds / 86_400:>12.1f}",
            f"total bytes         {self.total_bytes:>12,}",
            f"window mean/peak    {self.window_mean:>8.1f} / {self.window_peak}"
            f" per {self.window_seconds:.0f}s",
            f"burstiness          {self.burstiness:>12.2f}",
            f"fano factor         {self.fano:>12.2f}",
            f"top 0.5% doc share  {self.top_half_percent_share:>12.3f}",
            f"top 10% doc share   {self.top_ten_percent_share:>12.3f}",
            f"sessions            {self.n_sessions:>12,}",
            f"mean session len    {self.mean_session_length:>12.2f}",
            f"intra-stride gaps   {self.intra_stride_fraction:>12.3f}",
        ]
        for label, count in zip(
            _bin_labels(LENGTH_BIN_EDGES, "req"), self.session_length_bins
        ):
            lines.append(f"  session {label:<16} {count:>10,}")
        for label, count in zip(_bin_labels(GAP_BIN_EDGES, "s"), self.gap_bins):
            lines.append(f"  gap {label:<20} {count:>10,}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by manifests and the CLI)."""
        return {
            "n_requests": self.n_requests,
            "n_clients": self.n_clients,
            "n_documents": self.n_documents,
            "duration_seconds": self.duration_seconds,
            "total_bytes": self.total_bytes,
            "arrivals": {
                "window_seconds": self.window_seconds,
                "window_mean": self.window_mean,
                "window_peak": self.window_peak,
                "burstiness": self.burstiness,
                "fano": self.fano,
                "hour_of_day": list(self.hour_of_day),
            },
            "popularity": {
                "top_half_percent_share": self.top_half_percent_share,
                "top_ten_percent_share": self.top_ten_percent_share,
            },
            "sessions": {
                "count": self.n_sessions,
                "mean_length": self.mean_session_length,
                "length_bins": list(self.session_length_bins),
                "length_bin_edges": list(LENGTH_BIN_EDGES),
            },
            "strides": {
                "intra_stride_fraction": self.intra_stride_fraction,
                "gap_bins": list(self.gap_bins),
                "gap_bin_edges": list(GAP_BIN_EDGES),
            },
        }


class TraceProfiler:
    """Profile a request stream in one pass, constant per-request memory.

    Args:
        window_seconds: Width of the arrival-count windows used for
            burstiness and the Fano factor.
        session_timeout: Per-client gap (seconds) that closes a session;
            the paper's value is 30 minutes.
        stride_timeout: Gap (seconds) separating traversal strides; the
            paper's value is 5 s.
    """

    def __init__(
        self,
        *,
        window_seconds: float = 3_600.0,
        session_timeout: float = 1_800.0,
        stride_timeout: float = 5.0,
    ):
        if window_seconds <= 0:
            raise TraceFormatError("window_seconds must be positive")
        if session_timeout <= 0 or stride_timeout <= 0:
            raise TraceFormatError("timeouts must be positive")
        self.window_seconds = window_seconds
        self.session_timeout = session_timeout
        self.stride_timeout = stride_timeout

    def profile(
        self, requests: Trace | Iterable[Request]
    ) -> WorkloadProfile:
        """Profile a trace or a time-ordered request iterable.

        Args:
            requests: A :class:`~repro.trace.records.Trace` (its catalog
                sizes the popularity population) or any request iterable
                in timestamp order — e.g. a generator
                :meth:`~repro.workload.generator.SyntheticTraceGenerator.stream`.

        Raises:
            TraceFormatError: If the stream is empty or out of order.
        """
        catalog_size = (
            len(requests.documents) if isinstance(requests, Trace) else 0
        )

        n_requests = 0
        total_bytes = 0
        first_time = 0.0
        last_time = 0.0
        windows: dict[int, int] = {}
        hours = [0] * 24
        doc_counts: dict[str, int] = {}
        last_seen: dict[str, float] = {}
        open_sessions: dict[str, int] = {}
        session_bins = [0] * (len(LENGTH_BIN_EDGES) + 1)
        gap_bins = [0] * (len(GAP_BIN_EDGES) + 1)
        n_sessions = 0
        n_gaps = 0
        intra_stride = 0

        for request in requests:
            if n_requests == 0:
                first_time = request.timestamp
            elif request.timestamp < last_time:
                raise TraceFormatError(
                    "profiler input must be time-ordered"
                )
            last_time = request.timestamp
            n_requests += 1
            total_bytes += request.size
            windows[int(request.timestamp // self.window_seconds)] = (
                windows.get(int(request.timestamp // self.window_seconds), 0)
                + 1
            )
            hours[int((request.timestamp % 86_400.0) // 3_600.0)] += 1
            doc_counts[request.doc_id] = doc_counts.get(request.doc_id, 0) + 1

            previous = last_seen.get(request.client)
            last_seen[request.client] = request.timestamp
            if previous is None:
                open_sessions[request.client] = 1
                continue
            gap = request.timestamp - previous
            n_gaps += 1
            gap_bins[_bin_index(gap, GAP_BIN_EDGES)] += 1
            if gap <= self.stride_timeout:
                intra_stride += 1
            if gap > self.session_timeout:
                length = open_sessions[request.client]
                session_bins[_bin_index(length, LENGTH_BIN_EDGES)] += 1
                n_sessions += 1
                open_sessions[request.client] = 1
            else:
                open_sessions[request.client] += 1

        if n_requests == 0:
            raise TraceFormatError("cannot profile an empty trace")

        for length in open_sessions.values():
            session_bins[_bin_index(length, LENGTH_BIN_EDGES)] += 1
            n_sessions += 1

        counts = list(windows.values())
        n_windows = max(1, len(counts))
        mean = sum(counts) / n_windows
        variance = sum((c - mean) ** 2 for c in counts) / n_windows
        peak = max(counts)

        ranked = sorted(doc_counts.values(), reverse=True)
        population = max(catalog_size, len(ranked))

        def top_share(fraction: float) -> float:
            top_n = max(1, math.ceil(population * fraction))
            return sum(ranked[:top_n]) / n_requests

        return WorkloadProfile(
            n_requests=n_requests,
            n_clients=len(last_seen),
            n_documents=population,
            duration_seconds=last_time - first_time,
            total_bytes=total_bytes,
            window_seconds=self.window_seconds,
            window_mean=mean,
            window_peak=peak,
            burstiness=peak / mean if mean else 0.0,
            fano=variance / mean if mean else 0.0,
            hour_of_day=tuple(hours),
            top_half_percent_share=top_share(0.005),
            top_ten_percent_share=top_share(0.10),
            n_sessions=n_sessions,
            mean_session_length=n_requests / n_sessions if n_sessions else 0.0,
            session_length_bins=tuple(session_bins),
            intra_stride_fraction=(
                intra_stride / n_gaps if n_gaps else 0.0
            ),
            gap_bins=tuple(gap_bins),
        )


def profile_trace(
    requests: Trace | Iterable[Request],
    *,
    window_seconds: float = 3_600.0,
    session_timeout: float = 1_800.0,
    stride_timeout: float = 5.0,
) -> WorkloadProfile:
    """Convenience wrapper: profile with default thresholds.

    See :class:`TraceProfiler` for the parameters.
    """
    return TraceProfiler(
        window_seconds=window_seconds,
        session_timeout=session_timeout,
        stride_timeout=stride_timeout,
    ).profile(requests)
