"""Trace preprocessing (the paper's footnote 6).

Before driving the simulations, the paper processed its raw logs by

* removing accesses to **nonexistent** documents (HTTP errors),
* removing accesses to **live** documents and **scripts** (CGI output is
  not cacheable or disseminable), and
* **renaming accesses to aliases** of a document so each document has a
  single canonical identifier.

:class:`TraceCleaner` applies the same steps and reports what it dropped
so experiments can show their preprocessing was faithful.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from .records import Request, Trace

#: Path prefixes that identify script/live output in 1995-era servers.
DEFAULT_SCRIPT_PREFIXES = ("/cgi-bin/", "/cgi/", "/htbin/")

#: Path suffixes that identify scripts regardless of location.
DEFAULT_SCRIPT_SUFFIXES = (".cgi", ".pl", ".sh", ".php")


@dataclass
class CleaningReport:
    """Counts of requests removed or rewritten during cleaning."""

    kept: int = 0
    dropped_errors: int = 0
    dropped_scripts: int = 0
    dropped_methods: int = 0
    dropped_live: int = 0
    aliases_renamed: int = 0

    @property
    def dropped(self) -> int:
        """Total requests removed."""
        return (
            self.dropped_errors
            + self.dropped_scripts
            + self.dropped_methods
            + self.dropped_live
        )


def _canonicalize_path(path: str) -> str:
    """Resolve the alias forms common in HTTP logs.

    ``/dir`` and ``/dir/`` and ``/dir/index.html`` all name the same
    document; query strings and fragments are stripped.
    """
    for separator in ("?", "#"):
        if separator in path:
            path = path.split(separator, 1)[0]
    if path.endswith("/index.html"):
        path = path[: -len("index.html")]
    if path != "/" and path.endswith("/"):
        path = path[:-1]
    return path or "/"


class TraceCleaner:
    """Applies the paper's footnote-6 preprocessing to a trace.

    Args:
        script_prefixes: Path prefixes identifying script output.
        script_suffixes: Path suffixes identifying script files.
        live_documents: Explicit set of document ids considered "live"
            (dynamically generated) and therefore removed.
        alias_map: Extra alias → canonical-id rewrites applied after the
            built-in ``index.html``/trailing-slash canonicalization.
        canonicalize: Set False to disable built-in alias resolution
            (synthetic traces have no aliases).
    """

    def __init__(
        self,
        *,
        script_prefixes: Iterable[str] = DEFAULT_SCRIPT_PREFIXES,
        script_suffixes: Iterable[str] = DEFAULT_SCRIPT_SUFFIXES,
        live_documents: Iterable[str] = (),
        alias_map: dict[str, str] | None = None,
        canonicalize: bool = True,
    ):
        self._script_prefixes = tuple(script_prefixes)
        self._script_suffixes = tuple(script_suffixes)
        self._live_documents = frozenset(live_documents)
        self._alias_map = dict(alias_map or {})
        self._canonicalize = canonicalize

    def _is_script(self, doc_id: str) -> bool:
        return doc_id.startswith(self._script_prefixes) or doc_id.endswith(
            self._script_suffixes
        )

    def clean(self, trace: Trace) -> tuple[Trace, CleaningReport]:
        """Return the cleaned trace and a report of what was removed."""
        report = CleaningReport()
        kept: list[Request] = []
        for request in trace:
            if request.method != "GET":
                report.dropped_methods += 1
                continue
            if not request.ok:
                report.dropped_errors += 1
                continue
            if self._is_script(request.doc_id):
                report.dropped_scripts += 1
                continue
            if request.doc_id in self._live_documents:
                report.dropped_live += 1
                continue

            doc_id = request.doc_id
            if self._canonicalize:
                doc_id = _canonicalize_path(doc_id)
            doc_id = self._alias_map.get(doc_id, doc_id)
            if doc_id != request.doc_id:
                report.aliases_renamed += 1
                request = Request(
                    timestamp=request.timestamp,
                    client=request.client,
                    doc_id=doc_id,
                    size=request.size,
                    status=request.status,
                    method=request.method,
                    remote=request.remote,
                )
            kept.append(request)
        report.kept = len(kept)
        return Trace(kept), report
