"""Summary statistics of a trace.

:func:`summarize` computes the aggregate numbers the paper reports about
its own traces (number of accesses, distinct clients, sessions, bytes,
remote share, concentration of popularity), so a synthetic trace can be
compared side by side with the published figures.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from .records import Trace
from .sessions import split_sessions


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics of one trace."""

    num_requests: int
    num_clients: int
    num_documents: int
    num_sessions: int
    total_bytes: int
    duration_seconds: float
    remote_fraction: float
    #: Fraction of requests landing on the most popular 0.5% of documents.
    top_half_percent_share: float
    #: Fraction of requests landing on the most popular 10% of documents.
    top_ten_percent_share: float
    #: Mean requests per session.
    mean_session_length: float

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"requests            {self.num_requests:>12,}",
            f"clients             {self.num_clients:>12,}",
            f"documents           {self.num_documents:>12,}",
            f"sessions            {self.num_sessions:>12,}",
            f"total bytes         {self.total_bytes:>12,}",
            f"duration (days)     {self.duration_seconds / 86400:>12.1f}",
            f"remote fraction     {self.remote_fraction:>12.3f}",
            f"top 0.5% doc share  {self.top_half_percent_share:>12.3f}",
            f"top 10% doc share   {self.top_ten_percent_share:>12.3f}",
            f"mean session len    {self.mean_session_length:>12.2f}",
        ]
        return "\n".join(lines)


def popularity_share(trace: Trace, top_fraction: float) -> float:
    """Fraction of requests that land on the most popular documents.

    Args:
        trace: The trace to analyse.
        top_fraction: Fraction of the *document population* considered,
            e.g. ``0.005`` for the paper's "most popular 0.5%".

    Returns:
        Requests to the top documents divided by all requests; 0.0 for
        an empty trace.
    """
    if not len(trace):
        return 0.0
    counts = Counter(r.doc_id for r in trace)
    ranked = [count for _, count in counts.most_common()]
    # The fraction is of the whole catalog, not of the documents that
    # happened to be requested — a trace touching 50 of 10,000 documents
    # has a 0.5% head of 50 documents, not of one.
    population = max(len(trace.documents), len(ranked))
    top_n = max(1, math.ceil(population * top_fraction))
    return sum(ranked[:top_n]) / len(trace)


def requests_per_period(trace: Trace, period_seconds: float) -> list[int]:
    """Request counts in consecutive fixed-length periods.

    The natural input for :class:`repro.dissemination.DynamicShield`:
    ``requests_per_period(trace, 86_400)`` is the daily offered load.

    Args:
        trace: The trace to bucket.
        period_seconds: Period length (e.g. 86,400 for days).

    Returns:
        One count per period from the first request to the last
        (empty list for an empty trace).
    """
    if period_seconds <= 0:
        raise ValueError("period_seconds must be positive")
    if not len(trace):
        return []
    origin = trace.start_time
    n_periods = int((trace.end_time - origin) // period_seconds) + 1
    counts = [0] * n_periods
    for request in trace:
        counts[int((request.timestamp - origin) // period_seconds)] += 1
    return counts


def bytes_per_period(trace: Trace, period_seconds: float) -> list[int]:
    """Bytes delivered in consecutive fixed-length periods."""
    if period_seconds <= 0:
        raise ValueError("period_seconds must be positive")
    if not len(trace):
        return []
    origin = trace.start_time
    n_periods = int((trace.end_time - origin) // period_seconds) + 1
    totals = [0] * n_periods
    for request in trace:
        totals[int((request.timestamp - origin) // period_seconds)] += request.size
    return totals


def summarize(trace: Trace, *, session_timeout: float = 1800.0) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a trace.

    Args:
        trace: The trace to summarise.
        session_timeout: Gap (seconds) that separates sessions when
            counting them; 30 minutes is the conventional web value.
    """
    sessions = split_sessions(trace, session_timeout) if len(trace) else []
    num_requests = len(trace)
    remote = sum(1 for r in trace if r.remote)
    return TraceStatistics(
        num_requests=num_requests,
        num_clients=len(trace.clients()),
        num_documents=len(trace.documents),
        num_sessions=len(sessions),
        total_bytes=trace.total_bytes(),
        duration_seconds=trace.duration,
        remote_fraction=remote / num_requests if num_requests else 0.0,
        top_half_percent_share=popularity_share(trace, 0.005),
        top_ten_percent_share=popularity_share(trace, 0.10),
        mean_session_length=(num_requests / len(sessions)) if sessions else 0.0,
    )
