"""Argument parsing and dispatch for the ``repro`` command."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .. import __version__
from ..errors import PerfRegressionError, RuntimeProtocolError, TransportError
from . import commands


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Speculative data dissemination and service "
            "(reproduction of Bestavros, ICDE 1996)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write a calibrated synthetic trace as a CLF log"
    )
    generate.add_argument("output", help="path of the log file to write")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--pages", type=int, default=300)
    generate.add_argument("--clients", type=int, default=200)
    generate.add_argument("--sessions", type=int, default=2000)
    generate.add_argument("--days", type=float, default=30.0)
    generate.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the configuration calibrated to the paper's trace",
    )
    generate.set_defaults(handler=commands.cmd_generate)

    analyze = subparsers.add_parser(
        "analyze", help="popularity analysis of a CLF log (paper section 2)"
    )
    analyze.add_argument("log", help="CLF log file")
    analyze.add_argument(
        "--local-domain",
        action="append",
        default=[],
        help="domain suffix counted as local (repeatable)",
    )
    analyze.add_argument(
        "--block-kb", type=int, default=256, help="block size for Figure 1"
    )
    analyze.add_argument(
        "--no-clean", action="store_true", help="skip footnote-6 cleaning"
    )
    analyze.add_argument(
        "--sample",
        type=float,
        default=None,
        help="keep only this fraction of clients (whole streams) "
        "before analyzing — for very large logs",
    )
    analyze.set_defaults(handler=commands.cmd_analyze)

    simulate = subparsers.add_parser(
        "simulate",
        help="speculative-service experiment over a CLF log (section 3)",
    )
    simulate.add_argument("log", help="CLF log file")
    simulate.add_argument(
        "--local-domain", action="append", default=[], help="local domain suffix"
    )
    simulate.add_argument(
        "--threshold",
        type=float,
        action="append",
        default=[],
        help="T_p value to evaluate (repeatable; default a small sweep)",
    )
    simulate.add_argument(
        "--train-days",
        type=float,
        default=None,
        help="history used to estimate P/P* (default: half the trace)",
    )
    simulate.add_argument(
        "--cooperative", action="store_true", help="clients piggyback digests"
    )
    simulate.add_argument(
        "--digest-fp",
        type=float,
        default=None,
        help="encode cooperative digests as Bloom filters at this "
        "false-positive rate",
    )
    simulate.add_argument(
        "--adaptive-budget",
        type=float,
        default=None,
        help="replace the threshold sweep with the self-tuning policy "
        "targeting this traffic increase (e.g. 0.05)",
    )
    simulate.add_argument(
        "--max-size-kb", type=float, default=None, help="MaxSize cap in KB"
    )
    simulate.set_defaults(handler=commands.cmd_simulate)

    fit = subparsers.add_parser(
        "fit",
        help="estimate a synthetic-workload configuration from a CLF log",
    )
    fit.add_argument("log", help="CLF log file")
    fit.add_argument(
        "--local-domain", action="append", default=[], help="local domain suffix"
    )
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument(
        "--regenerate",
        default=None,
        help="also write a synthetic twin trace (CLF) to this path",
    )
    fit.set_defaults(handler=commands.cmd_fit)

    report = subparsers.add_parser(
        "report",
        help="run the headline paper evaluation on a preset and write markdown",
    )
    report.add_argument(
        "--preset",
        default="paper",
        help="workload preset (see repro.workload.preset_names)",
    )
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--out", default="report.md", help="markdown output path"
    )
    report.set_defaults(handler=commands.cmd_report)

    sweep = subparsers.add_parser(
        "sweep",
        help="Figure-5 style threshold sweep over a CLF log, CSV output",
    )
    sweep.add_argument("log", help="CLF log file")
    sweep.add_argument(
        "--local-domain", action="append", default=[], help="local domain suffix"
    )
    sweep.add_argument(
        "--train-days", type=float, default=None, help="history for P/P*"
    )
    sweep.add_argument(
        "--thresholds",
        default="0.95,0.75,0.5,0.35,0.25,0.15,0.1,0.05",
        help="comma-separated T_p grid",
    )
    sweep.add_argument(
        "--csv", default=None, help="write the sweep as CSV to this path"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the sweep across this many processes (byte-identical "
        "to the serial sweep; default serial)",
    )
    sweep.set_defaults(handler=commands.cmd_sweep)

    plan = subparsers.add_parser(
        "plan", help="dissemination storage planning for server logs"
    )
    plan.add_argument(
        "logs", nargs="+", help="one CLF log per home server (name=path or path)"
    )
    plan.add_argument(
        "--budget-mb", type=float, required=True, help="proxy storage budget"
    )
    plan.add_argument(
        "--local-domain", action="append", default=[], help="local domain suffix"
    )
    plan.set_defaults(handler=commands.cmd_plan)

    loadtest = subparsers.add_parser(
        "loadtest",
        help="run the live runtime (origin + proxies + load generator) "
        "on the deterministic in-memory transport",
    )
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--preset",
        default="small",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    loadtest.add_argument(
        "--budget-mb",
        type=float,
        default=2.0,
        help="proxy dissemination budget in MB",
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=32, help="in-flight request cap"
    )
    loadtest.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in (virtual) seconds",
    )
    loadtest.add_argument(
        "--learn-online",
        action="store_true",
        help="keep estimating P from live requests (breaks batch parity)",
    )
    loadtest.add_argument(
        "--verify-batch",
        action="store_true",
        help="also replay through core.combined and compare ratios",
    )
    loadtest.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="max live-vs-batch ratio divergence before failing",
    )
    loadtest.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic CI self-test: smoke workload + batch "
        "verification (exit 3 on divergence)",
    )
    loadtest.add_argument(
        "--codec",
        default=None,
        choices=["binary", "json"],
        help="DEPRECATED: wire codec now lives in DeploySpec (see "
        "`repro deploy`); passing it here warns and builds the "
        "equivalent local spec",
    )
    loadtest.add_argument(
        "--workers",
        type=int,
        default=None,
        help="DEPRECATED: worker sharding now lives in DeploySpec (see "
        "`repro deploy`); passing it here warns and builds the "
        "equivalent local spec",
    )
    loadtest.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    loadtest.set_defaults(handler=commands.cmd_loadtest)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the live runtime under scripted fault injection and "
        "verify the paper's ratios survive (proxy crashes, frame drops, "
        "partitions, brownouts)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--preset",
        default="smoke",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    chaos.add_argument(
        "--budget-mb",
        type=float,
        default=2.0,
        help="proxy dissemination budget in MB",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        help="per-request timeout in (virtual) seconds",
    )
    chaos.add_argument(
        "--retries", type=int, default=3, help="retries per request"
    )
    chaos.add_argument(
        "--crash-proxy",
        type=int,
        default=0,
        help="index of the proxy to crash; -1 disables the crash",
    )
    chaos.add_argument(
        "--crash-at",
        type=float,
        default=0.2,
        help="crash time as a fraction of the fault-free run",
    )
    chaos.add_argument(
        "--restart-at",
        type=float,
        default=0.5,
        help="restart time as a fraction; -1 keeps the proxy down",
    )
    chaos.add_argument(
        "--drop-rate",
        type=float,
        default=0.02,
        help="injected global frame-drop probability",
    )
    chaos.add_argument(
        "--latency-extra",
        type=float,
        default=0.0,
        help="extra one-way seconds injected on the origin (brownout)",
    )
    chaos.add_argument(
        "--partition-proxy",
        type=int,
        default=-1,
        help="index of a proxy to partition from the origin; -1 disables",
    )
    chaos.add_argument(
        "--partition-from",
        type=float,
        default=0.2,
        help="partition start as a fraction of the fault-free run",
    )
    chaos.add_argument(
        "--partition-until",
        type=float,
        default=0.5,
        help="partition heal as a fraction; -1 never heals",
    )
    chaos.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="max faulted-vs-clean ratio divergence before failing",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic CI self-test: smoke workload, proxy crash + "
        "2%% frame drops (exit 3 on divergence or conservation failure)",
    )
    chaos.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    chaos.set_defaults(handler=commands.cmd_chaos)

    fleet = subparsers.add_parser(
        "fleet",
        help="run the hierarchical proxy fleet (region + subnet caches, "
        "sibling probes) against a single-tier deployment at equal "
        "total storage",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--preset",
        default="smoke",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    fleet.add_argument(
        "--policy",
        default="hierarchical",
        choices=[
            "hierarchical",
            "cooperative",
            "power-of-d",
            "greedy",
            "geographic",
        ],
        help="fleet placement policy",
    )
    fleet.add_argument(
        "--budget-mb",
        type=float,
        default=2.0,
        help="total storage budget in MB across every fleet node",
    )
    fleet.add_argument(
        "--probe-siblings",
        type=int,
        default=2,
        help="siblings probed on a node-local miss (0 disables probing)",
    )
    fleet.add_argument(
        "--region-fraction",
        type=float,
        default=0.65,
        help="fraction of each region's share kept at the region node",
    )
    fleet.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic CI gate: run twice, require bit-identical "
        "counters and every ratio to beat the single tier (exit 3 on "
        "failure)",
    )
    fleet.add_argument(
        "--trace-out",
        default=None,
        help="write the fleet arm's per-node trace as JSONL to this path",
    )
    fleet.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    fleet.set_defaults(handler=commands.cmd_fleet)

    deploy = subparsers.add_parser(
        "deploy",
        help="run the baseline/speculative pair as a real multi-process "
        "deployment: consistent-hash-sharded origins and proxy hosts "
        "over TCP, coordinated by a durable JSONL event bus",
    )
    deploy.add_argument("--seed", type=int, default=0)
    deploy.add_argument(
        "--preset",
        default="smoke",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    deploy.add_argument(
        "--shards",
        type=int,
        default=2,
        help="origin shard processes (consistent hashing over doc ids)",
    )
    deploy.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="owners per document on the hash ring (failover depth)",
    )
    deploy.add_argument(
        "--processes",
        type=int,
        default=None,
        help="total worker processes; default shards + 2 proxy hosts, "
        "1 selects the in-process single-loop mode",
    )
    deploy.add_argument(
        "--codec",
        default="binary",
        choices=["binary", "json"],
        help="wire codec every TCP frame round-trips through",
    )
    deploy.add_argument(
        "--bus-dir",
        default=None,
        help="event-bus directory (default: a fresh temp dir); each arm "
        "logs its topics under its own subdirectory",
    )
    deploy.add_argument(
        "--budget-mb",
        type=float,
        default=2.0,
        help="proxy dissemination budget in MB",
    )
    deploy.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="max faulted-vs-clean ratio divergence in --smoke mode",
    )
    deploy.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic CI gate: 2-shard/2-proxy-host deployment "
        "bit-identical to the single-loop reference, then a scripted "
        "crash/partition run held to the tolerance (exit 3 on failure)",
    )
    deploy.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    deploy.set_defaults(handler=commands.cmd_deploy)

    profile = subparsers.add_parser(
        "profile",
        help="profile a workload's arrival bursts, popularity "
        "concentration, session lengths and strides in one streaming "
        "pass (no materialized trace)",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--preset",
        default="smoke",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    profile.add_argument(
        "--clf",
        default=None,
        help="profile an imported CLF log instead of a synthetic workload",
    )
    profile.add_argument(
        "--window",
        type=float,
        default=3600.0,
        help="arrival-rate window in seconds (default: 3600)",
    )
    profile.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: stream paper-scale x10 through the profiler under "
        "tracemalloc, enforce the constant-memory budget (exit 3 on "
        "regression) and gate stream throughput against the baseline",
    )
    profile.add_argument(
        "--baseline",
        default="BENCH_PERF.json",
        help="path of the committed perf baseline (default: "
        "./BENCH_PERF.json); used with --smoke",
    )
    profile.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --smoke: write this run's stream medians into the "
        "baseline file instead of gating against it",
    )
    profile.add_argument(
        "--out",
        default=None,
        help="write the profile (or smoke-gate report) as JSON to this "
        "path",
    )
    profile.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    profile.set_defaults(handler=commands.cmd_profile)

    sample = subparsers.add_parser(
        "sample",
        help="estimate the four paper ratios from a client sample with "
        "bootstrap confidence intervals (Horvitz-Thompson over "
        "per-client contributions)",
    )
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument(
        "--preset",
        default="smoke",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    sample.add_argument(
        "--fraction",
        type=float,
        default=0.05,
        help="fraction of clients to sample (default: 0.05)",
    )
    sample.add_argument(
        "--boot",
        type=int,
        default=400,
        help="bootstrap replicates for the intervals (default: 400)",
    )
    sample.add_argument(
        "--level",
        type=float,
        default=0.95,
        help="confidence level for the intervals (default: 0.95)",
    )
    sample.add_argument(
        "--train-fraction",
        type=float,
        default=0.5,
        help="fraction of the trace duration used to train the "
        "dependency model (default: 0.5)",
    )
    sample.add_argument(
        "--check",
        action="store_true",
        help="CI gate: on the pinned check workload, require every "
        "interval to cover the exact full replay (exit 3 on a miss)",
    )
    sample.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    sample.set_defaults(handler=commands.cmd_sample)

    serve = subparsers.add_parser(
        "serve",
        help="serve a synthetic catalog over real TCP with in-band "
        "speculation (length-prefixed binary or JSON frames)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--preset",
        default="small",
        help="workload preset, or 'smoke' for the tiny smoke workload",
    )
    serve.add_argument(
        "--threshold", type=float, default=0.25, help="speculation T_p"
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="exit after serving this many requests",
    )
    serve.add_argument(
        "--codec",
        default="auto",
        choices=["auto", "binary", "json"],
        help="reply wire format: auto mirrors each connection's first "
        "frame; json forces the debug/interop format",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="start, answer a few requests from an in-process client, exit",
    )
    serve.set_defaults(handler=commands.cmd_serve)

    bench = subparsers.add_parser(
        "bench",
        help="time the engine's hot loops, record BENCH_PERF.json, and "
        "gate against speedup floors and the committed baseline",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI-sized scale instead of the full reference scale",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repetitions per benchmark (default: per-scale)",
    )
    bench.add_argument(
        "--baseline",
        default="BENCH_PERF.json",
        help="path of the committed baseline (default: ./BENCH_PERF.json)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run's medians into the baseline file (speedup "
        "floors are still enforced so a bad baseline cannot land)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    bench.set_defaults(handler=commands.cmd_bench)

    trace = subparsers.add_parser(
        "trace",
        help="run an observed loadtest/chaos and dump its deterministic "
        "JSONL event trace (requests, speculation, pushes, faults)",
    )
    trace.add_argument(
        "run",
        nargs="?",
        default="loadtest",
        choices=["loadtest", "chaos"],
        help="which kind of run to trace (default loadtest)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--limit",
        type=int,
        default=65536,
        help="trace ring size; older events beyond it are dropped",
    )
    trace.add_argument(
        "--out", default=None, help="write the JSONL here instead of stdout"
    )
    trace.add_argument(
        "--metrics-out",
        default=None,
        help="also write a Prometheus text snapshot of the speculative arm",
    )
    trace.add_argument(
        "--smoke",
        action="store_true",
        help="determinism self-check: run twice and require byte-identical "
        "traces (exit 3 on drift)",
    )
    trace.set_defaults(handler=commands.cmd_trace)

    metrics = subparsers.add_parser(
        "metrics",
        help="run an observed loadtest/chaos and export windowed "
        "time-series (ratio curve table, JSON, or Prometheus text)",
    )
    metrics.add_argument(
        "run",
        nargs="?",
        default="loadtest",
        choices=["loadtest", "chaos"],
        help="which kind of run to measure (default loadtest)",
    )
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--limit", type=int, default=65536, help="trace ring size"
    )
    metrics.add_argument(
        "--window",
        type=float,
        default=3600.0,
        help="time-series window in virtual seconds",
    )
    metrics.add_argument(
        "--format",
        choices=["table", "json", "prometheus"],
        default="table",
        help="output format (default: ratio-curve table)",
    )
    metrics.add_argument(
        "--out", default=None, help="write the output here instead of stdout"
    )
    metrics.set_defaults(handler=commands.cmd_metrics)

    racecheck = subparsers.add_parser(
        "racecheck",
        help="schedule-perturbation race gate: replay a loadtest under "
        "seeded shuffles of same-timestamp timer ties and require "
        "bit-identical ratios (exit 3 on divergence)",
    )
    racecheck.add_argument("--seed", type=int, default=0, help="workload seed")
    racecheck.add_argument(
        "--perturbations",
        type=int,
        default=8,
        help="number of perturbed schedules to replay (default 8)",
    )
    racecheck.add_argument(
        "--base-seed",
        type=int,
        default=1,
        help="first tie-break seed (seeds are base..base+N-1)",
    )
    racecheck.add_argument(
        "--smoke",
        action="store_true",
        help="use the small smoke workload (the CI gate)",
    )
    racecheck.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    racecheck.add_argument(
        "--out", default=None, help="write the JSON report here as well"
    )
    racecheck.set_defaults(handler=commands.cmd_racecheck)

    subparsers.add_parser(
        "lint",
        help="static analysis enforcing simulation invariants "
        "(determinism, layering, numerical safety, API hygiene, RNG/"
        "clock provenance, async interleaving)",
        add_help=False,
    )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Returns:
        Process exit code: 0 on success, 1 on lint findings, 2 on a
        usage/data error, 3 on a runtime protocol violation (including
        live-vs-batch divergence), 4 on a transport failure, 5 on a
        performance regression (``repro bench`` gate).
    """
    # `repro lint` owns its whole argument tail (it has flags like
    # --format that must not collide with the main parser), so dispatch
    # it before general parsing.
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["lint"]:
        from ..analysis import runner

        return runner.main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        args.handler(args)
    except commands.CommandError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except RuntimeProtocolError as error:
        print(f"protocol error: {error}", file=sys.stderr)
        return 3
    except TransportError as error:
        print(f"transport error: {error}", file=sys.stderr)
        return 4
    except PerfRegressionError as error:
        print(f"{error}", file=sys.stderr)
        return 5
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
