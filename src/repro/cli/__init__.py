"""Command-line interface.

``repro`` (or ``python -m repro``) exposes the library's pipelines as
subcommands:

* ``repro generate`` — write a calibrated synthetic trace as a Common
  Log Format file.
* ``repro analyze``  — the section-2 measurement pipeline over a log
  (cleaning, classification, block analysis, λ fit).
* ``repro simulate`` — the section-3 speculative-service experiment
  (train/test split, threshold sweep, the four ratios).
* ``repro plan``     — dissemination storage planning for one or more
  server logs.
"""

from .main import build_parser, main

__all__ = ["build_parser", "main"]
