"""Implementations of the ``repro`` subcommands."""

from __future__ import annotations

from pathlib import Path

from ..config import BASELINE
from ..core import DisseminationPlanner, Experiment, format_table
from ..errors import ReproError
from ..popularity import (
    PopularityProfile,
    analyze_blocks,
    classify_documents,
    count_classes,
    fit_lambda,
)
from ..speculation import ThresholdPolicy
from ..trace import Trace, TraceCleaner, read_clf, write_clf
from ..workload import GeneratorConfig, SyntheticTraceGenerator


class CommandError(Exception):
    """A user-facing CLI failure (bad input, unusable data)."""


def _load_trace(path: str, local_domains: list[str]) -> Trace:
    log_path = Path(path)
    if not log_path.exists():
        raise CommandError(f"log file not found: {path}")
    with log_path.open() as handle:
        trace = read_clf(handle, local_domains=local_domains)
    if len(trace) == 0:
        raise CommandError(f"no parsable CLF lines in {path}")
    return trace


def cmd_generate(args) -> None:
    """``repro generate`` — write a synthetic trace as a CLF log."""
    try:
        if args.paper_scale:
            config = GeneratorConfig.paper_scale(seed=args.seed)
        else:
            config = GeneratorConfig(
                seed=args.seed,
                n_pages=args.pages,
                n_clients=args.clients,
                n_sessions=args.sessions,
                duration_days=args.days,
            )
        trace = SyntheticTraceGenerator(config).generate()
    except ReproError as error:
        raise CommandError(str(error)) from error
    output = Path(args.output)
    with output.open("w") as handle:
        for line in write_clf(trace):
            handle.write(line + "\n")
    print(
        f"wrote {len(trace):,} accesses ({len(trace.documents):,} documents, "
        f"{trace.duration / 86400:.1f} days) to {output}"
    )


def cmd_analyze(args) -> None:
    """``repro analyze`` — the section-2 measurement pipeline."""
    trace = _load_trace(args.log, args.local_domain)
    if getattr(args, "sample", None) is not None:
        from ..trace import sample_clients

        try:
            trace = sample_clients(trace, args.sample)
        except ReproError as error:
            raise CommandError(str(error)) from error
        print(
            f"sampled {args.sample:.0%} of clients: "
            f"{len(trace):,} requests remain"
        )
    if not args.no_clean:
        trace, report = TraceCleaner().clean(trace)
        print(
            f"cleaned: kept {report.kept:,}, dropped {report.dropped:,}, "
            f"renamed {report.aliases_renamed:,}"
        )
        if len(trace) == 0:
            raise CommandError("cleaning removed every request")

    profile = PopularityProfile.from_trace(trace)
    counts = count_classes(classify_documents(profile))
    print(
        format_table(
            ["remotely popular", "globally popular", "locally popular"],
            [[counts.remote, counts.global_, counts.local]],
            title="\ndocument classes (remote-ratio >85% / between / <15%)",
        )
    )

    analysis = analyze_blocks(profile, block_bytes=args.block_kb * 1024)
    if analysis.blocks:
        print(
            format_table(
                ["blocks", "top-block share", "top-10% share"],
                [
                    [
                        len(analysis.blocks),
                        f"{analysis.top_block_request_share:.1%}",
                        f"{analysis.share_of_top_fraction(0.10):.1%}",
                    ]
                ],
                title=f"\n{args.block_kb} KB block analysis (Figure 1)",
            )
        )
    curve_bytes, coverage = profile.coverage_curve()
    if curve_bytes.size:
        lam = fit_lambda(curve_bytes, coverage)
        print(f"\nexponential popularity fit: lambda = {lam:.4g} /byte")
    else:
        print("\nno remote accesses: lambda not fitted")


def cmd_simulate(args) -> None:
    """``repro simulate`` — the section-3 experiment over a log."""
    trace = _load_trace(args.log, args.local_domain)
    train_days = args.train_days
    if train_days is None:
        train_days = max(trace.duration / 86_400.0 / 2.0, 1e-6)

    config = BASELINE
    if args.max_size_kb is not None:
        config = config.with_updates(max_size=args.max_size_kb * 1024)

    try:
        experiment = Experiment(trace, config, train_days=train_days)
    except ReproError as error:
        raise CommandError(str(error)) from error

    if args.digest_fp is not None and not args.cooperative:
        raise CommandError("--digest-fp requires --cooperative")
    evaluate_kwargs = dict(
        cooperative=args.cooperative, digest_fp_rate=args.digest_fp
    )

    rows = []
    if args.adaptive_budget is not None:
        from ..speculation import AdaptiveBudgetPolicy

        if args.adaptive_budget < 0:
            raise CommandError("--adaptive-budget must be non-negative")
        policy = AdaptiveBudgetPolicy(
            target_traffic_increase=args.adaptive_budget,
            max_size=config.max_size,
        )
        ratios, __ = experiment.evaluate(policy, **evaluate_kwargs)
        rows.append(
            [
                f"adaptive@{args.adaptive_budget:.0%}",
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{ratios.service_time_reduction:.1%}",
                f"{ratios.miss_rate_reduction:.1%}",
            ]
        )
    else:
        thresholds = args.threshold or [0.9, 0.5, 0.25, 0.1]
        for threshold in thresholds:
            if not 0.0 < threshold <= 1.0:
                raise CommandError(f"threshold {threshold} outside (0, 1]")
            policy = ThresholdPolicy(
                threshold=threshold, max_size=config.max_size
            )
            ratios, __ = experiment.evaluate(policy, **evaluate_kwargs)
            rows.append(
                [
                    f"{threshold:.2f}",
                    f"{ratios.traffic_increase:+.1%}",
                    f"{ratios.server_load_reduction:.1%}",
                    f"{ratios.service_time_reduction:.1%}",
                    f"{ratios.miss_rate_reduction:.1%}",
                ]
            )
    mode = "cooperative" if args.cooperative else "non-cooperative"
    print(
        format_table(
            ["policy", "traffic", "load red.", "time red.", "miss red."],
            rows,
            title=(
                f"speculative service ({mode} clients, "
                f"{train_days:.1f} training days)"
            ),
        )
    )


def cmd_fit(args) -> None:
    """``repro fit`` — estimate a workload configuration from a log."""
    import dataclasses

    from ..workload import SyntheticTraceGenerator, fit_generator_config

    trace = _load_trace(args.log, args.local_domain)
    try:
        fitted = fit_generator_config(trace, seed=args.seed)
    except ReproError as error:
        raise CommandError(str(error)) from error

    rows = []
    for field in dataclasses.fields(fitted.config):
        value = getattr(fitted.config, field.name)
        provenance = fitted.measured.get(field.name)
        if provenance is None:
            provenance = (
                "(assumed default)" if field.name in fitted.assumed else ""
            )
        rows.append([field.name, f"{value:g}" if isinstance(value, float) else value, provenance])
    print(
        format_table(
            ["parameter", "value", "fitted from"],
            rows,
            title=f"workload configuration fitted from {args.log}",
        )
    )

    if args.regenerate:
        twin = SyntheticTraceGenerator(fitted.config).generate()
        output = Path(args.regenerate)
        with output.open("w") as handle:
            for line in write_clf(twin):
                handle.write(line + "\n")
        print(
            f"\nwrote a {len(twin):,}-access synthetic twin to {output} "
            f"(source had {len(trace):,})"
        )


def cmd_report(args) -> None:
    """``repro report`` — the headline evaluation as one markdown file."""
    from ..core.report import generate_report

    try:
        markdown = generate_report(args.preset, args.seed)
    except ReproError as error:
        raise CommandError(str(error)) from error
    output = Path(args.out)
    output.write_text(markdown)
    print(f"wrote evaluation report to {output}")


def cmd_sweep(args) -> None:
    """``repro sweep`` — the Figure-5 threshold sweep over a log."""
    from ..core import sweep_thresholds

    trace = _load_trace(args.log, args.local_domain)
    train_days = args.train_days
    if train_days is None:
        train_days = max(trace.duration / 86_400.0 / 2.0, 1e-6)
    try:
        thresholds = [float(part) for part in args.thresholds.split(",") if part]
    except ValueError as error:
        raise CommandError(f"bad threshold list: {error}") from error
    if not thresholds:
        raise CommandError("empty threshold list")
    for threshold in thresholds:
        if not 0.0 < threshold <= 1.0:
            raise CommandError(f"threshold {threshold} outside (0, 1]")

    try:
        experiment = Experiment(trace, BASELINE, train_days=train_days)
    except ReproError as error:
        raise CommandError(str(error)) from error
    points = sweep_thresholds(experiment, thresholds)

    header = [
        "threshold",
        "traffic_increase",
        "load_reduction",
        "time_reduction",
        "miss_reduction",
    ]
    csv_rows = [
        [
            f"{point.parameter:g}",
            f"{point.ratios.traffic_increase:.6f}",
            f"{point.ratios.server_load_reduction:.6f}",
            f"{point.ratios.service_time_reduction:.6f}",
            f"{point.ratios.miss_rate_reduction:.6f}",
        ]
        for point in points
    ]
    if args.csv:
        with Path(args.csv).open("w") as handle:
            handle.write(",".join(header) + "\n")
            for row in csv_rows:
                handle.write(",".join(row) + "\n")
        print(f"wrote {len(csv_rows)} sweep points to {args.csv}")
    else:
        print(format_table(header, csv_rows, title="threshold sweep (Figure 5)"))


def cmd_plan(args) -> None:
    """``repro plan`` — dissemination storage planning."""
    if args.budget_mb <= 0:
        raise CommandError("--budget-mb must be positive")
    planner = DisseminationPlanner()
    for spec in args.logs:
        if "=" in spec:
            name, __, path = spec.partition("=")
        else:
            name, path = Path(spec).stem, spec
        try:
            planner.add_server(name, _load_trace(path, args.local_domain))
        except ReproError as error:
            raise CommandError(str(error)) from error

    try:
        plan = planner.plan(args.budget_mb * 1e6)
    except ReproError as error:
        raise CommandError(str(error)) from error

    rows = [
        [
            name,
            f"{plan.allocations[name] / 1e6:.2f} MB",
            len(plan.documents[name]),
        ]
        for name in planner.servers
    ]
    print(
        format_table(
            ["server", "granted storage", "documents"],
            rows,
            title=(
                f"plan for {args.budget_mb:g} MB: intercepts "
                f"{plan.expected_alpha:.1%} of remote requests "
                f"(empirical {plan.empirical_alpha:.1%})"
            ),
        )
    )
