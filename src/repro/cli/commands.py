"""Implementations of the ``repro`` subcommands."""

from __future__ import annotations

from pathlib import Path

from ..config import BASELINE
from ..core import DisseminationPlanner, Experiment, format_table
from ..errors import ReproError, RuntimeProtocolError, TransportError
from ..popularity import (
    PopularityProfile,
    analyze_blocks,
    classify_documents,
    count_classes,
    fit_lambda,
)
from ..speculation import ThresholdPolicy
from ..trace import Trace, TraceCleaner, read_clf, write_clf
from ..workload import GeneratorConfig, SyntheticTraceGenerator


class CommandError(Exception):
    """A user-facing CLI failure (bad input, unusable data)."""


def _load_trace(path: str, local_domains: list[str]) -> Trace:
    log_path = Path(path)
    if not log_path.exists():
        raise CommandError(f"log file not found: {path}")
    with log_path.open() as handle:
        trace = read_clf(handle, local_domains=local_domains)
    if len(trace) == 0:
        raise CommandError(f"no parsable CLF lines in {path}")
    return trace


def cmd_generate(args) -> None:
    """``repro generate`` — write a synthetic trace as a CLF log."""
    try:
        if args.paper_scale:
            config = GeneratorConfig.paper_scale(seed=args.seed)
        else:
            config = GeneratorConfig(
                seed=args.seed,
                n_pages=args.pages,
                n_clients=args.clients,
                n_sessions=args.sessions,
                duration_days=args.days,
            )
        trace = SyntheticTraceGenerator(config).generate()
    except ReproError as error:
        raise CommandError(str(error)) from error
    output = Path(args.output)
    with output.open("w") as handle:
        for line in write_clf(trace):
            handle.write(line + "\n")
    print(
        f"wrote {len(trace):,} accesses ({len(trace.documents):,} documents, "
        f"{trace.duration / 86400:.1f} days) to {output}"
    )


def cmd_analyze(args) -> None:
    """``repro analyze`` — the section-2 measurement pipeline."""
    trace = _load_trace(args.log, args.local_domain)
    if getattr(args, "sample", None) is not None:
        from ..trace import sample_clients

        try:
            trace = sample_clients(trace, args.sample)
        except ReproError as error:
            raise CommandError(str(error)) from error
        print(
            f"sampled {args.sample:.0%} of clients: "
            f"{len(trace):,} requests remain"
        )
    if not args.no_clean:
        trace, report = TraceCleaner().clean(trace)
        print(
            f"cleaned: kept {report.kept:,}, dropped {report.dropped:,}, "
            f"renamed {report.aliases_renamed:,}"
        )
        if len(trace) == 0:
            raise CommandError("cleaning removed every request")

    profile = PopularityProfile.from_trace(trace)
    counts = count_classes(classify_documents(profile))
    print(
        format_table(
            ["remotely popular", "globally popular", "locally popular"],
            [[counts.remote, counts.global_, counts.local]],
            title="\ndocument classes (remote-ratio >85% / between / <15%)",
        )
    )

    analysis = analyze_blocks(profile, block_bytes=args.block_kb * 1024)
    if analysis.blocks:
        print(
            format_table(
                ["blocks", "top-block share", "top-10% share"],
                [
                    [
                        len(analysis.blocks),
                        f"{analysis.top_block_request_share:.1%}",
                        f"{analysis.share_of_top_fraction(0.10):.1%}",
                    ]
                ],
                title=f"\n{args.block_kb} KB block analysis (Figure 1)",
            )
        )
    curve_bytes, coverage = profile.coverage_curve()
    if curve_bytes.size:
        lam = fit_lambda(curve_bytes, coverage)
        print(f"\nexponential popularity fit: lambda = {lam:.4g} /byte")
    else:
        print("\nno remote accesses: lambda not fitted")


def cmd_simulate(args) -> None:
    """``repro simulate`` — the section-3 experiment over a log."""
    trace = _load_trace(args.log, args.local_domain)
    train_days = args.train_days
    if train_days is None:
        train_days = max(trace.duration / 86_400.0 / 2.0, 1e-6)

    config = BASELINE
    if args.max_size_kb is not None:
        config = config.with_updates(max_size=args.max_size_kb * 1024)

    try:
        experiment = Experiment(trace, config, train_days=train_days)
    except ReproError as error:
        raise CommandError(str(error)) from error

    if args.digest_fp is not None and not args.cooperative:
        raise CommandError("--digest-fp requires --cooperative")
    evaluate_kwargs = dict(
        cooperative=args.cooperative, digest_fp_rate=args.digest_fp
    )

    rows = []
    if args.adaptive_budget is not None:
        from ..speculation import AdaptiveBudgetPolicy

        if args.adaptive_budget < 0:
            raise CommandError("--adaptive-budget must be non-negative")
        policy = AdaptiveBudgetPolicy(
            target_traffic_increase=args.adaptive_budget,
            max_size=config.max_size,
        )
        ratios, __ = experiment.evaluate(policy, **evaluate_kwargs)
        rows.append(
            [
                f"adaptive@{args.adaptive_budget:.0%}",
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{ratios.service_time_reduction:.1%}",
                f"{ratios.miss_rate_reduction:.1%}",
            ]
        )
    else:
        thresholds = args.threshold or [0.9, 0.5, 0.25, 0.1]
        for threshold in thresholds:
            if not 0.0 < threshold <= 1.0:
                raise CommandError(f"threshold {threshold} outside (0, 1]")
            policy = ThresholdPolicy(
                threshold=threshold, max_size=config.max_size
            )
            ratios, __ = experiment.evaluate(policy, **evaluate_kwargs)
            rows.append(
                [
                    f"{threshold:.2f}",
                    f"{ratios.traffic_increase:+.1%}",
                    f"{ratios.server_load_reduction:.1%}",
                    f"{ratios.service_time_reduction:.1%}",
                    f"{ratios.miss_rate_reduction:.1%}",
                ]
            )
    mode = "cooperative" if args.cooperative else "non-cooperative"
    print(
        format_table(
            ["policy", "traffic", "load red.", "time red.", "miss red."],
            rows,
            title=(
                f"speculative service ({mode} clients, "
                f"{train_days:.1f} training days)"
            ),
        )
    )


def cmd_fit(args) -> None:
    """``repro fit`` — estimate a workload configuration from a log."""
    import dataclasses

    from ..workload import SyntheticTraceGenerator, fit_generator_config

    trace = _load_trace(args.log, args.local_domain)
    try:
        fitted = fit_generator_config(trace, seed=args.seed)
    except ReproError as error:
        raise CommandError(str(error)) from error

    rows = []
    for field in dataclasses.fields(fitted.config):
        value = getattr(fitted.config, field.name)
        provenance = fitted.measured.get(field.name)
        if provenance is None:
            provenance = (
                "(assumed default)" if field.name in fitted.assumed else ""
            )
        rows.append([field.name, f"{value:g}" if isinstance(value, float) else value, provenance])
    print(
        format_table(
            ["parameter", "value", "fitted from"],
            rows,
            title=f"workload configuration fitted from {args.log}",
        )
    )

    if args.regenerate:
        twin = SyntheticTraceGenerator(fitted.config).generate()
        output = Path(args.regenerate)
        with output.open("w") as handle:
            for line in write_clf(twin):
                handle.write(line + "\n")
        print(
            f"\nwrote a {len(twin):,}-access synthetic twin to {output} "
            f"(source had {len(trace):,})"
        )


def cmd_report(args) -> None:
    """``repro report`` — the headline evaluation as one markdown file."""
    from ..core.report import generate_report

    try:
        markdown = generate_report(args.preset, args.seed)
    except ReproError as error:
        raise CommandError(str(error)) from error
    output = Path(args.out)
    output.write_text(markdown)
    print(f"wrote evaluation report to {output}")


def cmd_sweep(args) -> None:
    """``repro sweep`` — the Figure-5 threshold sweep over a log."""
    from ..core import evaluate_thresholds

    trace = _load_trace(args.log, args.local_domain)
    train_days = args.train_days
    if train_days is None:
        train_days = max(trace.duration / 86_400.0 / 2.0, 1e-6)
    try:
        thresholds = [float(part) for part in args.thresholds.split(",") if part]
    except ValueError as error:
        raise CommandError(f"bad threshold list: {error}") from error
    if not thresholds:
        raise CommandError("empty threshold list")
    for threshold in thresholds:
        if not 0.0 < threshold <= 1.0:
            raise CommandError(f"threshold {threshold} outside (0, 1]")

    try:
        experiment = Experiment(trace, BASELINE, train_days=train_days)
    except ReproError as error:
        raise CommandError(str(error)) from error
    points = evaluate_thresholds(experiment, thresholds, workers=args.workers)

    header = [
        "threshold",
        "traffic_increase",
        "load_reduction",
        "time_reduction",
        "miss_reduction",
    ]
    csv_rows = [
        [
            f"{point.parameter:g}",
            f"{point.ratios.traffic_increase:.6f}",
            f"{point.ratios.server_load_reduction:.6f}",
            f"{point.ratios.service_time_reduction:.6f}",
            f"{point.ratios.miss_rate_reduction:.6f}",
        ]
        for point in points
    ]
    if args.csv:
        with Path(args.csv).open("w") as handle:
            handle.write(",".join(header) + "\n")
            for row in csv_rows:
                handle.write(",".join(row) + "\n")
        print(f"wrote {len(csv_rows)} sweep points to {args.csv}")
    else:
        print(format_table(header, csv_rows, title="threshold sweep (Figure 5)"))


def cmd_plan(args) -> None:
    """``repro plan`` — dissemination storage planning."""
    if args.budget_mb <= 0:
        raise CommandError("--budget-mb must be positive")
    planner = DisseminationPlanner()
    for spec in args.logs:
        if "=" in spec:
            name, __, path = spec.partition("=")
        else:
            name, path = Path(spec).stem, spec
        try:
            planner.add_server(name, _load_trace(path, args.local_domain))
        except ReproError as error:
            raise CommandError(str(error)) from error

    try:
        plan = planner.plan(args.budget_mb * 1e6)
    except ReproError as error:
        raise CommandError(str(error)) from error

    rows = [
        [
            name,
            f"{plan.allocations[name] / 1e6:.2f} MB",
            len(plan.documents[name]),
        ]
        for name in planner.servers
    ]
    print(
        format_table(
            ["server", "granted storage", "documents"],
            rows,
            title=(
                f"plan for {args.budget_mb:g} MB: intercepts "
                f"{plan.expected_alpha:.1%} of remote requests "
                f"(empirical {plan.empirical_alpha:.1%})"
            ),
        )
    )


def _live_summary(report) -> list[str]:
    """Human-readable lines for one live loadtest report."""
    lines = [f"live ratios : {report.ratios.format()}"]
    if report.batch_ratios is not None:
        lines.append(f"batch check : {report.batch_ratios.format()}")
        lines.append(f"divergence  : {report.max_divergence():.2%} (max of 3 ratios)")
    latency = report.speculative.get("histograms", {}).get("request_latency", {})
    if latency.get("count"):
        lines.append(
            "latency     : "
            f"p50 {latency['p50'] * 1000:.2f} ms  "
            f"p99 {latency['p99'] * 1000:.2f} ms  "
            f"({latency['count']:,} requests)"
        )
    counters = report.speculative.get("counters", {})
    lines.append(
        "speculative : "
        f"{counters.get('accesses', 0):,.0f} accesses, "
        f"{counters.get('cache_hits', 0):,.0f} cache hits, "
        f"{counters.get('proxy_requests', 0):,.0f} proxy-served, "
        f"{counters.get('origin_requests', 0):,.0f} origin-served"
    )
    lines.append(f"disseminated: {report.disseminated_documents:,} documents")
    return lines


def _legacy_loadtest_deploy(args):
    """Fold the deprecated ``--codec``/``--workers`` flags into a spec.

    Execution shape (worker shards, wire codec) lives in
    :class:`~repro.config.DeploySpec` now; the flags survive as shims
    that build the equivalent local spec and warn.
    """
    import warnings

    from ..config import DeploySpec

    if args.codec is None and args.workers is None:
        return None
    flags = ", ".join(
        flag
        for flag, value in (
            ("--codec", args.codec),
            ("--workers", args.workers),
        )
        if value is not None
    )
    with warnings.catch_warnings():
        # DeprecationWarning is hidden outside __main__ by default;
        # a CLI deprecation the user never sees deprecates nothing.
        warnings.simplefilter("always", DeprecationWarning)
        warnings.warn(
            f"`repro loadtest {flags}` is deprecated; execution shape "
            "(workers, wire codec) lives in DeploySpec — use "
            "`repro deploy` or thread RunSpec.deploy through "
            "repro.api.Session",
            DeprecationWarning,
            stacklevel=2,
        )
    return DeploySpec(
        workers=args.workers if args.workers is not None else 1,
        codec=args.codec,
    )


def cmd_loadtest(args) -> None:
    """``repro loadtest`` — drive the live runtime on the in-memory net."""
    import json as _json

    from ..runtime import (
        LiveSettings,
        execute_loadtest,
        execute_smoke,
        smoke_workload,
    )
    from ..workload import preset

    deploy = _legacy_loadtest_deploy(args)
    if args.smoke:
        # The CI gate: deterministic live run, self-verified against the
        # batch combined simulator; raises RuntimeProtocolError (exit 3)
        # on divergence beyond the tolerance.  CI's codec matrix runs
        # this once per codec and diffs the ratios bit-for-bit.
        report = execute_smoke(
            args.seed,
            tolerance=args.tolerance,
            deploy=deploy,
        )
    else:
        try:
            workload = (
                smoke_workload(args.seed)
                if args.preset == "smoke"
                else preset(args.preset, args.seed)
            )
        except ReproError as error:
            raise CommandError(str(error)) from error
        settings = LiveSettings(
            budget_bytes=args.budget_mb * 1e6,
            concurrency=args.concurrency,
            request_timeout=args.timeout,
            learn_online=args.learn_online,
            seed=args.seed,
        )
        try:
            report = execute_loadtest(
                workload,
                settings,
                verify_batch=args.verify_batch,
                deploy=deploy,
            )
        except (RuntimeProtocolError, TransportError):
            raise  # mapped to dedicated exit codes by main()
        except ReproError as error:
            raise CommandError(str(error)) from error
        if args.verify_batch:
            report.require_convergence(args.tolerance)

    if args.json:
        print(
            _json.dumps(
                {
                    "speculative": report.speculative,
                    "baseline": report.baseline,
                    "ratios": {
                        "bandwidth": report.ratios.bandwidth_ratio,
                        "server_load": report.ratios.server_load_ratio,
                        "service_time": report.ratios.service_time_ratio,
                        "miss_rate": report.ratios.miss_rate_ratio,
                    },
                },
                sort_keys=True,
            )
        )
        return
    for line in _live_summary(report):
        print(line)


def cmd_racecheck(args) -> None:
    """``repro racecheck`` — schedule-perturbation race gate.

    Replays the smoke loadtest under seeded shuffles of same-deadline
    timer ties (every perturbation is a schedule a conforming event
    loop could have produced) and requires the full metrics snapshots
    — both arms, plus the paper's four ratios — to be bit-identical
    across all of them.  Divergence raises
    :class:`~repro.errors.RuntimeProtocolError` (exit 3).
    """
    import json as _json

    from ..analysis.schedules import run_schedule_sweep
    from ..runtime import LiveSettings, execute_loadtest, smoke_workload
    from ..runtime.metrics import verify_conservation

    if args.perturbations < 1:
        raise CommandError("--perturbations must be >= 1")
    try:
        workload = smoke_workload(args.seed)
    except ReproError as error:
        raise CommandError(str(error)) from error

    def run_arm(schedule_seed):
        settings = LiveSettings(seed=args.seed, schedule_seed=schedule_seed)
        report = execute_loadtest(workload, settings)
        # Conservation must hold on *every* legal schedule, not just
        # the stock one; racecheck runs are fault-free so the strict
        # identities apply.
        verify_conservation(report.speculative, strict=True)
        verify_conservation(report.baseline, strict=True)
        return {
            "speculative": report.speculative,
            "baseline": report.baseline,
            "ratios": {
                "bandwidth": report.ratios.bandwidth_ratio,
                "server_load": report.ratios.server_load_ratio,
                "service_time": report.ratios.service_time_ratio,
                "miss_rate": report.ratios.miss_rate_ratio,
            },
        }

    try:
        sweep = run_schedule_sweep(
            run_arm,
            perturbations=args.perturbations,
            base_seed=args.base_seed,
        )
    except (RuntimeProtocolError, TransportError):
        raise  # mapped to dedicated exit codes by main()
    except ReproError as error:
        raise CommandError(str(error)) from error

    document = sweep.as_dict()
    if args.out:
        Path(args.out).write_text(
            _json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(_json.dumps(document, sort_keys=True))
    else:
        seeds = ", ".join(str(run.schedule_seed) for run in sweep.runs)
        print(
            f"racecheck: {len(sweep.runs)} perturbed schedules "
            f"(tie seeds {seeds}) vs unperturbed reference"
        )
        ratios = sweep.reference.payload["ratios"]
        print(
            "  reference ratios: "
            f"bandwidth {ratios['bandwidth']:.4f}, "
            f"server load {ratios['server_load']:.4f}, "
            f"service time {ratios['service_time']:.4f}, "
            f"miss rate {ratios['miss_rate']:.4f}"
        )
        verdict = "bit-identical" if sweep.passed else "DIVERGED"
        print(f"  snapshots: {verdict} across all schedules")
    # Gate last so --out/--json capture the report even on failure.
    sweep.require_schedule_independence()


def cmd_chaos(args) -> None:
    """``repro chaos`` — fault-injected live run with resilience checks."""
    import json as _json

    from ..runtime import (
        ChaosSettings,
        LiveSettings,
        execute_chaos,
        execute_chaos_smoke,
        smoke_workload,
    )
    from ..workload import preset

    if args.smoke:
        # The CI gate after `repro loadtest --smoke`: scripted proxy
        # crash + 2% frame drops; raises RuntimeProtocolError (exit 3)
        # when the four ratios diverge or conservation breaks.
        report = execute_chaos_smoke(args.seed, tolerance=args.tolerance)
    else:
        try:
            workload = (
                smoke_workload(args.seed)
                if args.preset == "smoke"
                else preset(args.preset, args.seed)
            )
        except ReproError as error:
            raise CommandError(str(error)) from error
        settings = ChaosSettings(
            live=LiveSettings(
                budget_bytes=args.budget_mb * 1e6,
                request_timeout=args.timeout,
                retries=args.retries,
                seed=args.seed,
            ),
            crash_proxy=None if args.crash_proxy < 0 else args.crash_proxy,
            crash_at=args.crash_at,
            restart_at=None if args.restart_at < 0 else args.restart_at,
            drop_rate=args.drop_rate,
            latency_extra=args.latency_extra,
            latency_target="" if args.latency_extra <= 0 else "origin",
            partition_proxy=(
                None if args.partition_proxy < 0 else args.partition_proxy
            ),
            partition_from=args.partition_from,
            partition_until=(
                None if args.partition_until < 0 else args.partition_until
            ),
        )
        try:
            report = execute_chaos(workload, settings)
        except (RuntimeProtocolError, TransportError):
            raise  # mapped to dedicated exit codes by main()
        except ReproError as error:
            raise CommandError(str(error)) from error
        report.require_resilience(args.tolerance)

    if args.json:
        print(
            _json.dumps(
                {
                    "clean": {
                        "speculative": report.clean.speculative,
                        "baseline": report.clean.baseline,
                    },
                    "faulted": {
                        "speculative": report.faulted.speculative,
                        "baseline": report.faulted.baseline,
                    },
                    "fault_events": [list(pair) for pair in report.fault_events],
                    "divergence": report.max_ratio_divergence(),
                },
                sort_keys=True,
            )
        )
        return
    print(f"fault events ({len(report.fault_events)}):")
    for time, label in report.fault_events:
        print(f"  t={time:10.3f}s  {label[len('fault:'):]}")
    print(f"clean ratios  : {report.clean.ratios.format()}")
    print(f"faulted ratios: {report.faulted.ratios.format()}")
    print(
        f"divergence    : {report.max_ratio_divergence():.2%} "
        "(max of 4 ratios)"
    )
    faulted = report.faulted.speculative.get("counters", {})
    print(
        "faulted run   : "
        f"{faulted.get('retries', 0):,.0f} retries, "
        f"{faulted.get('requests_failed', 0):,.0f} failed, "
        f"{faulted.get('network.frames_dropped', 0):,.0f} frames dropped, "
        f"{faulted.get('network.handler_errors', 0):,.0f} handler errors"
    )


def cmd_fleet(args) -> None:
    """``repro fleet`` — hierarchical proxy fleet vs the single tier."""
    import json as _json

    from ..fleet import FleetSettings, execute_fleet, execute_fleet_smoke
    from ..obs import ObsConfig
    from ..runtime import smoke_workload
    from ..workload import preset

    obs = ObsConfig(trace=True) if args.trace_out else ObsConfig()
    try:
        if args.smoke:
            # The CI gate after `repro chaos --smoke`: the full fleet run
            # twice, bit-identical counters required, every ratio must
            # beat the single-tier deployment (exit 3 otherwise).
            report = execute_fleet_smoke(args.seed, obs=obs)
        else:
            try:
                workload = (
                    smoke_workload(args.seed)
                    if args.preset == "smoke"
                    else preset(args.preset, args.seed)
                )
            except ReproError as error:
                raise CommandError(str(error)) from error
            settings = FleetSettings(
                budget_bytes=args.budget_mb * 1e6,
                policy=args.policy,
                probe_siblings=args.probe_siblings,
                region_fraction=args.region_fraction,
                seed=args.seed,
            )
            report = execute_fleet(workload, settings, obs=obs)
    except (RuntimeProtocolError, TransportError):
        raise  # mapped to dedicated exit codes by main()
    except ReproError as error:
        raise CommandError(str(error)) from error

    if args.trace_out:
        jsonl = report.observed.trace_jsonl() if report.observed else ""
        Path(args.trace_out).write_text(jsonl, encoding="utf-8")

    if args.json:
        print(
            _json.dumps(
                {
                    "plan": report.plan,
                    "improvement": {
                        name: list(pair)
                        for name, pair in report.improvement().items()
                    },
                    "fleet": report.fleet,
                    "single": report.single,
                    "demand": report.demand,
                },
                sort_keys=True,
            )
        )
        return
    print(report.format())
    summary = report.plan
    tiers = ", ".join(
        f"{count} {tier}" for tier, count in summary["tiers"].items()
    )
    print(
        f"plan: {summary['policy']} ({summary['nodes']} nodes: {tiers}), "
        f"{summary['stored_bytes']:,} of {summary['budget_bytes']:,.0f} "
        "bytes placed"
    )
    for name, (fleet_value, single_value) in report.improvement().items():
        sign = "<" if fleet_value < single_value else ">="
        print(
            f"  {name:12s} fleet {fleet_value:.4f} {sign} "
            f"single {single_value:.4f}"
        )


def cmd_deploy(args) -> None:
    """``repro deploy`` — multi-process origins and proxies over TCP."""
    import json as _json

    from ..config import DeploySpec
    from ..deploy import execute_deploy, execute_deploy_smoke
    from ..runtime import LiveSettings, smoke_workload
    from ..workload import preset

    smoke = None
    try:
        if args.smoke:
            # The CI gate after `repro fleet --smoke`: a clean
            # 2-shard / 2-proxy-host deployment whose merged ratios must
            # equal the single-loop reference bit for bit, then the same
            # topology under a scripted crash/partition plan, held to
            # the chaos tolerance (exit 3 otherwise).
            smoke = execute_deploy_smoke(
                args.seed, tolerance=args.tolerance, bus_dir=args.bus_dir
            )
            report = smoke.deploy
        else:
            try:
                workload = (
                    smoke_workload(args.seed)
                    if args.preset == "smoke"
                    else preset(args.preset, args.seed)
                )
                processes = (
                    args.processes
                    if args.processes is not None
                    else args.shards + 2
                )
                spec = DeploySpec(
                    processes=processes,
                    shards=args.shards,
                    replicas=args.replicas,
                    codec=args.codec,
                    bus_path=args.bus_dir,
                )
            except ReproError as error:
                raise CommandError(str(error)) from error
            settings = LiveSettings(
                budget_bytes=args.budget_mb * 1e6, seed=args.seed
            )
            report = execute_deploy(workload, settings, spec=spec)
    except (RuntimeProtocolError, TransportError):
        raise  # mapped to dedicated exit codes by main()
    except ReproError as error:
        raise CommandError(str(error)) from error

    if args.json:
        document = {
            "processes": report.processes,
            "shards": report.spec.shards,
            "replicas": report.spec.replicas,
            "bus_path": report.bus_path,
            "bus_duplicates": report.bus_duplicates,
            "anti_entropy": report.anti_entropy,
            "speculative": report.speculative,
            "baseline": report.baseline,
            "ratios": {
                "bandwidth": report.ratios.bandwidth_ratio,
                "server_load": report.ratios.server_load_ratio,
                "service_time": report.ratios.service_time_ratio,
                "miss_rate": report.ratios.miss_rate_ratio,
            },
        }
        if smoke is not None:
            document["faulted_divergence"] = (
                smoke.chaos.max_ratio_divergence()
            )
            document["fault_events"] = [
                list(pair) for pair in smoke.faulted.fault_events
            ]
        print(_json.dumps(document, sort_keys=True))
        return

    spec = report.spec
    if report.processes == 1:
        print("deploy: 1 process (local single-loop mode)")
    else:
        print(
            f"deploy: {report.processes} processes "
            f"({spec.shards} shards, {spec.replicas} replicas, "
            f"{spec.proxy_hosts} proxy hosts)"
        )
    if report.bus_path:
        print(
            f"  bus: {report.bus_path} "
            f"({report.bus_duplicates} duplicate events absorbed)"
        )
    print(f"  ratios: {report.ratios.format()}")
    if smoke is not None:
        print("  bit-identity: distributed ratios == single-loop reference")
        print(
            f"  faulted divergence: "
            f"{smoke.chaos.max_ratio_divergence():.2%} "
            f"({len(smoke.faulted.fault_events)} fault events)"
        )


def cmd_serve(args) -> None:
    """``repro serve`` — a real TCP origin server on a synthetic catalog."""
    import asyncio

    from ..runtime import (
        OnlineDependencyEstimator,
        OriginServer,
        TcpServer,
        tcp_call,
    )
    from ..runtime import smoke_workload
    from ..runtime.messages import make_request
    from ..workload import preset

    try:
        workload = (
            smoke_workload(args.seed)
            if args.preset == "smoke"
            else preset(args.preset, args.seed)
        )
        trace = SyntheticTraceGenerator(workload).generate().remote_only()
    except ReproError as error:
        raise CommandError(str(error)) from error
    if len(trace) == 0:
        raise CommandError("workload produced no remote requests to serve")

    estimator = OnlineDependencyEstimator(
        window=BASELINE.stride_timeout,
        stride_timeout=BASELINE.stride_timeout,
        learn=True,
    )
    estimator.warm(trace)
    policy = ThresholdPolicy(threshold=args.threshold)
    origin = OriginServer(
        trace.documents, estimator=estimator, policy=policy, config=BASELINE
    )

    async def _serve() -> None:
        server = TcpServer(
            origin.handle,
            host=args.host,
            port=args.port,
            codec=None if args.codec == "auto" else args.codec,
        )
        await server.start()
        print(
            f"serving {len(trace.documents):,} documents on "
            f"{args.host}:{server.port} (threshold {args.threshold}, "
            f"codec {args.codec})",
            flush=True,
        )
        try:
            if args.smoke:
                for index, request in enumerate(trace.requests[:5]):
                    message = make_request(
                        "smoke-client",
                        f"smoke-client#{index}",
                        request.doc_id,
                        request.timestamp,
                    )
                    reply = await tcp_call(
                        args.host, server.port, message, timeout=10.0
                    )
                    riders = len(reply.payload.get("speculated", ()))
                    print(
                        f"  {request.doc_id}: {reply.payload['size']:,} bytes "
                        f"+ {riders} speculated"
                    )
                print(f"smoke OK: {server.requests_served} requests served")
                return
            if args.max_requests is not None:
                while server.requests_served < args.max_requests:
                    await asyncio.sleep(0.05)
                print(f"served {server.requests_served} requests; exiting")
                return
            await asyncio.Event().wait()  # forever; Ctrl-C to stop
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; shutting down")


#: Minimum binary-over-JSON codec speedup on the bench corpus (one
#: encode+decode round trip per message).  Measured ~1.2x interleaved
#: on the reference machine (encode alone is ~2.5x); the floor mainly
#: guards the invariant that the default codec is never *slower* than
#: the JSON debug codec, with headroom for interpreter variance.
CODEC_SPEEDUP_FLOOR = 1.05


def _codec_corpus():
    """Deterministic message mix for the wire-codec benchmark.

    Mirrors live traffic shape: demand requests with growing cache
    digests, responses with speculated riders, and the occasional error
    reply — so both packed layouts and the generic fallback are on the
    timed path.
    """
    from ..runtime.messages import make_error, make_request, make_response

    n_docs = 64
    docs = [f"/doc/{i:04d}.html" for i in range(n_docs)]
    corpus = []
    for i in range(256):
        client = f"client-{i % 17}"
        doc = docs[i % n_docs]
        digest = tuple(docs[(i + k) % n_docs] for k in range(i % 17))
        corpus.append(
            make_request(
                client, f"{client}#{i}", doc, i * 0.25, digest=digest
            )
        )
        riders = [(docs[(i + k) % n_docs], 512 + 64 * k) for k in range(i % 5)]
        corpus.append(
            make_response(
                "origin", f"{client}#{i}", doc, 4096 + i, "origin",
                speculated=riders,
            )
        )
        if i % 64 == 0:
            corpus.append(
                make_error("origin", f"{client}#{i}", "protocol", "bad doc")
            )
    return corpus


def cmd_bench(args) -> None:
    """``repro bench`` — measure engine medians and gate regressions."""
    import functools
    import json as _json
    import sys

    from .. import perf

    # With --json, stdout carries the report alone; status goes to stderr.
    status = functools.partial(print, file=sys.stderr) if args.json else print

    scale = "smoke" if args.smoke else "full"
    if args.repeats is not None and args.repeats < 1:
        raise CommandError("--repeats must be >= 1")
    section = perf.run_scale(scale, repeats=args.repeats)
    # The perf layer sits below the fleet and the runtime, so those
    # verbs are handed down as plain callables: the fleet smoke and the
    # sharded loadtest as baseline-gated wall sections, the wire-codec
    # pass as an interleaved pair with its own speedup floor.
    from ..deploy import execute_deploy_smoke
    from ..fleet import execute_fleet_smoke
    from ..runtime import LiveSettings, execute_loadtest, smoke_workload
    from ..runtime.messages import CODECS

    fleet_section = perf.time_wall(
        "fleet_smoke",
        lambda: execute_fleet_smoke(0),
        repeats=args.repeats if args.repeats is not None else 3,
    )

    # The multi-process gate as a wall section: forked shards and proxy
    # hosts over real TCP, three runs (clean, reference, faulted) per
    # repeat — the slowest section by design, so regressions in process
    # startup or bus polling surface here first.
    deploy_section = perf.time_wall(
        "deploy_smoke",
        lambda: execute_deploy_smoke(0),
        repeats=args.repeats if args.repeats is not None else 3,
    )

    corpus = _codec_corpus()

    def codec_pass(name):
        codec = CODECS[name]
        return lambda: [codec.decode(codec.encode(m)) for m in corpus]

    codec_section = perf.time_paired(
        "codec",
        codec_pass("json"),
        codec_pass("binary"),
        suffixes=("_binary", "_json"),
        repeats=args.repeats if args.repeats is not None else 9,
        floor=CODEC_SPEEDUP_FLOOR,
    )

    shard_workers = 4
    sharded_section = perf.time_wall(
        "loadtest_sharded",
        lambda: execute_loadtest(
            smoke_workload(0), LiveSettings(seed=0), workers=shard_workers
        ),
        repeats=args.repeats if args.repeats is not None else 3,
    )
    sharded_section["workers"] = shard_workers

    sections = {
        scale: section,
        "fleet-smoke": fleet_section,
        "deploy-smoke": deploy_section,
        "codec": codec_section,
        "loadtest-sharded": sharded_section,
    }
    report = perf.build_report(sections)

    baseline_path = Path(args.baseline)
    baseline = perf.load_baseline(baseline_path)

    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"bench scale: {scale} ({section['repeats']} repeats)")
        for part in sections.values():
            medians = part["medians_seconds"]
            for name in sorted(medians):
                print(f"  {name:<22} {medians[name] * 1e3:8.1f} ms")
            for metric, achieved in sorted(part.get("speedups", {}).items()):
                print(f"  {metric} speedup: {achieved:.2f}x")

    if args.update_baseline:
        # Floors still apply so an under-floor run cannot become the
        # committed reference; only baseline-relative drift is waived.
        perf.enforce_gate(report, baseline, compare_absolute=False)
        merged = perf.merge_reports(baseline, report)
        perf.write_baseline(baseline_path, merged)
        status(f"updated baseline {baseline_path}")
        return
    perf.enforce_gate(report, baseline)
    if baseline is None:
        status(f"no baseline at {baseline_path}; speedup floors only")
    else:
        status("performance gate passed")


def _observed_run(args, *, window: float = 3600.0):
    """Run one observed loadtest/chaos via the :mod:`repro.api` facade."""
    from ..api import Session
    from ..obs import ObsConfig

    obs = ObsConfig(
        trace=True,
        timeseries=True,
        trace_limit=args.limit,
        window=window,
    )
    session = Session(seed=args.seed, obs=obs)
    try:
        if args.run == "chaos":
            return session.chaos()
        return session.loadtest()
    except (RuntimeProtocolError, TransportError):
        raise  # mapped to dedicated exit codes by main()
    except ReproError as error:
        raise CommandError(str(error)) from error


def cmd_trace(args) -> None:
    """``repro trace`` — dump the deterministic event trace of a run."""
    from ..obs import prometheus_text

    report = _observed_run(args)
    jsonl = report.trace_jsonl()

    if args.smoke:
        # The CI determinism gate: the same seed must produce a
        # byte-identical trace.  Re-run and compare; exit 3 on drift.
        again = _observed_run(args).trace_jsonl()
        if jsonl != again:
            raise RuntimeProtocolError(
                f"trace not deterministic for seed {args.seed}: "
                f"{len(jsonl)} vs {len(again)} bytes"
            )
        print(
            f"trace smoke OK: {len(jsonl.splitlines())} events, "
            f"byte-identical across two seed-{args.seed} runs"
        )

    if args.out is not None:
        Path(args.out).write_text(jsonl)
        print(f"wrote {len(jsonl.splitlines())} events to {args.out}")
    elif not args.smoke:
        print(jsonl, end="")

    if args.metrics_out is not None:
        live = report.detail.faulted if args.run == "chaos" else report.detail
        text = prometheus_text(live.speculative)
        Path(args.metrics_out).write_text(text)
        print(f"wrote Prometheus snapshot to {args.metrics_out}")


def cmd_metrics(args) -> None:
    """``repro metrics`` — windowed ratio curves and metric exports."""
    import json as _json

    from ..obs import prometheus_text

    report = _observed_run(args, window=args.window)
    observed = report.observed
    assert observed is not None  # ObsConfig above always enables channels

    if args.format == "prometheus":
        live = report.detail.faulted if args.run == "chaos" else report.detail
        output = prometheus_text(live.speculative)
    elif args.format == "json":
        output = _json.dumps(
            {
                "window": args.window,
                "speculative": observed.speculative.timeseries.to_dict(),
                "baseline": observed.baseline.timeseries.to_dict(),
            },
            sort_keys=True,
        )
    else:
        rows = [
            [
                f"{start:g}",
                f"{ratios.bandwidth_ratio:.4f}",
                f"{ratios.server_load_ratio:.4f}",
                f"{ratios.service_time_ratio:.4f}",
                f"{ratios.miss_rate_ratio:.4f}",
            ]
            for start, ratios in report.ratio_curve()
        ]
        output = format_table(
            ["window", "bandwidth", "load", "time", "miss"],
            rows,
            title=(
                f"four-ratio curve ({args.run}, seed {args.seed}, "
                f"{args.window:g}s windows)"
            ),
        )

    if args.out is not None:
        Path(args.out).write_text(
            output if output.endswith("\n") else output + "\n"
        )
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        print(output)


#: Peak-memory budget for the streamed-generation smoke gate, in bytes.
#: Streaming paper-scale x10 (~1.6M requests) must stay far below the
#: ~500 MB a materialized trace of that size costs; the budget leaves
#: headroom over the site + schedule + heap working set.
PROFILE_SMOKE_PEAK_BUDGET = 96 * 1024 * 1024

#: Session multiplier of the smoke gate's workload over paper scale.
PROFILE_SMOKE_SESSION_FACTOR = 10


def _profile_smoke_gate() -> dict:
    """Stream paper-scale x10 through the profiler under tracemalloc.

    Returns the gate measurements; raises RuntimeProtocolError (exit 3)
    when peak memory exceeds the budget — the streaming path has
    regressed to materializing state proportional to the trace.
    """
    import dataclasses
    import tracemalloc

    from ..trace.profiler import TraceProfiler

    config = dataclasses.replace(
        GeneratorConfig.paper_scale(0),
        n_sessions=GeneratorConfig.paper_scale(0).n_sessions
        * PROFILE_SMOKE_SESSION_FACTOR,
    )
    generator = SyntheticTraceGenerator(config)
    profiler = TraceProfiler()
    tracemalloc.start()
    tracemalloc.reset_peak()
    profile = profiler.profile(generator.stream())
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if peak > PROFILE_SMOKE_PEAK_BUDGET:
        raise RuntimeProtocolError(
            f"streamed generation peaked at {peak / 1e6:.1f} MB for "
            f"{profile.n_requests:,} requests — over the "
            f"{PROFILE_SMOKE_PEAK_BUDGET / 1e6:.0f} MB budget; the "
            "stream is no longer constant-memory"
        )
    return {
        "peak_bytes": peak,
        "budget_bytes": PROFILE_SMOKE_PEAK_BUDGET,
        "n_requests": profile.n_requests,
        "profile": profile.to_dict(),
    }


def cmd_profile(args) -> None:
    """``repro profile`` — single-pass workload profiling (and mem gate)."""
    import json as _json

    from .. import perf
    from ..runtime import smoke_workload
    from ..trace.profiler import TraceProfiler
    from ..workload import preset

    if args.window <= 0:
        raise CommandError("--window must be positive")
    profiler = TraceProfiler(window_seconds=args.window)

    if args.smoke:
        # The CI gate: constant-memory streaming at paper scale x10,
        # plus a throughput section gated against BENCH_PERF.json.
        gate = _profile_smoke_gate()

        generator = SyntheticTraceGenerator(GeneratorConfig.paper_scale(0))
        counter = {"n": 0}

        def _drain() -> None:
            counter["n"] = sum(1 for _ in generator.stream(epoch=0))

        # Three repeats so the gated stream_wall median is not a single
        # sample at the mercy of one co-tenant burst.
        section = perf.time_wall("stream", _drain, repeats=3)
        median = section["medians_seconds"]["stream_wall"]
        section["requests_per_second"] = (
            counter["n"] / median if median > 0 else 0.0
        )
        report = perf.build_report({"stream": section})
        baseline_path = Path(args.baseline)
        baseline = perf.load_baseline(baseline_path)
        payload = {
            "gate": gate,
            "stream": section,
        }
        if args.out:
            Path(args.out).write_text(
                _json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        if args.json:
            print(_json.dumps(payload, sort_keys=True))
        else:
            print(
                f"stream gate: peak {gate['peak_bytes'] / 1e6:.1f} MB / "
                f"budget {gate['budget_bytes'] / 1e6:.0f} MB over "
                f"{gate['n_requests']:,} requests"
            )
            print(
                f"stream throughput: {section['requests_per_second']:,.0f} "
                f"requests/s ({median:.2f} s wall)"
            )
        if args.update_baseline:
            merged = perf.merge_reports(baseline, report)
            perf.write_baseline(baseline_path, merged)
            print(f"updated baseline {baseline_path}")
            return
        perf.enforce_gate(report, baseline)
        return

    if args.clf:
        trace = _load_trace(args.clf, [])
        profile = profiler.profile(trace)
    else:
        try:
            workload = (
                smoke_workload(args.seed)
                if args.preset == "smoke"
                else preset(args.preset, args.seed)
            )
        except ReproError as error:
            raise CommandError(str(error)) from error
        generator = SyntheticTraceGenerator(workload)
        profile = profiler.profile(generator.stream())

    if args.out:
        Path(args.out).write_text(
            _json.dumps(profile.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote profile to {args.out}")
    if args.json:
        print(_json.dumps(profile.to_dict(), sort_keys=True))
    elif not args.out:
        print(profile.format())


def cmd_sample(args) -> None:
    """``repro sample`` — sampled ratio estimation (and coverage gate)."""
    import json as _json

    from ..core.sampling import estimate_ratios, execute_sample_check
    from ..errors import TraceFormatError
    from ..runtime import smoke_workload
    from ..trace.sampling import SamplingConfig
    from ..workload import preset

    if args.check:
        # The CI gate: prove the estimator's intervals cover an exact
        # full replay of the check workload (exit 3 on a miss).
        result = execute_sample_check(
            args.seed,
            fraction=args.fraction,
            n_boot=args.boot,
            level=args.level,
        )
        if args.json:
            print(_json.dumps(result, sort_keys=True))
        else:
            print("sample check: all intervals cover the exact replay")
            for name, estimate in result["sampled"]["estimates"].items():
                print(
                    f"  {name:<13} {estimate['value']:.4f} "
                    f"[{estimate['low']:.4f}, {estimate['high']:.4f}] "
                    f"exact {result['exact'][name]:.4f}"
                )
        return

    try:
        sampling = SamplingConfig(
            fraction=args.fraction, seed=args.seed, n_boot=args.boot,
            level=args.level,
        )
    except TraceFormatError as error:
        raise CommandError(str(error)) from error
    try:
        workload = (
            smoke_workload(args.seed)
            if args.preset == "smoke"
            else preset(args.preset, args.seed)
        )
    except ReproError as error:
        raise CommandError(str(error)) from error
    trace = SyntheticTraceGenerator(workload).generate()
    try:
        report = estimate_ratios(
            trace,
            sampling,
            config=BASELINE,
            train_days=trace.duration / 86_400.0 * args.train_fraction,
        )
    except ReproError as error:
        raise CommandError(str(error)) from error
    if args.json:
        print(_json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.format())
