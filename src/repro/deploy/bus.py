"""Durable event bus: append-only JSONL topic logs, at-least-once consumers.

Every deployment coordinates through a directory of topic files
(``<bus>/<topic>.jsonl``).  Producers append one JSON object per line
with a single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
writers from different processes interleave whole lines, never bytes.
Consumers poll from a byte offset and only consume newline-terminated
lines, so a reader never sees a torn record.

Delivery is **at-least-once by construction**: a publisher that is
unsure whether an append landed simply appends again, and the parent
deliberately double-publishes placement updates to keep that path hot.
Every event therefore carries an ``event_id`` and consumers dedupe with
the bounded :class:`~repro.runtime.resilience.DuplicateFilter` from the
chaos PR — exactly the contract proxies already apply to retried demand
requests, reused at the coordination layer.

The log doubles as the deployment's flight recorder: replaying the
``placement`` topic from offset zero is how a restarted proxy recovers
its holdings (anti-entropy by log replay), and CI uploads the bus
directory when the deploy gate fails.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from ..errors import SimulationError
from ..runtime.resilience import DuplicateFilter

__all__ = [
    "BusEvent",
    "EventBus",
    "TOPIC_ANTI_ENTROPY",
    "TOPIC_CONTROL",
    "TOPIC_DISSEMINATION",
    "TOPIC_PLACEMENT",
    "TOPIC_READY",
    "TOPIC_REGISTRY",
    "TOPIC_TOPOLOGY",
]

#: Start/shutdown commands from the coordinator.
TOPIC_CONTROL = "control"
#: Worker → coordinator: "my listener is bound to this port".
TOPIC_READY = "ready"
#: Coordinator → workers: the full node → (host, port) directory.
TOPIC_TOPOLOGY = "topology"
#: Coordinator → proxy hosts: cache placement (holdings) updates.
TOPIC_PLACEMENT = "placement"
#: Coordinator → origin shards: the dissemination plan's document set.
TOPIC_DISSEMINATION = "dissemination"
#: Workers → coordinator: holdings digests published at shutdown.
TOPIC_ANTI_ENTROPY = "anti-entropy"
#: Workers → coordinator: final per-process metrics registry states.
TOPIC_REGISTRY = "registry"

#: Poll interval for consumers awaiting new records, in real seconds.
POLL_SECONDS = 0.02


class BusEvent:
    """One decoded record: ``event_id``, ``kind`` and a JSON payload."""

    __slots__ = ("event_id", "kind", "payload")

    def __init__(self, event_id: str, kind: str, payload: dict[str, Any]):
        self.event_id = event_id
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BusEvent({self.event_id!r}, {self.kind!r})"


class EventBus:
    """Handle on one bus directory; safe to open in every process."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _topic_path(self, topic: str) -> Path:
        if not topic or "/" in topic or topic.startswith("."):
            raise SimulationError(f"invalid bus topic {topic!r}")
        return self.path / f"{topic}.jsonl"

    def publish(
        self,
        topic: str,
        kind: str,
        payload: dict[str, Any],
        *,
        event_id: str,
    ) -> None:
        """Append one event; a whole line lands atomically or not at all."""
        record = {"event_id": event_id, "kind": kind, "payload": payload}
        line = json.dumps(record, sort_keys=True) + "\n"
        fd = os.open(
            self._topic_path(topic),
            os.O_WRONLY | os.O_APPEND | os.O_CREAT,
            0o644,
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def consumer(self, topic: str, *, offset: int = 0) -> "TopicConsumer":
        """A deduping cursor over one topic, starting at ``offset`` bytes."""
        return TopicConsumer(self._topic_path(topic), offset=offset)

    def replay(self, topic: str) -> Iterator[BusEvent]:
        """All deduplicated events currently in ``topic``, oldest first.

        This is the anti-entropy path: a recovering node replays the
        topic from offset zero and re-applies whatever state it carries.
        """
        consumer = self.consumer(topic)
        while True:
            event = consumer.poll_one()
            if event is None:
                return
            yield event


class TopicConsumer:
    """At-least-once reader for one topic file with duplicate filtering."""

    def __init__(self, path: Path, *, offset: int = 0):
        self._path = path
        self._offset = offset
        self._buffer = b""
        self._dedupe = DuplicateFilter()
        #: Events whose ``event_id`` was already consumed (the
        #: at-least-once redundancy the filter absorbs).
        self.duplicates = 0

    @property
    def offset(self) -> int:
        """Byte offset of the next unread record (checkpoint token)."""
        return self._offset

    def poll_one(self) -> BusEvent | None:
        """Next fresh event, or ``None`` when the log is exhausted."""
        while True:
            line = self._next_line()
            if line is None:
                return None
            record = json.loads(line)
            event_id = str(record["event_id"])
            if self._dedupe.seen(event_id):
                self.duplicates += 1
                continue
            return BusEvent(event_id, str(record["kind"]), record["payload"])

    def drain(self) -> list[BusEvent]:
        """Every fresh event currently appended, in publish order."""
        events: list[BusEvent] = []
        while True:
            event = self.poll_one()
            if event is None:
                return events
            events.append(event)

    def _next_line(self) -> bytes | None:
        at = self._buffer.find(b"\n")
        if at < 0:
            chunk = self._read_from(self._offset + len(self._buffer))
            if chunk:
                self._buffer += chunk
                at = self._buffer.find(b"\n")
            if at < 0:
                return None
        line = self._buffer[:at]
        self._buffer = self._buffer[at + 1:]
        self._offset += at + 1
        return line

    def _read_from(self, position: int) -> bytes:
        if not self._path.exists():
            return b""
        with self._path.open("rb") as handle:
            handle.seek(position)
            return handle.read()

    async def await_event(
        self,
        predicate: Callable[[BusEvent], bool],
        *,
        timeout: float = 30.0,
    ) -> BusEvent:
        """Poll until an event matching ``predicate`` arrives.

        Non-matching events are consumed (and deduped) along the way, so
        call this on a consumer dedicated to one decision.  Raises
        :class:`SimulationError` after ``timeout`` real seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            event = self.poll_one()
            while event is not None:
                if predicate(event):
                    return event
                event = self.poll_one()
            if time.monotonic() >= deadline:
                raise SimulationError(
                    f"timed out awaiting event on {self._path.name}"
                )
            await asyncio.sleep(POLL_SECONDS)
