"""Consistent-hash ownership of document ids over origin shards.

A :class:`HashRing` places ``vnodes`` virtual points per shard on a
64-bit ring using :func:`hashlib.blake2b` (stable across processes and
``PYTHONHASHSEED``, unlike builtin ``hash``).  A document id is owned by
the first shard clockwise from the id's own point; ``owners(doc, k)``
walks further to collect ``k`` *distinct* shards, giving each document a
deterministic replica/failover order.

Consistent hashing is what makes resharding cheap: adding one shard to
an ``n``-shard ring moves roughly ``1/(n+1)`` of the keys (property
tested), because only the arcs claimed by the new shard's virtual points
change owner.
"""

from __future__ import annotations

import bisect
import hashlib

from ..errors import SimulationError

__all__ = ["HashRing", "shard_name"]

#: Virtual points per shard.  More points flatten per-shard arc-length
#: variance; 96 keeps the moved-key fraction within ``1/N + 0.25`` for
#: every ring size the property suite generates.
DEFAULT_VNODES = 96


def _point(label: str) -> int:
    """Map a label to its position on the 64-bit ring."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_name(index: int) -> str:
    """Canonical process/node name of origin shard ``index``."""
    return f"origin-shard-{index}"


class HashRing:
    """Immutable consistent-hash ring over a fixed set of shard names."""

    def __init__(self, shards: int, *, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise SimulationError("ring needs at least one shard")
        if vnodes < 1:
            raise SimulationError("ring needs at least one vnode per shard")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for index in range(shards):
            name = shard_name(index)
            for vnode in range(vnodes):
                points.append((_point(f"{name}:{vnode}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._names = [name for _, name in points]
        # shards >= 1 and vnodes >= 1, so the ring always has points.
        self._size = max(1, len(self._points))

    def owner(self, doc_id: str) -> str:
        """Return the single shard owning ``doc_id``."""
        at = bisect.bisect_right(self._points, _point(doc_id))
        return self._names[at % self._size]

    def owners(self, doc_id: str, replicas: int = 1) -> tuple[str, ...]:
        """Return ``replicas`` distinct shards in failover order.

        The first entry is :meth:`owner`; later entries are the next
        distinct shards clockwise, so every process computes the same
        replica list without coordination.
        """
        if not 1 <= replicas <= self.shards:
            raise SimulationError("replicas must be in [1, shards]")
        start = bisect.bisect_right(self._points, _point(doc_id))
        found: list[str] = []
        for step in range(self._size):
            name = self._names[(start + step) % self._size]
            if name not in found:
                found.append(name)
                if len(found) == replicas:
                    break
        return tuple(found)

    def resolver(self, replicas: int = 1):
        """Return ``(doc_id, attempt) -> shard name`` for retry loops.

        Attempt ``k`` lands on replica ``k mod replicas``, so transport
        retries naturally fail over across the replica set.
        """
        if replicas == 1:
            def resolve_primary(doc_id: str, attempt: int = 0) -> str:
                return self.owner(doc_id)

            return resolve_primary

        def resolve(doc_id: str, attempt: int = 0) -> str:
            # owners() returns exactly ``replicas`` (>= 1) entries.
            owners = self.owners(doc_id, replicas)
            return owners[attempt % replicas]

        return resolve
