"""Distributed deployment: multi-process origins and proxies over TCP.

The deployment layer turns the single-loop live system into real OS
processes — consistent-hash-sharded origins, proxy hosts, and a
coordinating parent — wired by the TCP transport and a durable JSONL
event bus.  One :class:`~repro.config.DeploySpec` describes the whole
shape; ``DeploySpec(processes=1)`` is plain in-process execution, so
there is exactly one configuration object and one report shape across
local and distributed runs.
"""

from ..config import LOCAL_DEPLOY, DeploySpec
from .bus import BusEvent, EventBus, TopicConsumer
from .mesh import GatedEndpoint, TcpMesh, TcpMeshEndpoint
from .ring import HashRing, shard_name
from .service import (
    DeployFaultPlan,
    DeployReport,
    DeploySmokeReport,
    deploy_smoke_fault_plan,
    deploy_smoke_spec,
    execute_deploy,
    execute_deploy_smoke,
)
from .workers import DeployFaultHandler, ProxyFault, holdings_digest

__all__ = [
    "BusEvent",
    "DeployFaultHandler",
    "DeployFaultPlan",
    "DeployReport",
    "DeploySmokeReport",
    "DeploySpec",
    "EventBus",
    "GatedEndpoint",
    "HashRing",
    "LOCAL_DEPLOY",
    "ProxyFault",
    "TcpMesh",
    "TcpMeshEndpoint",
    "TopicConsumer",
    "deploy_smoke_fault_plan",
    "deploy_smoke_spec",
    "execute_deploy",
    "execute_deploy_smoke",
    "holdings_digest",
    "shard_name",
]
