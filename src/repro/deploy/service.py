"""The deployment coordinator: one DeploySpec, local or distributed.

:func:`execute_deploy` is the front door of :mod:`repro.deploy`.  Given
a :class:`~repro.config.DeploySpec` it either delegates to the
in-process executor (``processes == 1`` — a plain
:func:`~repro.runtime.service.execute_loadtest`) or stands up a real
multi-process system: ``shards`` origin processes (consistent hashing
over document ids, ``replicas``-way failover), the remaining processes
hosting the region proxies, all wired by the TCP transport with the
binary codec and coordinated over a durable JSONL event bus.

The coordinator itself runs the load generator: it publishes the
dissemination decision and per-proxy placements (twice — at-least-once
delivery is part of the contract, the consumers' duplicate filters
absorb the redundancy), collects ready events into a topology, replays
the serving trace over a :class:`~repro.deploy.mesh.TcpMesh`, then
publishes shutdown and merges every process's exact counter state into
one conservation-checked snapshot.

Because the four paper ratios are pure functions of client-side
counters, and every reply a sharded origin produces is byte-identical
to the single-loop origin's (full catalog, same warm frozen estimator,
same logical ``served_by`` name), a clean distributed run reproduces
the single-loop ratios **bit for bit** — :func:`execute_deploy_smoke`
asserts exactly that, then repeats the run under a scripted
crash/partition :class:`DeployFaultPlan` and holds the ratios to the
chaos gate's tolerance.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from ..config import BASELINE, LOCAL_DEPLOY, BaselineConfig, DeploySpec
from ..errors import RuntimeProtocolError, SimulationError
from ..obs import merge_registry_states
from ..runtime.loadgen import LoadConfig, LoadGenerator
from ..runtime.metrics import default_registry, live_ratios, verify_conservation
from ..runtime.service import (
    ChaosReport,
    LiveReport,
    LiveSettings,
    execute_loadtest,
    prepare_live_run,
    require_shard_exact,
    smoke_workload,
)
from ..speculation.metrics import SpeculationRatios
from ..workload.generator import GeneratorConfig
from .bus import (
    TOPIC_ANTI_ENTROPY,
    TOPIC_CONTROL,
    TOPIC_DISSEMINATION,
    TOPIC_PLACEMENT,
    TOPIC_READY,
    TOPIC_REGISTRY,
    TOPIC_TOPOLOGY,
    EventBus,
    TopicConsumer,
)
from .mesh import TcpMesh
from .ring import HashRing, shard_name
from .workers import (
    ProxyFault,
    ProxyHostContext,
    ShardContext,
    holdings_digest,
    run_origin_shard,
    run_proxy_host,
)

__all__ = [
    "DeployFaultPlan",
    "DeployReport",
    "DeploySmokeReport",
    "deploy_smoke_fault_plan",
    "deploy_smoke_spec",
    "execute_deploy",
    "execute_deploy_smoke",
]

#: Seconds the coordinator waits for worker readiness / final exports.
STARTUP_TIMEOUT = 60.0
#: Seconds a worker waits for the shutdown event before giving up.
RUN_TIMEOUT = 900.0
_JOIN_TIMEOUT = 30.0


@dataclass(frozen=True)
class DeployFaultPlan:
    """Scripted crash/partition faults for a distributed deployment.

    Triggers count **inbound requests at the targeted proxy** rather
    than virtual time — across real processes there is no shared
    virtual clock, and request counts make the script reproducible for
    a fixed workload.  Indexes select from the sorted proxy list, the
    same convention as :class:`~repro.runtime.service.ChaosSettings`.

    Attributes:
        crash_proxy: Index of the proxy to crash; None disables.
        crash_after: Inbound request count that trips the crash.
        restart_after: Count at which it restarts (recovering holdings
            by replaying the bus's placement topic); None stays down.
        partition_proxy: Index of the proxy whose upstream link
            partitions; None disables.
        partition_from: Count at which the partition starts.
        partition_until: Count at which it heals; None never heals.
    """

    crash_proxy: int | None = None
    crash_after: int = 10
    restart_after: int | None = None
    partition_proxy: int | None = None
    partition_from: int = 10
    partition_until: int | None = None

    def resolve(self, proxies: Sequence[str]) -> dict[str, ProxyFault]:
        """Bind the indexes to proxy names.

        Raises:
            SimulationError: When an index is outside the topology.
        """

        def name(index: int) -> str:
            if not 0 <= index < len(proxies):
                raise SimulationError(
                    f"fault plan targets proxy index {index} but the "
                    f"topology has {len(proxies)} proxies"
                )
            return proxies[index]

        faults: dict[str, ProxyFault] = {}
        if self.crash_proxy is not None:
            faults[name(self.crash_proxy)] = ProxyFault(
                crash_after=self.crash_after,
                restart_after=self.restart_after,
            )
        if self.partition_proxy is not None:
            target = name(self.partition_proxy)
            base = faults.get(target, ProxyFault())
            faults[target] = replace(
                base,
                partition_from=self.partition_from,
                partition_until=self.partition_until,
            )
        return faults


@dataclass(frozen=True)
class DeployReport:
    """Everything one deployment produced — the LiveReport shape plus
    the distributed extras.

    Attributes:
        spec: The deployment spec that ran.
        baseline: Merged metrics snapshot of the demand-only arm.
        speculative: Merged snapshot of the speculative arm.
        ratios: The paper's four ratios from the two snapshots.
        disseminated_documents: Documents the plan placed on proxies.
        processes: OS processes each arm ran (1 for a local spec).
        bus_path: Event-bus directory (None for a local spec); each arm
            logs under its own subdirectory.
        bus_duplicates: Duplicate bus events the consumers' filters
            absorbed across both arms (≥ one per proxy per arm, by
            construction — the coordinator double-publishes placements).
        anti_entropy: ``proxy → holdings digest`` reported by the
            speculative arm's proxy hosts at shutdown.
        fault_events: ``(time, label)`` fault timeline from the
            speculative arm (empty without a fault plan).
    """

    spec: DeploySpec
    baseline: dict[str, Any]
    speculative: dict[str, Any]
    ratios: SpeculationRatios
    disseminated_documents: int = 0
    processes: int = 1
    bus_path: str | None = None
    bus_duplicates: int = 0
    anti_entropy: dict[str, str] | None = None
    fault_events: tuple[tuple[float, str], ...] = ()

    def live(self) -> LiveReport:
        """This deployment as a plain LiveReport (one report shape)."""
        return LiveReport(
            baseline=self.baseline,
            speculative=self.speculative,
            ratios=self.ratios,
            disseminated_documents=self.disseminated_documents,
        )


@dataclass(frozen=True)
class DeploySmokeReport:
    """What ``repro deploy --smoke`` produced.

    Attributes:
        deploy: The clean distributed run.
        local: The single-loop reference at the same seed (its four
            ratios must equal ``deploy.ratios`` bit for bit).
        faulted: The distributed run under the scripted fault plan.
        chaos: The clean/faulted pair as a chaos report (the
            resilience gate ran on it).
    """

    deploy: DeployReport
    local: LiveReport
    faulted: DeployReport
    chaos: ChaosReport

    @property
    def bus_path(self) -> str | None:
        """The clean run's bus directory (CI uploads it on failure)."""
        return self.deploy.bus_path


def _assign_proxies(
    proxies: Sequence[str], hosts: int
) -> list[tuple[str, ...]]:
    """Round-robin the sorted proxies across ``hosts`` buckets."""
    buckets: list[list[str]] = [[] for _ in range(hosts)]
    for position, proxy in enumerate(sorted(proxies)):
        buckets[position % hosts].append(proxy)
    return [tuple(bucket) for bucket in buckets]


async def _gather_events(
    consumer: TopicConsumer, kind: str, count: int, *, timeout: float
) -> list[Any]:
    """Collect ``count`` events of ``kind``, surfacing worker crashes.

    Raises:
        SimulationError: On a ``worker-error`` event or a timeout.
    """
    events: list[Any] = []
    while len(events) < count:
        event = await consumer.await_event(
            lambda ev: ev.kind in (kind, "worker-error"), timeout=timeout
        )
        if event.kind == "worker-error":
            raise SimulationError(
                f"deployment worker {event.payload.get('node')!r} failed: "
                f"{event.payload.get('error')}"
            )
        events.append(event)
    return events


async def _coordinate(
    prepared: Any, spec: DeploySpec, bus: EventBus
) -> tuple[dict[str, Any], list[dict[str, Any]], dict[str, str]]:
    """The parent's async leg of one arm.

    Collects shard readiness, publishes the topology, collects proxy
    readiness, drives the load generator over the mesh, then shuts the
    fleet down and collects registry exports and anti-entropy digests.

    Returns:
        ``(parent registry state, worker states, proxy digests)``.
    """
    ready = bus.consumer(TOPIC_READY)
    registry = bus.consumer(TOPIC_REGISTRY)
    anti_entropy = bus.consumer(TOPIC_ANTI_ENTROPY)

    shard_ready = await _gather_events(
        ready, "ready", spec.shards, timeout=STARTUP_TIMEOUT
    )
    shard_nodes = {
        str(event.payload["node"]): [
            str(event.payload["host"]),
            int(event.payload["port"]),
        ]
        for event in shard_ready
    }
    bus.publish(
        TOPIC_TOPOLOGY, "topology", {"nodes": shard_nodes}, event_id="topology"
    )
    proxy_ready = await _gather_events(
        ready, "ready", len(prepared.proxies), timeout=STARTUP_TIMEOUT
    )

    directory: dict[str, tuple[str, int]] = {
        node: (entry[0], entry[1]) for node, entry in shard_nodes.items()
    }
    for event in proxy_ready:
        directory[str(event.payload["node"])] = (
            str(event.payload["host"]),
            int(event.payload["port"]),
        )

    settings = prepared.settings
    metrics = default_registry()
    loop = asyncio.get_running_loop()
    metrics.bind_clock(loop.time)
    mesh = TcpMesh(
        directory, codec=settings.codec, timeout=settings.request_timeout
    )
    generator = LoadGenerator(
        mesh,
        prepared.routes,
        prepared.serve.by_client(),
        origin_name=prepared.tree.root,
        config=prepared.config,
        load=LoadConfig(
            concurrency=settings.concurrency,
            request_timeout=settings.request_timeout,
            retries=settings.retries,
            cooperative=settings.cooperative,
            backoff_seed=settings.seed,
        ),
        metrics=metrics,
        resolver=HashRing(spec.shards).resolver(spec.replicas),
    )
    started = loop.time()
    try:
        await generator.run()
    finally:
        bus.publish(TOPIC_CONTROL, "shutdown", {}, event_id="shutdown")
    # The counter name is historical ("virtual" under the in-memory
    # clock); in a deployment it is the coordinator's real wall time,
    # and the cross-process merge takes the max, not the sum.
    metrics.counter("run.virtual_seconds").inc(round(loop.time() - started, 9))
    await mesh.close()
    for name, value in mesh.stats().items():
        metrics.counter(f"network.{name}").inc(value)

    expected = spec.shards + spec.proxy_hosts
    registry_events = await _gather_events(
        registry, "registry", expected, timeout=STARTUP_TIMEOUT
    )
    digest_events = await _gather_events(
        anti_entropy, "digest", spec.proxy_hosts, timeout=STARTUP_TIMEOUT
    )
    worker_states = [
        event.payload["state"]
        for event in sorted(
            registry_events, key=lambda ev: str(ev.payload["process"])
        )
    ]
    digests: dict[str, str] = {}
    for event in digest_events:
        digests.update(
            {str(k): str(v) for k, v in event.payload["holdings"].items()}
        )
    return metrics.export_state(), worker_states, digests


def _run_arm(
    prepared: Any,
    spec: DeploySpec,
    *,
    speculative: bool,
    bus_path: Path,
    faults: dict[str, ProxyFault],
) -> tuple[dict[str, Any], dict[str, str]]:
    """One distributed arm: fork, coordinate, join, merge.

    Returns the merged snapshot and the proxies' holdings digests.
    """
    bus = EventBus(bus_path)
    documents = (
        [[doc_id, size] for doc_id, size in sorted(prepared.holdings.items())]
        if speculative
        else []
    )
    bus.publish(
        TOPIC_DISSEMINATION,
        "plan",
        {"documents": documents, "speculative": speculative},
        event_id="plan",
    )
    for proxy in prepared.proxies:
        payload = {"proxy": proxy, "documents": documents, "mode": "replace"}
        # Published twice under one event id: the bus contract is
        # at-least-once, and the consumers' duplicate filters must be
        # exercised on the production path, not just in tests.
        for _ in range(2):
            bus.publish(
                TOPIC_PLACEMENT,
                "placement",
                payload,
                event_id=f"placement:{proxy}:0",
            )

    buckets = _assign_proxies(prepared.proxies, spec.proxy_hosts)
    codec = spec.codec if spec.codec is not None else prepared.settings.codec
    contexts: list[tuple[Any, Any]] = [
        (
            run_origin_shard,
            ShardContext(
                index=index,
                bus_path=str(bus_path),
                prepared=prepared,
                speculative=speculative,
                codec=codec,
                host=spec.host,
                startup_timeout=STARTUP_TIMEOUT,
                run_timeout=RUN_TIMEOUT,
            ),
        )
        for index in range(spec.shards)
    ]
    contexts += [
        (
            run_proxy_host,
            ProxyHostContext(
                index=index,
                bus_path=str(bus_path),
                prepared=prepared,
                proxies=bucket,
                shards=spec.shards,
                replicas=spec.replicas,
                codec=codec,
                host=spec.host,
                faults={
                    proxy: faults[proxy] for proxy in bucket if proxy in faults
                },
                startup_timeout=STARTUP_TIMEOUT,
                run_timeout=RUN_TIMEOUT,
            ),
        )
        for index, bucket in enumerate(buckets)
    ]
    # Fork before any event loop exists in this function, so children
    # never inherit a live loop.
    mp = multiprocessing.get_context("fork")
    processes = [
        mp.Process(target=target, args=(context,), daemon=True)
        for target, context in contexts
    ]
    for process in processes:
        process.start()
    try:
        parent_state, worker_states, digests = asyncio.run(
            _coordinate(prepared, spec, bus)
        )
    finally:
        for process in processes:
            process.join(timeout=_JOIN_TIMEOUT)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    merged = merge_registry_states(
        [parent_state, *worker_states],
        max_counters=("run.virtual_seconds",),
    )
    return merged.snapshot(), digests


def _check_anti_entropy(
    prepared: Any, digests: dict[str, str], *, speculative: bool
) -> None:
    """Clean-run gate: every proxy's final holdings match the plan.

    Raises:
        RuntimeProtocolError: On a missing proxy or digest mismatch.
    """
    expected = holdings_digest(prepared.holdings if speculative else {})
    for proxy in prepared.proxies:
        reported = digests.get(proxy)
        if reported != expected:
            raise RuntimeProtocolError(
                f"anti-entropy digest mismatch on {proxy!r}: expected "
                f"{expected} got {reported}"
            )


def execute_deploy(
    workload: GeneratorConfig,
    settings: LiveSettings | None = None,
    *,
    config: BaselineConfig = BASELINE,
    spec: DeploySpec | None = None,
    fault_plan: DeployFaultPlan | None = None,
) -> DeployReport:
    """Run the baseline/speculative pair under one deployment spec.

    This is the engine behind :meth:`repro.api.Session.deploy` and
    ``repro deploy``.  A local spec (``processes == 1``) delegates to
    :func:`~repro.runtime.service.execute_loadtest` unchanged — local
    single-loop mode is just ``DeploySpec(processes=1)``.  A
    distributed spec forks shard/proxy processes per arm and merges
    their exact counter states; clean runs must pass the strict
    cross-process conservation check and the anti-entropy digest gate.

    Args:
        workload: Synthetic workload configuration (seeded).
        settings: Live-run knobs; ``spec.codec`` (when set) overrides
            ``settings.codec``.
        config: The paper's cost model and timeouts.
        spec: The deployment spec; None means the local default.
        fault_plan: Scripted crash/partition faults (distributed specs
            only); conservation is then checked in non-strict mode.

    Raises:
        SimulationError: On an unusable workload/spec combination, a
            worker startup failure, or a fault plan with a local spec.
        RuntimeProtocolError: When conservation or anti-entropy checks
            fail.
    """
    spec = spec if spec is not None else LOCAL_DEPLOY
    settings = settings if settings is not None else LiveSettings()
    if spec.local:
        if fault_plan is not None:
            raise SimulationError(
                "fault plans require a distributed spec (processes > 1); "
                "local runs script faults via repro.runtime.execute_chaos"
            )
        report = execute_loadtest(workload, settings, config=config, deploy=spec)
        return DeployReport(
            spec=spec,
            baseline=report.baseline,
            speculative=report.speculative,
            ratios=report.ratios,
            disseminated_documents=report.disseminated_documents,
            processes=1,
        )

    if spec.codec is not None:
        settings = replace(settings, codec=spec.codec)
    require_shard_exact(settings)
    prepared = prepare_live_run(workload, settings, config=config)
    faults = (
        fault_plan.resolve(prepared.proxies) if fault_plan is not None else {}
    )
    bus_root = Path(
        spec.bus_path
        if spec.bus_path is not None
        else tempfile.mkdtemp(prefix="repro-deploy-")
    )

    baseline_snapshot, baseline_digests = _run_arm(
        prepared, spec, speculative=False,
        bus_path=bus_root / "baseline", faults=faults,
    )
    speculative_snapshot, speculative_digests = _run_arm(
        prepared, spec, speculative=True,
        bus_path=bus_root / "speculative", faults=faults,
    )

    clean = fault_plan is None
    verify_conservation(baseline_snapshot, strict=clean)
    verify_conservation(speculative_snapshot, strict=clean)
    if clean:
        _check_anti_entropy(prepared, baseline_digests, speculative=False)
        _check_anti_entropy(prepared, speculative_digests, speculative=True)

    fault_events = tuple(
        (float(time), str(name))
        for time, name in speculative_snapshot.get("events", ())
        if str(name).startswith("fault:")
    )
    duplicates = int(
        baseline_snapshot.get("counters", {}).get("bus.duplicate_events", 0)
        + speculative_snapshot.get("counters", {}).get(
            "bus.duplicate_events", 0
        )
    )
    return DeployReport(
        spec=spec,
        baseline=baseline_snapshot,
        speculative=speculative_snapshot,
        ratios=live_ratios(speculative_snapshot, baseline_snapshot),
        disseminated_documents=len(prepared.holdings),
        processes=spec.processes,
        bus_path=str(bus_root),
        bus_duplicates=duplicates,
        anti_entropy=dict(sorted(speculative_digests.items())),
        fault_events=fault_events,
    )


def deploy_smoke_spec() -> DeploySpec:
    """The 2-shard / 2-proxy-host topology ``repro deploy --smoke`` runs."""
    return DeploySpec(processes=4, shards=2, replicas=2, codec="binary")


def deploy_smoke_fault_plan() -> DeployFaultPlan:
    """The scripted faults of the deploy smoke's second run.

    Proxy 0 crashes early (losing its holdings) and recovers by bus
    replay; proxy 1's upstream link partitions for a window, exercising
    the breaker fast-fail path.  Triggers sit low so both arms (whose
    per-proxy request counts differ — speculation absorbs misses) hit
    them well inside their streams.
    """
    return DeployFaultPlan(
        crash_proxy=0,
        crash_after=10,
        restart_after=25,
        partition_proxy=1,
        partition_from=15,
        partition_until=30,
    )


def execute_deploy_smoke(
    seed: int = 0,
    *,
    tolerance: float = 0.05,
    bus_dir: str | None = None,
) -> DeploySmokeReport:
    """The ``repro deploy --smoke`` self-test (CI's deploy gate).

    Three runs at one seed: a clean distributed deployment, the
    single-loop reference (their four ratios must match **bit for
    bit** — the cross-process correctness gate), and the same
    deployment under the scripted crash/partition plan, whose ratios
    must stay within ``tolerance`` of the clean run's.

    Raises:
        RuntimeProtocolError: On any ratio mismatch, conservation
            violation, or anti-entropy failure.
    """
    workload = smoke_workload(seed)
    settings = LiveSettings(seed=seed)
    root = Path(
        bus_dir if bus_dir is not None
        else tempfile.mkdtemp(prefix="repro-deploy-smoke-")
    )
    spec = deploy_smoke_spec()

    clean = execute_deploy(
        workload,
        settings,
        spec=spec.with_updates(bus_path=str(root / "clean")),
    )
    local = execute_loadtest(workload, settings)
    if clean.ratios != local.ratios:
        raise RuntimeProtocolError(
            "distributed ratios diverge from the single-loop reference: "
            f"deploy {clean.ratios.format()} vs local {local.ratios.format()}"
        )

    faulted = execute_deploy(
        workload,
        settings,
        spec=spec.with_updates(bus_path=str(root / "faulted")),
        fault_plan=deploy_smoke_fault_plan(),
    )
    chaos = ChaosReport(
        clean=clean.live(),
        faulted=faulted.live(),
        fault_events=faulted.fault_events,
    )
    chaos.require_resilience(tolerance)
    return DeploySmokeReport(
        deploy=clean, local=local, faulted=faulted, chaos=chaos
    )
