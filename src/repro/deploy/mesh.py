"""Client-side TCP fabric: the in-memory network's duck type on sockets.

A :class:`TcpMesh` gives the unmodified
:class:`~repro.runtime.loadgen.LoadGenerator` and
:class:`~repro.runtime.proxy.ProxyNode` a real-socket transport with the
same endpoint surface as
:class:`~repro.runtime.transport.InMemoryNetwork`: ``endpoint(name)``
returns an object with ``name`` / ``start`` / ``next_request_id`` /
``call`` / ``cast`` / ``close``.  Destinations are resolved through a
static ``node → (host, port)`` directory assembled from the event bus's
``ready`` topic.

Connections are persistent and per ``(endpoint, destination)``; a lock
is held across each write+read pair, so replies correlate by order on
the stream exactly as :class:`~repro.runtime.transport.TcpServer`
produces them.  The mesh keeps the sender's half of the
frame-conservation ledger — ``frames_sent`` counted after a successful
write, ``frames_delivered`` when the reply frame is read — mirroring
the server-side ``stats_hook`` counts, so the merged cross-process
registries satisfy the same ``sent == delivered + dropped + rejected +
inflight`` identity as a single-loop run.
"""

from __future__ import annotations

import asyncio

from ..errors import TransportError
from ..runtime.messages import MAX_FRAME_BYTES, Codec, Message, raise_if_error
from ..runtime.transport import read_frame, write_frame

__all__ = ["GatedEndpoint", "TcpMesh", "TcpMeshEndpoint"]


class TcpMesh:
    """A directory of TCP listeners plus the endpoints that dial them.

    Args:
        directory: ``node name → (host, port)`` of every listener.
        codec: Wire codec for outbound frames (replies are sniffed).
        timeout: Default per-call timeout when the caller passes None.
        max_frame_bytes: Per-frame cap applied to inbound replies.
    """

    def __init__(
        self,
        directory: dict[str, tuple[str, int]],
        *,
        codec: str | Codec = "binary",
        timeout: float | None = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._directory = dict(directory)
        self._codec = codec
        self._timeout = timeout
        self._max_frame_bytes = max_frame_bytes
        self._endpoints: dict[str, TcpMeshEndpoint] = {}
        self.frames_sent = 0
        self.frames_delivered = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0

    def address_of(self, destination: str) -> tuple[str, int]:
        """Resolve one directory entry.

        Raises:
            TransportError: The name is not in the directory.
        """
        address = self._directory.get(destination)
        if address is None:
            raise TransportError(f"unknown endpoint {destination!r}")
        return address

    def endpoint(self, name: str, *, inbox_limit: int = 1024) -> "TcpMeshEndpoint":
        """Register a new dialing endpoint (``inbox_limit`` is vestigial).

        Raises:
            TransportError: If the name is taken or empty.
        """
        del inbox_limit  # socket buffers replace the simulated inbox
        if not name:
            raise TransportError("endpoint name must be non-empty")
        if name in self._endpoints:
            raise TransportError(f"endpoint {name!r} already registered")
        endpoint = TcpMeshEndpoint(self, name)
        self._endpoints[name] = endpoint
        return endpoint

    def stats(self) -> dict[str, int]:
        """Sender-side frame/byte ledger in the in-memory network's keys.

        Dropped, rejected and in-flight are structurally zero on the
        mesh: a frame either lands on a stream or the call raises.
        """
        return {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": 0,
            "frames_rejected": 0,
            "frames_inflight": 0,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "bytes_dropped": 0,
            "bytes_rejected": 0,
            "bytes_inflight": 0,
            "handler_errors": 0,
        }

    async def close(self) -> None:
        """Close every endpoint's connections."""
        for endpoint in self._endpoints.values():
            await endpoint.close()


class TcpMeshEndpoint:
    """One named caller on the mesh (a client worker or a proxy)."""

    def __init__(self, mesh: TcpMesh, name: str):
        self._mesh = mesh
        self.name = name
        self._connections: dict[
            str, tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._next_id = 0

    def start(self, handler=None) -> None:
        """Accepted for endpoint-surface parity; mesh endpoints only dial."""
        del handler  # inbound service is TcpServer's job in a deployment

    def next_request_id(self) -> str:
        """A fresh, globally-unique correlation id."""
        self._next_id += 1
        return f"{self.name}#{self._next_id}"

    async def _connection(
        self, destination: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        live = self._connections.get(destination)
        if live is not None:
            return live
        host, port = self._mesh.address_of(destination)
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as err:
            raise TransportError(
                f"connect to {destination!r} ({host}:{port}) failed: {err}"
            ) from err
        self._connections[destination] = (reader, writer)
        return reader, writer

    def _drop_connection(self, destination: str) -> None:
        live = self._connections.pop(destination, None)
        if live is not None:
            live[1].close()

    async def call(
        self, destination: str, message: Message, *, timeout: float | None = None
    ) -> Message:
        """One request/reply round trip on the persistent connection.

        Raises:
            TransportError: On connect failure, timeout, truncation, or
                a transport-kind error reply.
            RuntimeProtocolError: On a protocol-kind error reply or an
                undecodable frame.
        """
        if timeout is None:
            timeout = self._mesh._timeout
        lock = self._locks.setdefault(destination, asyncio.Lock())
        async with lock:
            reader, writer = await self._connection(destination)
            try:
                write_frame(writer, message, self._mesh._codec)
                await writer.drain()
                self._mesh.frames_sent += 1
                self._mesh.bytes_sent += message.body_bytes
                awaitable = read_frame(
                    reader, max_frame_bytes=self._mesh._max_frame_bytes
                )
                if timeout is not None:
                    reply = await asyncio.wait_for(awaitable, timeout)
                else:
                    reply = await awaitable
            except asyncio.TimeoutError:
                self._drop_connection(destination)
                raise TransportError(
                    f"request {message.request_id} to {destination!r} "
                    f"timed out after {timeout}s"
                ) from None
            except (ConnectionError, OSError, TransportError) as err:
                self._drop_connection(destination)
                if isinstance(err, TransportError):
                    raise
                raise TransportError(
                    f"stream to {destination!r} failed: {err}"
                ) from err
            self._mesh.frames_delivered += 1
            self._mesh.bytes_delivered += reply.body_bytes
        return raise_if_error(reply)

    def cast(self, destination: str, message: Message) -> None:
        """Fire-and-forget is not part of the deployment protocol.

        Coordination travels on the event bus, not as unsolicited
        frames; keeping this a hard error preserves the one-reply-per-
        request stream framing :meth:`call` relies on.

        Raises:
            TransportError: Always.
        """
        raise TransportError(
            f"cast({destination!r}) unsupported on a TCP mesh; "
            "publish on the event bus instead"
        )

    async def close(self) -> None:
        """Close every persistent connection."""
        for destination in list(self._connections):
            _, writer = self._connections.pop(destination)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class GatedEndpoint:
    """An endpoint decorator that injects partitions at the caller.

    Wraps a :class:`TcpMeshEndpoint` (or anything endpoint-shaped) and
    fails :meth:`call` with :class:`~repro.errors.TransportError`
    *before dialing* while the gate is down — the deployment fault
    plan's network partition.  No frame is written, so the
    frame-conservation ledger stays exact through the fault.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._down = False

    @property
    def name(self) -> str:
        """The wrapped endpoint's name."""
        return self._inner.name

    def partition(self) -> None:
        """Cut the link: every call fails fast until :meth:`heal`."""
        self._down = True

    def heal(self) -> None:
        """Restore the link."""
        self._down = False

    def start(self, handler=None) -> None:
        """Delegate (mesh endpoints ignore handlers anyway)."""
        self._inner.start(handler)

    def next_request_id(self) -> str:
        """Delegate to the wrapped endpoint's id sequence."""
        return self._inner.next_request_id()

    async def call(
        self, destination: str, message: Message, *, timeout: float | None = None
    ) -> Message:
        """Delegate, unless the link is partitioned.

        Raises:
            TransportError: While partitioned (without dialing), or
                whatever the wrapped call raises.
        """
        if self._down:
            raise TransportError(
                f"link to {destination!r} partitioned (injected fault)"
            )
        return await self._inner.call(destination, message, timeout=timeout)

    def cast(self, destination: str, message: Message) -> None:
        """Delegate (still raises on a mesh endpoint)."""
        if self._down:
            raise TransportError(
                f"link to {destination!r} partitioned (injected fault)"
            )
        self._inner.cast(destination, message)

    async def close(self) -> None:
        """Delegate."""
        await self._inner.close()
