"""Worker processes of a distributed deployment, and their fault hooks.

A deployment forks two kinds of workers from the coordinator:

* **Origin shards** (:func:`run_origin_shard`) — each runs a full
  :class:`~repro.runtime.origin.OriginServer` (complete catalog, its own
  warm frozen estimator) behind a
  :class:`~repro.runtime.transport.TcpServer`.  The consistent-hash ring
  partitions *demand* traffic: a shard only ever sees requests for the
  documents it owns (plus replica failovers), but answers them exactly
  as the single-loop origin would — same reply, same riders — because
  speculation is a pure function of (document, digest, frozen model).
  Every reply names the *logical* origin, so client-side accounting is
  oblivious to sharding.
* **Proxy hosts** (:func:`run_proxy_host`) — each hosts a subset of the
  region :class:`~repro.runtime.proxy.ProxyNode` instances, one TCP
  listener per proxy, with upstream forwards resolved through the ring
  over a :class:`~repro.deploy.mesh.TcpMesh`.

Workers coordinate exclusively over the event bus: dissemination plan
in, ready/registry/anti-entropy events out, placement updates applied
through each proxy's public ``push`` handler (so a bus replay is
indistinguishable from a daemon re-push — that replay *is* the restart
recovery path).

Faults are injected at the application layer by
:class:`DeployFaultHandler`: a "crashed" proxy keeps its listener but
refuses with transport-error replies (clients retry and fail over,
exactly as they would against a dead process, minus non-deterministic
socket teardown), and a "partitioned" proxy's upstream link fails
pre-dial.  No frame is ever silently lost, so the cross-process
frame-conservation identity stays exact even under faults.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import SimulationError
from ..runtime.messages import Message, make_error
from ..runtime.metrics import MetricsRegistry, default_registry
from ..runtime.origin import OriginServer
from ..runtime.proxy import ProxyNode
from ..runtime.resilience import CircuitBreaker
from ..runtime.transport import TcpServer
from .bus import (
    TOPIC_ANTI_ENTROPY,
    TOPIC_CONTROL,
    TOPIC_DISSEMINATION,
    TOPIC_PLACEMENT,
    TOPIC_READY,
    TOPIC_REGISTRY,
    TOPIC_TOPOLOGY,
    EventBus,
)
from .mesh import GatedEndpoint, TcpMesh
from .ring import HashRing, shard_name

__all__ = [
    "DeployFaultHandler",
    "ProxyFault",
    "ProxyHostContext",
    "ShardContext",
    "holdings_digest",
    "proxy_host_name",
    "run_origin_shard",
    "run_proxy_host",
]

#: Breaker reset for proxy upstream links, in real seconds.  The
#: single-loop default (2× a 30 s timeout) is virtual-clock sized; on
#: real sockets a refusing shard answers instantly, so the breaker must
#: probe again quickly or one replica blip sticks for a minute of wall
#: time.
BREAKER_RESET_SECONDS = 0.25


def proxy_host_name(index: int) -> str:
    """Canonical process name of proxy host ``index``."""
    return f"proxy-host-{index}"


def holdings_digest(holdings: dict[str, int]) -> str:
    """Canonical digest of one node's holdings (anti-entropy token)."""
    canonical = json.dumps(sorted(holdings.items()), separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class ProxyFault:
    """Request-count fault triggers for one proxy.

    Deployment faults trigger on the proxy's inbound request count, not
    on virtual time (there is no virtual clock across processes): the
    ``N``-th inbound message trips the fault, which makes the scripted
    plan reproducible for a fixed workload regardless of scheduling.

    Attributes:
        crash_after: Inbound message count at which the proxy crashes
            (loses holdings, starts refusing); None never crashes.
        restart_after: Count at which a crashed proxy restarts and
            recovers holdings by replaying the placement topic; None
            stays down.
        partition_from: Count at which the upstream link partitions.
        partition_until: Count at which the partition heals; None never
            heals.
    """

    crash_after: int | None = None
    restart_after: int | None = None
    partition_from: int | None = None
    partition_until: int | None = None


@dataclass
class ShardContext:
    """Everything one origin-shard worker needs (passed through fork)."""

    index: int
    bus_path: str
    prepared: Any
    speculative: bool
    codec: str
    host: str = "127.0.0.1"
    startup_timeout: float = 30.0
    run_timeout: float = 900.0


@dataclass
class ProxyHostContext:
    """Everything one proxy-host worker needs (passed through fork)."""

    index: int
    bus_path: str
    prepared: Any
    proxies: tuple[str, ...]
    shards: int
    replicas: int
    codec: str
    host: str = "127.0.0.1"
    faults: dict[str, ProxyFault] = field(default_factory=dict)
    startup_timeout: float = 30.0
    run_timeout: float = 900.0


def _server_stats_hook(metrics: MetricsRegistry):
    """Server-side half of the frame ledger, onto ``network.*`` counters."""
    frames_sent = metrics.counter("network.frames_sent")
    bytes_sent = metrics.counter("network.bytes_sent")
    frames_delivered = metrics.counter("network.frames_delivered")
    bytes_delivered = metrics.counter("network.bytes_delivered")

    def hook(direction: str, message: Message) -> None:
        if direction == "sent":
            frames_sent.inc()
            bytes_sent.inc(message.body_bytes)
        else:
            frames_delivered.inc()
            bytes_delivered.inc(message.body_bytes)

    return hook


def _publish_worker_error(bus_path: str, node: str, err: Exception) -> None:
    EventBus(bus_path).publish(
        TOPIC_READY,
        "worker-error",
        {"node": node, "error": f"{type(err).__name__}: {err}"},
        event_id=f"worker-error:{node}",
    )


async def _apply_placement(node: ProxyNode, payload: dict[str, Any]) -> None:
    """Apply one placement event through the proxy's public push path.

    Raises:
        SimulationError: When the proxy rejects the push.
    """
    documents = [list(entry) for entry in payload.get("documents", [])]
    push = Message(
        kind="push",
        sender="deploy-bus",
        request_id=f"placement:{node.name}",
        payload={"documents": documents, "mode": "replace"},
        body_bytes=0,
    )
    reply = await node.handle(push)
    if reply is None or reply.kind != "ack":
        raise SimulationError(
            f"proxy {node.name!r} rejected placement: "
            f"{reply.payload if reply is not None else None!r}"
        )


async def _replay_placement(bus: EventBus, node: ProxyNode) -> None:
    """Anti-entropy by log replay: re-apply every placement for ``node``."""
    for event in bus.replay(TOPIC_PLACEMENT):
        if event.kind == "placement" and event.payload.get("proxy") == node.name:
            await _apply_placement(node, event.payload)


class DeployFaultHandler:
    """Wraps one proxy's handler with request-count fault injection.

    While "crashed" the proxy answers every request with a
    transport-kind error reply — the deterministic, conservation-exact
    analogue of a dead process (clients see a fast failure instead of a
    timeout).  Restart recovers holdings by replaying the placement
    topic.  Partitions toggle the proxy's
    :class:`~repro.deploy.mesh.GatedEndpoint` so upstream calls fail
    before dialing.
    """

    def __init__(
        self,
        node: ProxyNode,
        gate: GatedEndpoint,
        *,
        fault: ProxyFault | None = None,
        bus: EventBus | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self._node = node
        self._gate = gate
        self._fault = fault
        self._bus = bus
        self.metrics = metrics if metrics is not None else default_registry()
        self._count = 0
        self._down = False
        self._restarting = False

    def _note(self, label: str) -> None:
        self.metrics.counter(f"deploy.faults.{label}").inc()
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # outside a loop (unit tests)
            now = 0.0
        self.metrics.record_event(now, f"fault:{label}:{self._node.name}")

    async def __call__(self, message: Message) -> Message | None:
        """Apply due fault transitions, then serve (or refuse)."""
        self._count += 1
        count = self._count
        fault = self._fault
        if fault is not None:
            if fault.partition_from is not None and count == fault.partition_from:
                self._gate.partition()
                self._note("partition")
            if (
                fault.partition_until is not None
                and count == fault.partition_until
            ):
                self._gate.heal()
                self._note("heal")
            if fault.crash_after is not None and count == fault.crash_after:
                self._node.on_crash()
                self._down = True
                self._note("crash")
            if (
                self._down
                and fault.restart_after is not None
                and count >= fault.restart_after
                and not self._restarting
            ):
                self._restarting = True
                try:
                    self._node.on_restart()
                    if self._bus is not None:
                        await _replay_placement(self._bus, self._node)
                    self._down = False
                    self._note("restart")
                finally:
                    self._restarting = False
            if self._down:
                return make_error(
                    self._node.name,
                    message.request_id,
                    "transport",
                    f"proxy {self._node.name!r} down (injected crash)",
                )
        return await self._node.handle(message)


# -- origin shard -------------------------------------------------------------


async def _origin_shard_main(ctx: ShardContext) -> None:
    name = shard_name(ctx.index)
    bus = EventBus(ctx.bus_path)
    control = bus.consumer(TOPIC_CONTROL)
    dissemination = bus.consumer(TOPIC_DISSEMINATION)
    # The plan event is the start barrier: serving before the
    # coordinator has committed the dissemination decision would let a
    # shard answer with riders the placement does not reflect yet.
    await dissemination.await_event(
        lambda event: event.kind == "plan", timeout=ctx.startup_timeout
    )
    prepared = ctx.prepared
    metrics = default_registry()
    origin = OriginServer(
        prepared.serve.documents,
        estimator=prepared.fresh_estimator(),
        policy=prepared.policy if ctx.speculative else None,
        config=prepared.config,
        metrics=metrics,
        name=prepared.tree.root,
    )
    server = TcpServer(
        origin.handle,
        host=ctx.host,
        port=0,
        codec=ctx.codec,
        stats_hook=_server_stats_hook(metrics),
    )
    await server.start()
    bus.publish(
        TOPIC_READY,
        "ready",
        {"node": name, "host": ctx.host, "port": server.port},
        event_id=f"ready:{name}",
    )
    await control.await_event(
        lambda event: event.kind == "shutdown", timeout=ctx.run_timeout
    )
    await server.close()  # drains in-flight replies before the exit
    bus.publish(
        TOPIC_REGISTRY,
        "registry",
        {"process": name, "state": metrics.export_state()},
        event_id=f"registry:{name}",
    )


def run_origin_shard(ctx: ShardContext) -> None:
    """Process entry point of one origin shard."""
    try:
        asyncio.run(_origin_shard_main(ctx))
    except Exception as err:  # repro-lint: disable=H002
        # Process boundary: any startup/serve crash must surface on the
        # bus, or the coordinator only learns via a silent timeout.
        _publish_worker_error(ctx.bus_path, shard_name(ctx.index), err)
        raise


# -- proxy host ---------------------------------------------------------------


async def _proxy_host_main(ctx: ProxyHostContext) -> None:
    host_label = proxy_host_name(ctx.index)
    bus = EventBus(ctx.bus_path)
    control = bus.consumer(TOPIC_CONTROL)
    topology = bus.consumer(TOPIC_TOPOLOGY)
    placement = bus.consumer(TOPIC_PLACEMENT)
    event = await topology.await_event(
        lambda ev: ev.kind == "topology", timeout=ctx.startup_timeout
    )
    directory = {
        node: (str(entry[0]), int(entry[1]))
        for node, entry in event.payload["nodes"].items()
    }
    prepared = ctx.prepared
    settings = prepared.settings
    metrics = default_registry()
    mesh = TcpMesh(
        directory, codec=ctx.codec, timeout=settings.request_timeout
    )
    resolve = HashRing(ctx.shards).resolver(ctx.replicas)
    nodes: dict[str, ProxyNode] = {}
    gates: dict[str, GatedEndpoint] = {}
    for region in ctx.proxies:
        gate = GatedEndpoint(mesh.endpoint(region))
        nodes[region] = ProxyNode(
            region,
            gate,
            upstream=prepared.tree.root,
            metrics=metrics,
            upstream_timeout=settings.request_timeout,
            breaker=CircuitBreaker(
                failure_threshold=4, reset_timeout=BREAKER_RESET_SECONDS
            ),
            backoff_seed=settings.seed,
            resolve_upstream=resolve,
        )
        gates[region] = gate

    # Holdings arrive as placement events (published at least once —
    # deliberately twice — by the coordinator); the consumer's
    # duplicate filter absorbs the redundancy.  Applying them through
    # the public push handler keeps this path identical to a daemon
    # re-push and to the restart replay.
    needed = set(ctx.proxies)
    while needed:
        ev = await placement.await_event(
            lambda ev: ev.kind == "placement"
            and ev.payload.get("proxy") in needed,
            timeout=ctx.startup_timeout,
        )
        await _apply_placement(nodes[ev.payload["proxy"]], ev.payload)
        needed.discard(ev.payload["proxy"])

    servers: list[TcpServer] = []
    for region in ctx.proxies:
        handler = DeployFaultHandler(
            nodes[region],
            gates[region],
            fault=ctx.faults.get(region),
            bus=bus,
            metrics=metrics,
        )
        server = TcpServer(
            handler,
            host=ctx.host,
            port=0,
            codec=ctx.codec,
            stats_hook=_server_stats_hook(metrics),
        )
        await server.start()
        servers.append(server)
        bus.publish(
            TOPIC_READY,
            "ready",
            {"node": region, "host": ctx.host, "port": server.port},
            event_id=f"ready:{region}",
        )

    await control.await_event(
        lambda ev: ev.kind == "shutdown", timeout=ctx.run_timeout
    )
    for server in servers:
        await server.close()  # drains in-flight replies first
    for node in nodes.values():
        await node.close()
    await mesh.close()
    # Drain any stragglers so the duplicate tally below is final.
    placement.drain()
    for key, value in mesh.stats().items():
        if value:
            metrics.counter(f"network.{key}").inc(value)
    metrics.counter("bus.duplicate_events").inc(placement.duplicates)
    digests = {
        region: holdings_digest(node.holdings)
        for region, node in sorted(nodes.items())
    }
    bus.publish(
        TOPIC_ANTI_ENTROPY,
        "digest",
        {"process": host_label, "holdings": digests},
        event_id=f"digest:{host_label}",
    )
    bus.publish(
        TOPIC_REGISTRY,
        "registry",
        {"process": host_label, "state": metrics.export_state()},
        event_id=f"registry:{host_label}",
    )


def run_proxy_host(ctx: ProxyHostContext) -> None:
    """Process entry point of one proxy host."""
    try:
        asyncio.run(_proxy_host_main(ctx))
    except Exception as err:  # repro-lint: disable=H002
        # Process boundary: surface the crash on the bus (see above).
        _publish_worker_error(ctx.bus_path, proxy_host_name(ctx.index), err)
        raise
