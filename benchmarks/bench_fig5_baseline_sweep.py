"""Figure 5 — baseline simulation results across speculation levels.

The paper sweeps the threshold T_p of the baseline policy
(``p*[i,j] >= T_p``) and plots the reduction in server load, service
time and client miss rate, together with the traffic increase.  Shape:
gains rise as T_p falls, traffic explodes below a knee, and near
T_p ≈ 1 (embedding dependencies only) the traffic increase is ~0.
"""

from _harness import emit
from conftest import THRESHOLD_GRID
from repro.core import format_table


def test_fig5_baseline_sweep(benchmark, fig5_sweep, paper_experiment):
    # The sweep itself is the session fixture; time one extra point.
    from repro.speculation import ThresholdPolicy

    benchmark.pedantic(
        paper_experiment.evaluate,
        args=(ThresholdPolicy(threshold=0.3),),
        rounds=1,
        iterations=1,
    )

    rows = []
    for point in fig5_sweep:
        ratios = point.ratios
        rows.append(
            [
                f"{point.parameter:.2f}",
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{ratios.service_time_reduction:.1%}",
                f"{ratios.miss_rate_reduction:.1%}",
            ]
        )
    emit(
        "fig5",
        format_table(
            ["T_p", "traffic increase", "load reduction", "time reduction", "miss reduction"],
            rows,
            title="Figure 5: baseline simulation results vs speculation level",
        ),
    )

    by_threshold = {p.parameter: p.ratios for p in fig5_sweep}

    # Embedding-dependency regime (T_p ~ 1): almost no extra traffic.
    assert by_threshold[0.95].traffic_increase < 0.02

    # Lowering the threshold never decreases traffic; gains never shrink.
    ordered = [by_threshold[t] for t in sorted(by_threshold, reverse=True)]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.traffic_increase >= earlier.traffic_increase - 1e-9
        assert later.server_load_reduction >= earlier.server_load_reduction - 0.01

    # Meaningful gains exist at moderate speculation.
    assert by_threshold[0.25].server_load_reduction > 0.15
    # All reductions stay in [0, 1).
    for ratios in by_threshold.values():
        assert 0.0 <= ratios.server_load_reduction < 1.0
        assert 0.0 <= ratios.service_time_reduction < 1.0
        assert 0.0 <= ratios.miss_rate_reduction < 1.0
