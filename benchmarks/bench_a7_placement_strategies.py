"""Ablation A7 — proxy placement strategies.

Section 2.1: the paper places proxies by *optimally* locating tree
nodes from client access patterns (server logs), and cites Gwertzman &
Seltzer's geography-based alternative.  This ablation compares three
strategies under identical dissemination content and budgets:

* log-driven greedy placement on the clientele tree (the paper's),
* geographic placement (busiest regions),
* a depth-1 uniform spread (place at the first ``k`` regions), as the
  no-information baseline.
"""

import pytest

from _harness import emit
from repro.core import format_table
from repro.dissemination import DisseminationSimulator
from repro.dissemination.simulator import select_popular_bytes
from repro.popularity import PopularityProfile
from repro.topology import (
    build_clientele_tree,
    geographic_placement,
    greedy_tree_placement,
)

N_PROXIES = 6
BUDGET_FRACTION = 0.10


def test_a7_placement_strategies(benchmark, paper_trace, paper_generator):
    tree = build_clientele_tree(paper_trace, backbone_hops=2)
    simulator = DisseminationSimulator(paper_trace, tree)
    profile = PopularityProfile.from_trace(paper_trace.remote_only())
    documents = select_popular_bytes(
        profile, BUDGET_FRACTION * paper_generator.site.total_bytes()
    )
    demand: dict[str, float] = {}
    for request in paper_trace.remote_only():
        demand[request.client] = demand.get(request.client, 0.0) + request.size

    results = {}

    def run_all():
        greedy = greedy_tree_placement(tree, demand, N_PROXIES)
        geographic = geographic_placement(tree, demand, N_PROXIES)
        uniform = sorted(
            node
            for node in tree.internal_nodes()
            if node.startswith("region-")
        )[:N_PROXIES]
        for label, proxies in (
            ("log-driven greedy (paper)", greedy),
            ("geographic (Gwertzman-Seltzer)", geographic),
            ("uniform regions (no information)", uniform),
        ):
            results[label] = simulator.simulate(proxies, documents)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{outcome.savings_fraction:.1%}",
            f"{outcome.proxy_hit_rate:.1%}",
        ]
        for label, outcome in results.items()
    ]
    emit(
        "a7",
        format_table(
            ["placement strategy", "bytes*hops saved", "proxy hit rate"],
            rows,
            title=(
                f"A7: placement strategies ({N_PROXIES} proxies, "
                f"top {BUDGET_FRACTION:.0%} of data disseminated)"
            ),
        ),
    )

    greedy = results["log-driven greedy (paper)"].savings_fraction
    geographic = results["geographic (Gwertzman-Seltzer)"].savings_fraction
    uniform = results["uniform regions (no information)"].savings_fraction

    # The paper's log-driven placement dominates both alternatives.
    assert greedy >= geographic - 1e-9
    assert greedy >= uniform - 1e-9
    # Demand-aware geography beats demand-blind placement.
    assert geographic >= uniform - 0.02
    assert greedy > 0.05
