"""E1 (section 3.4) — stability of the P and P* relations.

The paper re-estimates P/P* every D days from the previous D' days and
measures the degradation relative to a daily update: D = 60 costs ~7
points, D = 7 costs ~3 points (absolute, averaged over metrics), and
D' = 30 slightly beats D' = 60.  This bench replays the last 20 days of
a reduced-scale trace under rolling models with D in {1, 7, 60} and
D' in {30, 60}.
"""

import pytest

from _harness import emit
from repro.config import BASELINE, SECONDS_PER_DAY
from repro.core import format_table
from repro.speculation import (
    RollingEstimator,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
    compare,
)

POLICY = ThresholdPolicy(threshold=0.25)
REPLAY_DAYS = 20.0


def _mean_reduction(ratios):
    return (
        ratios.server_load_reduction
        + ratios.service_time_reduction
        + ratios.miss_rate_reduction
    ) / 3.0


@pytest.fixture(scope="module")
def replay(medium_trace):
    boundary = medium_trace.end_time - REPLAY_DAYS * SECONDS_PER_DAY
    return medium_trace.window(boundary, medium_trace.end_time + 1.0)


def _evaluate(medium_trace, replay, update_days, history_days):
    rolling = RollingEstimator(
        medium_trace,
        history_length_days=history_days,
        update_cycle_days=update_days,
        window=BASELINE.stride_timeout,
    )
    simulator = SpeculativeServiceSimulator(replay, BASELINE, rolling=rolling)
    baseline = simulator.run(None)
    speculation = simulator.run(POLICY)
    return compare(speculation.metrics, baseline.metrics)


def test_e1_update_cycle(benchmark, medium_trace, replay):
    results = {}

    def sweep():
        for update_days in (1.0, 7.0, 60.0):
            results[("D", update_days)] = _evaluate(
                medium_trace, replay, update_days, 60.0
            )
        results[("Dprime", 30.0)] = _evaluate(medium_trace, replay, 1.0, 30.0)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    daily = results[("D", 1.0)]
    for (kind, value), ratios in results.items():
        label = f"D={value:g}, D'=60" if kind == "D" else f"D=1, D'={value:g}"
        rows.append(
            [
                label,
                f"{ratios.traffic_increase:+.1%}",
                f"{_mean_reduction(ratios):.1%}",
                f"{(_mean_reduction(daily) - _mean_reduction(ratios)):+.1%}",
            ]
        )
    emit(
        "e1",
        format_table(
            ["schedule", "traffic", "mean reduction", "degradation vs D=1"],
            rows,
            title=(
                "E1: update-cycle stability "
                "(paper: D=60 ~7pt worse, D=7 ~3pt worse than D=1)"
            ),
        ),
    )

    # Less frequent updates never help.
    assert _mean_reduction(results[("D", 1.0)]) >= _mean_reduction(
        results[("D", 7.0)]
    ) - 0.01
    assert _mean_reduction(results[("D", 7.0)]) >= _mean_reduction(
        results[("D", 60.0)]
    ) - 0.01
    # The D=60 schedule is measurably worse than daily updates.
    assert _mean_reduction(results[("D", 1.0)]) > _mean_reduction(
        results[("D", 60.0)]
    )
    # All schedules still beat no speculation.
    for ratios in results.values():
        assert _mean_reduction(ratios) > 0.0
