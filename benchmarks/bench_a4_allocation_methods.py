"""Ablation A4 — exponential closed form vs model-free greedy allocation.

The paper's optimal split (eqs. 4-5) assumes exponential coverage
curves.  Real curves are step functions over documents, so fitting λ
and using the closed form loses a little to the model-free greedy
allocator that packs actual documents by marginal value.  This ablation
measures the gap on empirical profiles at several budgets.
"""

import pytest

from _harness import emit
from repro.core import format_table
from repro.dissemination import (
    ServerModel,
    exponential_allocation,
    greedy_document_allocation,
)
from repro.popularity import PopularityProfile, fit_lambda
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

BUDGET_FRACTIONS = [0.02, 0.05, 0.15]


def _empirical_alpha(profiles, allocations) -> float:
    """Intercepted request fraction when each server packs its own
    most popular documents into its granted bytes."""
    hits = 0
    total = 0
    for name, profile in profiles.items():
        granted = allocations.get(name, 0.0)
        used = 0.0
        for stat in profile.ranked(remote_only=True):
            if stat.remote_requests <= 0:
                break
            total += stat.remote_requests
            if used + stat.size <= granted:
                used += stat.size
                hits += stat.remote_requests
        # Count remaining uncovered requests toward the total.
    grand_total = sum(
        p.total_requests(remote_only=True) for p in profiles.values()
    )
    return hits / grand_total if grand_total else 0.0


@pytest.fixture(scope="module")
def cluster_profiles():
    profiles = {}
    for index, (pages, sessions, alpha) in enumerate(
        [(120, 2500, 1.6), (150, 1200, 1.0), (200, 600, 0.7)]
    ):
        generator = SyntheticTraceGenerator(
            GeneratorConfig(
                seed=30 + index,
                n_pages=pages,
                n_clients=150,
                n_sessions=sessions,
                duration_days=30,
                popularity_alpha=alpha,
            )
        )
        profiles[f"s{index}"] = PopularityProfile.from_trace(
            generator.generate().remote_only()
        )
    return profiles


def test_a4_allocation_methods(benchmark, cluster_profiles):
    total_bytes = sum(
        sum(s.size for s in p.all_stats()) for p in cluster_profiles.values()
    )
    results = {}

    def run_all():
        models = []
        for name, profile in cluster_profiles.items():
            curve_bytes, coverage = profile.coverage_curve()
            models.append(
                ServerModel(
                    name=name,
                    rate=profile.total_bytes_served(remote_only=True),
                    lam=fit_lambda(curve_bytes, coverage),
                )
            )
        for fraction in BUDGET_FRACTIONS:
            budget = fraction * total_bytes
            closed = exponential_allocation(models, budget)
            greedy = greedy_document_allocation(cluster_profiles, budget)
            results[fraction] = (
                _empirical_alpha(cluster_profiles, closed.allocations),
                greedy.alpha,
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            f"{fraction:.0%}",
            f"{closed_alpha:.1%}",
            f"{greedy_alpha:.1%}",
            f"{greedy_alpha - closed_alpha:+.1%}",
        ]
        for fraction, (closed_alpha, greedy_alpha) in results.items()
    ]
    emit(
        "a4",
        format_table(
            ["budget (of site)", "closed form (eq 4-5)", "greedy (model-free)", "gap"],
            rows,
            title="A4: achieved empirical alpha, closed form vs greedy packing",
        ),
    )

    for fraction, (closed_alpha, greedy_alpha) in results.items():
        # Greedy packs real documents: it can only do better (or tie).
        assert greedy_alpha >= closed_alpha - 1e-9
        # But the exponential model is a decent fit: the gap stays moderate.
        assert greedy_alpha - closed_alpha < 0.35
        assert 0.0 <= closed_alpha <= 1.0
