"""Ablation A6 — why servers exclude mutable documents (§2).

The paper's rationale for the mutable/immutable classification is that
disseminated copies of frequently-updated documents go stale.  This
ablation disseminates a server's popular set, applies the paper's
measured update rates (0.5%/day for remote/global, 2%/day for local,
with a small fast-updating mutable subset), and compares the
maintenance policies: do nothing, exclude mutables (the paper's
choice), push on update, refresh weekly.
"""

import numpy as np
import pytest

from _harness import emit
from repro.core import format_table
from repro.dissemination import FreshnessSimulator
from repro.dissemination.simulator import select_popular_bytes
from repro.popularity import PopularityProfile, classify_documents
from repro.workload import GeneratorConfig, SyntheticTraceGenerator, UpdateProcess


@pytest.fixture(scope="module")
def setup():
    generator = SyntheticTraceGenerator(
        GeneratorConfig(
            seed=23, n_pages=200, n_clients=300, n_sessions=3000, duration_days=60
        )
    )
    trace = generator.generate()
    profile = PopularityProfile.from_trace(trace)
    classes = {
        doc: cls.value for doc, cls in classify_documents(profile).items()
    }
    process = UpdateProcess(
        classes, np.random.default_rng(23), mutable_fraction=0.05
    )
    updates = process.events(60)
    disseminated = select_popular_bytes(
        profile, 0.15 * generator.site.total_bytes()
    )
    return trace, updates, disseminated, process.mutable_docs


def test_a6_mutable_freshness(benchmark, setup):
    trace, updates, disseminated, mutable_docs = setup
    simulator = FreshnessSimulator(trace, updates)
    results = {}

    def run_all():
        results["ignore"] = simulator.simulate(disseminated, policy="ignore")
        results["exclude-mutable"] = simulator.simulate(
            disseminated, policy="exclude-mutable", mutable_docs=mutable_docs
        )
        results["push-updates"] = simulator.simulate(
            disseminated, policy="push-updates"
        )
        results["weekly refresh"] = simulator.simulate(
            disseminated, policy="periodic-refresh", refresh_cycle_days=7.0
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{result.coverage:.1%}",
            f"{result.stale_fraction:.2%}",
            f"{result.refresh_bytes / 1e6:.1f} MB",
        ]
        for label, result in results.items()
    ]
    emit(
        "a6",
        format_table(
            ["maintenance policy", "proxy coverage", "stale deliveries", "refresh cost"],
            rows,
            title=(
                "A6: freshness of disseminated copies under the paper's "
                "update rates (mutable subset @ high churn)"
            ),
        ),
    )

    ignore = results["ignore"]
    exclude = results["exclude-mutable"]
    push = results["push-updates"]
    weekly = results["weekly refresh"]

    # Doing nothing accumulates stale deliveries.
    assert ignore.stale_fraction > 0.0
    # The paper's exclusion removes most of the staleness at a modest
    # coverage cost (frequent updates are confined to a small subset).
    assert exclude.stale_fraction < ignore.stale_fraction
    assert exclude.coverage > ignore.coverage * 0.7
    # Push-on-update eliminates staleness entirely, for bytes.
    assert push.stale_fraction == 0.0
    assert push.refresh_bytes > 0.0
    # Periodic refresh sits between doing nothing and pushing.
    assert weekly.stale_fraction <= ignore.stale_fraction
    assert 0.0 < weekly.refresh_bytes
