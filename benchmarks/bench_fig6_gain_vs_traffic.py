"""Figure 6 — performance gains versus bandwidth spent.

The Figure-5 sweep re-indexed by the traffic increase it buys: reduction
in server load / service time / miss rate as a function of extra
bandwidth.  Shape: steep gains up to roughly 5-10% extra traffic, then
strongly diminishing returns (the paper: doubling traffic from +50% to
+100% adds only ~7/6/2 points).
"""

from _harness import emit, once
from repro.core import format_series, format_table, interpolate_at_traffic

TRAFFIC_LEVELS = [0.02, 0.05, 0.10, 0.25, 0.50, 1.00]


def test_fig6_gain_vs_traffic(benchmark, fig5_sweep):
    curve = once(
        benchmark,
        lambda: [
            (level, interpolate_at_traffic(fig5_sweep, level))
            for level in TRAFFIC_LEVELS
        ],
    )

    rows = [
        [
            f"{level:+.0%}",
            f"{ratios.server_load_reduction:.1%}",
            f"{ratios.service_time_reduction:.1%}",
            f"{ratios.miss_rate_reduction:.1%}",
        ]
        for level, ratios in curve
    ]
    emit(
        "fig6",
        format_table(
            ["extra traffic", "load reduction", "time reduction", "miss reduction"],
            rows,
            title="Figure 6: gains vs bandwidth used (paper: +5% buys ~30%/23%/18%)",
        ),
    )
    emit(
        "fig6",
        format_series(
            "Figure 6 shape: server-load reduction vs extra traffic",
            [level for level, __ in curve],
            [ratios.server_load_reduction for __, ratios in curve],
            x_label="extra traffic",
            y_label="load reduction",
        ),
    )

    gains = {level: ratios for level, ratios in curve}
    # Gains are monotone in spent bandwidth.
    ordered = [gains[level].server_load_reduction for level in TRAFFIC_LEVELS]
    assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # Conservative speculation is where the value is: the first +10%
    # of traffic buys more than the next +90% adds on top.
    first = gains[0.10].server_load_reduction
    extra = gains[1.00].server_load_reduction - first
    assert first > extra
    # A small budget already yields a double-digit load reduction.
    assert gains[0.05].server_load_reduction > 0.10
