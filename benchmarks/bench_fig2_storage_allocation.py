"""Figure 2 — optimal storage allocation for equally popular servers.

Equation 7's closed form: with all rates equal, how much proxy storage
should server ``j`` get as a function of its popularity skew ``λ_j``,
when the other n−1 servers share a common ``λ_i``?  The paper plots two
budgets: tight (``B_0 = 1/λ_i``) and lax (``B_0 = 10/λ_i``).  Shape:
under a lax budget more-uniform servers (small λ_j) get more storage;
under a tight budget intermediate λ_j is favoured (a hump).
"""

import numpy as np

from _harness import emit, once
from repro.core import format_series
from repro.dissemination import equal_popularity_allocation

LAM_OTHERS = 1e-6
#: One peer server: the smallest cluster where the trade-off is visible
#: without the unconstrained closed form diving far negative.
N_OTHERS = 1
#: λ_j / λ_i ratios swept (log-spaced, as in the paper's figure).
RATIOS = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0]


def _allocation_curve(budget: float) -> list[float]:
    shares = []
    for ratio in RATIOS:
        lam_j = LAM_OTHERS * ratio
        allocations = equal_popularity_allocation(
            [lam_j] + [LAM_OTHERS] * N_OTHERS, budget
        )
        shares.append(allocations[0])
    return shares


def test_fig2_storage_allocation(benchmark):
    tight_budget = 1.0 / LAM_OTHERS
    lax_budget = 10.0 / LAM_OTHERS

    tight = once(benchmark, _allocation_curve, tight_budget)
    lax = _allocation_curve(lax_budget)

    emit(
        "fig2",
        format_series(
            "Figure 2 (tight budget B0 = 1/lambda): storage for server j",
            RATIOS,
            [s / tight_budget for s in tight],
            x_label="lambda_j / lambda_i",
            y_label="B_j / B0",
        ),
    )
    emit(
        "fig2",
        format_series(
            "Figure 2 (lax budget B0 = 10/lambda): storage for server j",
            RATIOS,
            [s / lax_budget for s in lax],
            x_label="lambda_j / lambda_i",
            y_label="B_j / B0",
        ),
    )

    # Tight budget: interior hump (extremes get less than the middle).
    peak = int(np.argmax(tight))
    assert 0 < peak < len(RATIOS) - 1
    # Lax budget: smaller lambda_j (more uniform popularity) gets more.
    assert lax[0] > lax[-1]
    # At lambda_j = lambda_i both curves give the even split B0/n.
    even_index = RATIOS.index(1.0)
    assert tight[even_index] == np.float64(tight_budget) / (N_OTHERS + 1)
    assert abs(lax[even_index] - lax_budget / (N_OTHERS + 1)) < 1e-6
