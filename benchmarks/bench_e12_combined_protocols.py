"""E12 (conclusion) — the two protocols are complementary.

The paper's conclusion: dissemination "was shown to be most effective in
reducing network traffic ... and in balancing the load amongst
servers", while speculative service "was shown to be quite effective in
reducing service time ... and server load".  This bench runs both
halves — separately and together — through the combined replay and
shows the division of labour: dissemination owns the bytes×hops win,
speculation owns the origin-load/service-time win, and together they
get both (dissemination also neutralizes speculation's wide-area
traffic cost, since proxy-served requests never trigger origin pushes).
"""

import pytest

from _harness import emit
from repro.config import BASELINE
from repro.core import CombinedProtocolSimulator, format_table
from repro.dissemination import select_popular_bytes
from repro.popularity import PopularityProfile
from repro.speculation import DependencyModel, ThresholdPolicy
from repro.topology import build_clientele_tree, greedy_tree_placement

N_PROXIES = 8
DATA_FRACTION = 0.10
POLICY = ThresholdPolicy(threshold=0.25)


def test_e12_combined_protocols(benchmark, paper_trace, paper_generator):
    split = paper_trace.start_time + 60 * 86_400.0
    model = DependencyModel.estimate(
        paper_trace.window(paper_trace.start_time, split),
        window=BASELINE.stride_timeout,
    )
    test = paper_trace.window(split, paper_trace.end_time + 1.0)
    tree = build_clientele_tree(test, backbone_hops=2)
    demand: dict[str, float] = {}
    for request in test.remote_only():
        demand[request.client] = demand.get(request.client, 0.0) + request.size
    proxies = greedy_tree_placement(tree, demand, N_PROXIES)
    documents = select_popular_bytes(
        PopularityProfile.from_trace(test.remote_only()),
        DATA_FRACTION * paper_generator.site.total_bytes(),
    )
    simulator = CombinedProtocolSimulator(test, tree, BASELINE, model=model)

    results = {}

    def run_all():
        results["baseline"] = simulator.run()
        results["dissemination only"] = simulator.run(
            proxies=proxies, disseminated=documents
        )
        results["speculation only"] = simulator.run(policy=POLICY)
        results["combined"] = simulator.run(
            proxies=proxies, disseminated=documents, policy=POLICY
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    base = results["baseline"]
    rows = []
    for name, outcome in results.items():
        rows.append(
            [
                name,
                f"{1 - outcome.origin_requests / base.origin_requests:+.1%}",
                f"{1 - outcome.bytes_hops / base.bytes_hops:+.1%}",
                f"{1 - outcome.service_time / base.service_time:+.1%}",
            ]
        )
    emit(
        "e12",
        format_table(
            ["configuration", "origin load saved", "bytes*hops saved", "time saved"],
            rows,
            title=(
                "E12: the conclusion's division of labour — "
                "dissemination vs speculation vs both"
            ),
        ),
    )

    dissemination = results["dissemination only"]
    speculation = results["speculation only"]
    combined = results["combined"]

    # The paper's division of labour:
    # dissemination wins on network traffic (speculation *adds* traffic)...
    assert dissemination.bytes_hops < speculation.bytes_hops
    assert dissemination.bytes_hops < base.bytes_hops
    assert speculation.bytes_hops > combined.bytes_hops
    # ...speculation wins on client-visible service time...
    assert speculation.service_time < dissemination.service_time
    assert speculation.service_time < base.service_time
    # ...and the combination dominates each alone on origin load while
    # keeping the traffic near the dissemination-only level.
    assert combined.origin_requests <= speculation.origin_requests
    assert combined.origin_requests <= dissemination.origin_requests
    assert combined.bytes_hops <= speculation.bytes_hops
    assert combined.bytes_hops <= base.bytes_hops
    assert combined.service_time <= dissemination.service_time
