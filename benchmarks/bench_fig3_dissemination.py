"""Figure 3 — bandwidth (bytes×hops) saved by dissemination.

The paper disseminates the most popular 10% (and 4%) of the server's
data to a growing number of proxies and measures the reduction in
bytes×hops over the clientele tree.  Shape: savings grow with the
number of proxies and with the disseminated fraction, concavely; the
paper reports up to ~40% reduction.
"""

import pytest

from _harness import emit
from repro.core import format_table
from repro.dissemination import DisseminationSimulator
from repro.dissemination.simulator import select_popular_bytes
from repro.popularity import PopularityProfile
from repro.topology import build_clientele_tree, greedy_tree_placement

PROXY_COUNTS = [1, 2, 4, 8, 16]
FRACTIONS = [0.04, 0.10]


@pytest.fixture(scope="module")
def setup(paper_trace, paper_generator):
    tree = build_clientele_tree(paper_trace, backbone_hops=2)
    simulator = DisseminationSimulator(paper_trace, tree)
    profile = PopularityProfile.from_trace(paper_trace.remote_only())
    demand: dict[str, float] = {}
    for request in paper_trace.remote_only():
        demand[request.client] = demand.get(request.client, 0.0) + request.size
    proxies = greedy_tree_placement(tree, demand, max(PROXY_COUNTS))
    return simulator, profile, proxies, paper_generator.site.total_bytes()


def test_fig3_dissemination(benchmark, setup):
    simulator, profile, proxies, site_bytes = setup

    def sweep():
        results = {}
        for fraction in FRACTIONS:
            documents = select_popular_bytes(profile, fraction * site_bytes)
            series = []
            for count in PROXY_COUNTS:
                outcome = simulator.simulate(proxies[:count], documents)
                series.append(outcome)
            results[fraction] = (documents, series)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for fraction, (documents, series) in results.items():
        for count, outcome in zip(PROXY_COUNTS, series):
            rows.append(
                [
                    f"{fraction:.0%}",
                    count,
                    f"{outcome.savings_fraction:.1%}",
                    f"{outcome.proxy_hit_rate:.1%}",
                    f"{outcome.storage_bytes / 1e6:.1f} MB",
                ]
            )
    emit(
        "fig3",
        format_table(
            ["disseminated", "proxies", "bytes*hops saved", "proxy hit rate", "total storage"],
            rows,
            title="Figure 3: bandwidth saved vs number of proxies",
        ),
    )

    for fraction in FRACTIONS:
        __, series = results[fraction]
        savings = [outcome.savings_fraction for outcome in series]
        # Monotone in proxies, concave-ish: first proxy buys the most.
        assert all(b >= a - 1e-12 for a, b in zip(savings, savings[1:]))
        assert savings[-1] > 0.10
    # Disseminating more data never saves less.
    low = results[0.04][1][-1].savings_fraction
    high = results[0.10][1][-1].savings_fraction
    assert high >= low
