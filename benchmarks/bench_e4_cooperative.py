"""E4 (section 3.4) — cooperative clients.

A cooperative client piggybacks its cache digest on each request, so
the server never speculatively re-sends documents the client already
holds.  The paper: "speculative service with cooperative clients
results in better bandwidth utilization."
"""

from _harness import emit
from repro.core import format_table
from repro.speculation import ThresholdPolicy

THRESHOLDS = [0.25, 0.10]


def test_e4_cooperative_clients(benchmark, paper_experiment):
    results = {}

    def sweep():
        for threshold in THRESHOLDS:
            policy = ThresholdPolicy(threshold=threshold)
            plain, plain_run = paper_experiment.evaluate(policy)
            cooperative, coop_run = paper_experiment.evaluate(
                policy, cooperative=True
            )
            results[threshold] = (plain, plain_run, cooperative, coop_run)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for threshold, (plain, plain_run, cooperative, coop_run) in results.items():
        for label, ratios, run in (
            ("plain", plain, plain_run),
            ("cooperative", cooperative, coop_run),
        ):
            wasted = run.metrics.wasted_bytes
            sent = run.metrics.speculated_bytes
            rows.append(
                [
                    f"{threshold:.2f}",
                    label,
                    f"{ratios.traffic_increase:+.1%}",
                    f"{ratios.server_load_reduction:.1%}",
                    f"{wasted / sent:.1%}" if sent else "-",
                ]
            )
    emit(
        "e4",
        format_table(
            ["T_p", "clients", "traffic", "load red.", "speculated bytes wasted"],
            rows,
            title="E4: cooperative clients (paper: better bandwidth utilization)",
        ),
    )

    for threshold, (plain, plain_run, cooperative, coop_run) in results.items():
        # Cooperation strictly improves bandwidth utilization...
        assert cooperative.bandwidth_ratio <= plain.bandwidth_ratio + 1e-9
        # ...without giving up the load/time gains.
        assert (
            cooperative.server_load_reduction
            >= plain.server_load_reduction - 0.01
        )
        # The waste fraction drops.
        plain_waste = plain_run.metrics.wasted_bytes / max(
            plain_run.metrics.speculated_bytes, 1.0
        )
        coop_waste = coop_run.metrics.wasted_bytes / max(
            coop_run.metrics.speculated_bytes, 1.0
        )
        assert coop_waste <= plain_waste + 1e-9
