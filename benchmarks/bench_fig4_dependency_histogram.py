"""Figure 4 — histogram of document pairs by dependency probability.

The paper computes P over one month of trace with T_w = 5 s and plots
the number of (D_i, D_j) pairs per probability range.  Shape: peaks
near 1/k for small integers k (uniform anchor choice among a page's k
links), with the rightmost peak (p ≈ 1) contributed by embedding
dependencies.
"""

from _harness import emit, once
from repro.config import SECONDS_PER_DAY
from repro.core import format_series
from repro.speculation import DependencyModel

N_BINS = 20


def test_fig4_dependency_histogram(benchmark, paper_trace):
    month = paper_trace.window(
        paper_trace.start_time, paper_trace.start_time + 30 * SECONDS_PER_DAY
    )
    model = once(benchmark, DependencyModel.estimate, month, window=5.0)
    histogram = model.pair_histogram(N_BINS)

    centers = [
        (histogram.bin_edges[i] + histogram.bin_edges[i + 1]) / 2
        for i in range(N_BINS)
    ]
    emit(
        "fig4",
        format_series(
            f"Figure 4: # of (Di,Dj) pairs per p[i,j] range "
            f"({histogram.total_pairs} pairs, Tw=5s, 30-day trace)",
            centers,
            list(histogram.counts),
            x_label="p[i,j]",
            y_label="pairs",
            y_format="{:.0f}",
        ),
    )

    counts = histogram.counts
    assert histogram.total_pairs > 100

    # Rightmost bin (embedding dependencies, p ~ 1) is a local peak.
    assert counts[-1] > counts[-2]

    # A peak exists near 1/2 and/or 1/3 (traversal anchors): the bin
    # containing 1/k exceeds its upper neighbour for some k in 2..4.
    def bin_of(p):
        return min(int(p * N_BINS), N_BINS - 1)

    traversal_peak = any(
        counts[bin_of(1.0 / k)] > counts[bin_of(1.0 / k) + 1] for k in (2, 3, 4)
    )
    assert traversal_peak, f"no 1/k peak: {counts}"
