"""E2 (section 3.4) — the effect of MaxSize.

Documents larger than MaxSize are never speculated.  The paper finds an
*optimal finite* MaxSize per extra-bandwidth budget: ~15 KB when only 3%
extra traffic is tolerable, ~29 KB at 10%.  This bench sweeps
(MaxSize × T_p), interpolates each MaxSize's gain curve at fixed traffic
budgets, and reports the best MaxSize per budget.
"""

import math

from _harness import emit
from conftest import THRESHOLD_GRID
from repro.core import (
    evaluate_thresholds,
    format_table,
    interpolate_at_traffic,
)
from repro.speculation import ThresholdPolicy

MAX_SIZES = [4_000.0, 15_000.0, 30_000.0, 60_000.0, math.inf]
TRAFFIC_BUDGETS = [0.03, 0.10]


def test_e2_maxsize(benchmark, paper_experiment):
    curves = {}

    def sweep():
        for max_size in MAX_SIZES:
            curves[max_size] = evaluate_thresholds(
                paper_experiment,
                THRESHOLD_GRID,
                policy_factory=lambda tp, ms=max_size: ThresholdPolicy(
                    threshold=tp, max_size=ms
                ),
            )
        return curves

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    best = {}
    for budget in TRAFFIC_BUDGETS:
        for max_size in MAX_SIZES:
            ratios = interpolate_at_traffic(curves[max_size], budget)
            label = "inf" if math.isinf(max_size) else f"{max_size / 1000:.0f} KB"
            rows.append(
                [
                    f"{budget:.0%}",
                    label,
                    f"{ratios.server_load_reduction:.1%}",
                    f"{ratios.service_time_reduction:.1%}",
                ]
            )
            key = (budget, max_size)
            best.setdefault(budget, (max_size, ratios.server_load_reduction))
            if ratios.server_load_reduction > best[budget][1]:
                best[budget] = (max_size, ratios.server_load_reduction)
    emit(
        "e2",
        format_table(
            ["traffic budget", "MaxSize", "load reduction", "time reduction"],
            rows,
            title="E2: MaxSize sweep (paper: 15KB optimal at 3%, 29KB at 10%)",
        ),
    )
    winners = [
        [
            f"{budget:.0%}",
            "inf" if math.isinf(best[budget][0]) else f"{best[budget][0] / 1000:.0f} KB",
            f"{best[budget][1]:.1%}",
        ]
        for budget in TRAFFIC_BUDGETS
    ]
    emit("e2", format_table(["traffic budget", "best MaxSize", "load reduction"], winners))

    # Capping speculation size helps under a tight bandwidth budget:
    # some finite MaxSize does at least as well as no limit at 3%.
    tight = {
        ms: interpolate_at_traffic(curves[ms], 0.03).server_load_reduction
        for ms in MAX_SIZES
    }
    finite_best = max(v for ms, v in tight.items() if not math.isinf(ms))
    assert finite_best >= tight[math.inf] - 1e-9
    # A tiny cap cripples speculation relative to the best choice.
    assert tight[4_000.0] <= finite_best + 1e-9
    # Larger budgets admit larger optimal caps (weak monotonicity).
    assert best[0.10][0] >= best[0.03][0] or math.isinf(best[0.03][0])
