"""R2 — what fault injection costs the live runtime.

Runs the ``repro chaos`` smoke scenario (proxy crash + restart + 2 %
frame drops) and compares its faulted arms against the clean arms the
same run measured: virtual seconds (how much longer the protocols
needed to deliver the same bytes through retries and backoff), retry
volume, and duplicate service.  The resilience contract — the four
paper ratios within tolerance of the fault-free run — is asserted, so
this bench doubles as a regression guard on the chaos gate itself.
"""

import time

from _harness import emit, once

from repro.core import format_table
from repro.runtime import execute_chaos_smoke

TOLERANCE = 0.05


def _drill():
    started = time.perf_counter()
    report = execute_chaos_smoke(0, tolerance=TOLERANCE)
    wall = time.perf_counter() - started
    return report, wall


def _counters(snapshot):
    return snapshot.get("counters", {})


def test_r2_chaos_overhead(benchmark):
    report, wall = once(benchmark, _drill)

    clean = _counters(report.clean.speculative)
    faulted = _counters(report.faulted.speculative)
    assert faulted["network.frames_dropped"] > 0
    assert faulted["retries"] > 0
    assert faulted["run.virtual_seconds"] >= clean["run.virtual_seconds"]
    assert report.max_ratio_divergence() <= TOLERANCE

    duplicates = sum(
        value
        for name, value in faulted.items()
        if name.endswith(".duplicate_requests")
    )
    rows = [
        (
            arm,
            f"{counters['run.virtual_seconds']:.2f}",
            f"{counters.get('retries', 0):,.0f}",
            f"{counters.get('network.frames_dropped', 0):,.0f}",
        )
        for arm, counters in (
            ("clean", clean),
            ("faulted", faulted),
        )
    ]
    emit(
        "r2",
        format_table(
            ["arm", "virtual s", "retries", "frames dropped"],
            rows,
            title=(
                "R2: chaos overhead, speculative arm "
                f"(divergence {report.max_ratio_divergence():.2%}, "
                f"{duplicates:,.0f} duplicate serves, "
                f"{wall:.1f}s wall for all four arms)"
            ),
        ),
    )
