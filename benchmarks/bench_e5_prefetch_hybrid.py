"""E5 (section 3.4) — server-assisted prefetching and the hybrid protocol.

Three ways to use the same dependency knowledge:

* **speculation** — the server pushes likely documents (no extra server
  requests; bandwidth risk on the server's side),
* **server-assisted prefetch** — the server only attaches hints; the
  client pulls what it wants (each prefetch is a server request),
* **hybrid** — push near-certain embeddings, hint the rest.

The paper argues prefetching complements speculation and suggests the
hybrid split.  The structural difference to check: prefetching pays for
its hits with server requests, speculation does not.
"""

from _harness import emit
from repro.core import format_table
from repro.speculation import ClientPrefetcher, HybridProtocol, ThresholdPolicy

LEVEL = 0.25  # shared aggressiveness for all three protocols


def test_e5_prefetch_and_hybrid(benchmark, paper_experiment):
    results = {}

    def sweep():
        speculation, spec_run = paper_experiment.evaluate(
            ThresholdPolicy(threshold=LEVEL)
        )
        results["speculation"] = (speculation, spec_run)

        prefetch_ratios, prefetch_run = paper_experiment.evaluate(
            None, prefetcher=ClientPrefetcher(threshold=LEVEL)
        )
        results["prefetch"] = (prefetch_ratios, prefetch_run)

        hybrid = HybridProtocol.with_thresholds(prefetch_threshold=LEVEL)
        hybrid_ratios, hybrid_run = paper_experiment.evaluate(
            hybrid.policy, prefetcher=hybrid.prefetcher
        )
        results["hybrid"] = (hybrid_ratios, hybrid_run)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{ratios.traffic_increase:+.1%}",
            f"{ratios.server_load_reduction:+.1%}",
            f"{ratios.service_time_reduction:.1%}",
            f"{ratios.miss_rate_reduction:.1%}",
            run.prefetch_requests,
        ]
        for name, (ratios, run) in results.items()
    ]
    emit(
        "e5",
        format_table(
            ["protocol", "traffic", "load red.", "time red.", "miss red.", "prefetches"],
            rows,
            title="E5: speculation vs server-assisted prefetch vs hybrid",
        ),
    )

    speculation, spec_run = results["speculation"]
    prefetch, prefetch_run = results["prefetch"]
    hybrid, hybrid_run = results["hybrid"]

    # Prefetching pays with server requests; speculation does not.
    assert prefetch_run.prefetch_requests > 0
    assert spec_run.prefetch_requests == 0
    assert (
        prefetch.server_load_ratio > speculation.server_load_ratio
    ), "prefetch must cost more server load than speculation"

    # All three improve service time and miss rate over the baseline.
    for ratios, __ in results.values():
        assert ratios.service_time_reduction > 0.0
        assert ratios.miss_rate_reduction > 0.0

    # The hybrid's server load sits at or below the pure-prefetch level
    # (its embedding pushes replace some prefetch round trips).
    assert hybrid.server_load_ratio <= prefetch.server_load_ratio + 0.02
