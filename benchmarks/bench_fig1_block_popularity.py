"""Figure 1 — popularity of 256 KB data blocks and bandwidth saved.

The paper sorts a server's documents by decreasing remote popularity,
groups them into 256 KB blocks, and plots (a) each block's request
frequency and (b) the cumulative server bandwidth saved if the most
popular blocks are serviced at an earlier stage.  Headline numbers:
the top 0.5% of blocks carry 69% of requests; the top 10% carry 91%.
"""

import numpy as np

from _harness import emit, once
from repro.core import format_series, format_table
from repro.popularity import analyze_blocks


def test_fig1_block_popularity(benchmark, paper_trace):
    analysis = once(benchmark, analyze_blocks, paper_trace)

    blocks = analysis.blocks
    head = blocks[:15]
    emit(
        "fig1",
        format_series(
            "Figure 1a: request share of 256KB blocks (most popular first)",
            [b.index for b in head],
            [b.request_fraction for b in head],
            x_label="block rank",
            y_label="request share",
        ),
    )
    top_counts = min(len(blocks), 20)
    emit(
        "fig1",
        format_series(
            "Figure 1b: bandwidth saved vs blocks serviced at the edge",
            list(range(1, top_counts + 1)),
            list(analysis.bandwidth_saved[:top_counts]),
            x_label="blocks",
            y_label="bandwidth saved",
        ),
    )
    emit(
        "fig1",
        format_table(
            ["statistic", "paper", "measured"],
            [
                ["top block request share", "0.69", f"{analysis.top_block_request_share:.2f}"],
                [
                    "top 10% blocks request share",
                    "0.91",
                    f"{analysis.share_of_top_fraction(0.10):.2f}",
                ],
                ["number of blocks", "~146 (36.5MB/256KB)", len(blocks)],
            ],
        ),
    )

    # Shape assertions: heavy concentration, concave saved-bandwidth curve.
    assert analysis.top_block_request_share > 0.25
    assert analysis.share_of_top_fraction(0.10) > 0.80
    saved = analysis.bandwidth_saved
    assert np.all(np.diff(saved) >= -1e-12)
    increments = np.diff(np.concatenate([[0.0], saved]))
    assert increments[0] == max(increments)
