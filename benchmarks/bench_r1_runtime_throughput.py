"""R1 — live runtime throughput on the in-memory transport.

Drives the full live system (origin + regional proxies + asyncio load
generator, see ``repro.runtime``) through :func:`execute_loadtest` at
three admission-control levels and reports wall-clock replay throughput
(requests/second) alongside the virtual-time request latency p50/p99.

Speculation/dissemination *decisions* must not depend on how many
requests are in flight — only latencies may shift — so the paper's
ratios are asserted identical across concurrency levels.
"""

import time

from _harness import emit, once

from repro.core import format_table
from repro.runtime import LiveSettings, execute_loadtest, smoke_workload

CONCURRENCY_LEVELS = (8, 32, 128)


def _sweep():
    rows = []
    for concurrency in CONCURRENCY_LEVELS:
        # perf_counter is duration-only (sanctioned by D004): the
        # throughput figure is wall time spent replaying virtual time.
        started = time.perf_counter()
        report = execute_loadtest(
            smoke_workload(0),
            LiveSettings(seed=0, concurrency=concurrency),
        )
        elapsed = time.perf_counter() - started
        requests = (
            report.speculative["counters"]["accesses"]
            + report.baseline["counters"]["accesses"]
        )
        latency = report.speculative["histograms"]["request_latency"]
        rows.append(
            {
                "concurrency": concurrency,
                "req_per_sec": requests / elapsed if elapsed > 0 else 0.0,
                "p50_ms": latency["p50"] * 1000.0,
                "p99_ms": latency["p99"] * 1000.0,
                "ratios": report.ratios,
            }
        )
    return rows


def test_r1_runtime_throughput(benchmark):
    rows = once(benchmark, _sweep)

    reference = rows[0]["ratios"]
    for row in rows[1:]:
        assert row["ratios"].bandwidth_ratio == reference.bandwidth_ratio
        assert row["ratios"].server_load_ratio == reference.server_load_ratio
    for row in rows:
        assert row["req_per_sec"] > 0
        assert row["p99_ms"] >= row["p50_ms"]

    emit(
        "r1",
        format_table(
            ["concurrency", "req/s (wall)", "p50 ms (virtual)", "p99 ms (virtual)"],
            [
                (
                    row["concurrency"],
                    f"{row['req_per_sec']:,.0f}",
                    f"{row['p50_ms']:.2f}",
                    f"{row['p99_ms']:.2f}",
                )
                for row in rows
            ],
            title=(
                "R1: live runtime throughput (smoke workload, "
                f"ratios {reference.format()})"
            ),
        ),
    )
