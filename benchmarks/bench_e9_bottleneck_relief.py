"""E9 (section 2.3 text) — the proxy-bottleneck question and its remedies.

"If 96% of all remote accesses to 100 servers ... are now to be served
by one proxy, isn't that proxy going to become a performance
bottleneck?  The answer is yes, unless the process of disseminating
popular information continues for another level ... If that is not
possible, then another solution would be for the proxy to dynamically
adjust the level of shielding."

This bench quantifies both remedies with the paper's own numbers
(λ = 6.247×10⁻⁷, 100 servers, 500 MB proxy):

* an extra dissemination level divides the absorbed traffic;
* dynamic shielding bounds the proxy's load through an overload spike.

It also connects speculation to the same story through the M/M/1 lens:
a 30% server-load reduction is worth more response time the hotter the
server runs.
"""

from _harness import emit
from repro.core import format_table
from repro.dissemination import (
    DynamicShield,
    HierarchicalShielding,
    ProxyLevel,
)
from repro.popularity.expmodel import PAPER_LAMBDA
from repro.speculation import MM1Server, SpeculationRatios, latency_impact

N_SERVERS = 100
OFFERED = 1_000_000.0


def test_e9_bottleneck_relief(benchmark):
    def run_all():
        single = HierarchicalShielding(
            [ProxyLevel(1, 500e6, N_SERVERS)],
            lam=PAPER_LAMBDA,
            n_home_servers=N_SERVERS,
        )
        layered = HierarchicalShielding(
            [
                ProxyLevel(10, 100e6, N_SERVERS),
                ProxyLevel(1, 500e6, N_SERVERS),
            ],
            lam=PAPER_LAMBDA,
            n_home_servers=N_SERVERS,
        )
        shield = DynamicShield(
            n_servers=N_SERVERS,
            lam=PAPER_LAMBDA,
            max_budget=500e6,
            capacity=600_000.0,
        )
        snapshots = shield.run([400_000.0, 1_200_000.0, 1_800_000.0, 600_000.0])
        return single, layered, snapshots

    single, layered, snapshots = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = [
        ["single 500MB proxy", f"{single.peak_node_load(OFFERED):,.0f}"],
        ["(+) 10 outer 100MB proxies", f"{layered.peak_node_load(OFFERED):,.0f}"],
        ["home servers, no dissemination", f"{OFFERED / N_SERVERS:,.0f}"],
    ]
    emit(
        "e9",
        format_table(
            ["configuration", "peak per-machine load"],
            rows,
            title="E9a: 'disseminate another level' relieves the bottleneck",
        ),
    )

    shield_rows = [
        [
            s.period,
            f"{s.offered_requests:,.0f}",
            f"{s.budget / 1e6:.0f} MB",
            f"{s.proxy_load:,.0f}",
        ]
        for s in snapshots
    ]
    emit(
        "e9",
        format_table(
            ["period", "offered", "budget", "proxy load"],
            shield_rows,
            title="E9b: dynamic shielding through an overload spike",
        ),
    )

    # The extra level strictly reduces the peak machine load.
    assert layered.peak_node_load(OFFERED) < single.peak_node_load(OFFERED)
    # Dynamic shielding reacts: after the spike periods, the budget has
    # been cut and the proxy's load falls back under capacity.
    assert snapshots[-1].budget < 500e6
    assert snapshots[-1].proxy_load < 600_000.0
    # The single proxy at 500 MB indeed absorbs ~96% (paper's number).
    absorbed = single.distribute(OFFERED)[0].absorbed_fraction
    assert abs(absorbed - 0.956) < 0.01

    # Queueing coda: a 30% load reduction at 90% utilization buys >2x
    # response time; at 30% utilization it buys much less.
    server = MM1Server(capacity=100.0)
    ratios = SpeculationRatios(
        bandwidth_ratio=1.05,
        server_load_ratio=0.70,
        service_time_ratio=0.77,
        miss_rate_ratio=0.82,
    )
    hot = latency_impact(server, ratios, arrival_rate=90.0)
    cool = latency_impact(server, ratios, arrival_rate=30.0)
    emit(
        "e9",
        format_table(
            ["utilization", "speedup from a 30% load cut"],
            [
                ["90%", f"{hot.speedup:.2f}x"],
                ["30%", f"{cool.speedup:.2f}x"],
            ],
            title="E9c: M/M/1 view — load cuts matter most on hot servers",
        ),
    )
    assert hot.speedup > 2.0
    assert cool.speedup < hot.speedup
