"""Shared fixtures for the benchmark harness.

The heavy artifacts — the paper-scale calibrated trace, the prepared
speculation experiment, and the Figure-5 threshold sweep — are built
once per session and shared across benchmarks, exactly as the paper
reuses one trace across its experiments.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.config import BASELINE
from repro.core import Experiment, evaluate_thresholds
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

#: The benches time their heavy sections through pytest-benchmark's
#: ``benchmark`` fixture, which is an optional dev dependency.  Without
#: it, pytest would fail every bench with a bare "fixture 'benchmark'
#: not found"; this stand-in turns that into an actionable skip.
if importlib.util.find_spec("pytest_benchmark") is None:

    @pytest.fixture
    def benchmark():
        pytest.skip(
            "pytest-benchmark is not installed; "
            "install the 'dev' extra (pip install -e .[dev]) to run benchmarks"
        )

#: The T_p grid swept for Figures 5/6 and the headline numbers.
THRESHOLD_GRID = [0.95, 0.75, 0.5, 0.35, 0.25, 0.2, 0.15, 0.1, 0.08, 0.05]


@pytest.fixture(scope="session")
def paper_generator():
    """The calibrated paper-scale workload generator."""
    return SyntheticTraceGenerator(GeneratorConfig.paper_scale(seed=1))


@pytest.fixture(scope="session")
def paper_trace(paper_generator):
    """The ~200k-access, 90-day synthetic stand-in for the BU trace."""
    return paper_generator.generate()


@pytest.fixture(scope="session")
def paper_experiment(paper_trace):
    """Baseline-parameter experiment: 60 days of history, 30 replayed."""
    return Experiment(paper_trace, BASELINE, train_days=60.0)


@pytest.fixture(scope="session")
def fig5_sweep(paper_experiment):
    """The Figure-5 sweep, shared by fig5 / fig6 / headline benches."""
    return evaluate_thresholds(paper_experiment, THRESHOLD_GRID)


@pytest.fixture(scope="session")
def medium_generator():
    """A reduced-scale generator with slow *site evolution* for the
    rolling-model benches.

    The paper's update-cycle findings require a drifting dependency
    structure (its real trace drifted; a stationary synthetic one makes
    the update cycle irrelevant), so this workload rewires ~4% of pages'
    links per day and introduces 35% of its pages as new content during
    the trace.
    """
    from repro.workload import preset

    return SyntheticTraceGenerator(preset("drifting", 5))


@pytest.fixture(scope="session")
def medium_trace(medium_generator):
    return medium_generator.generate()
