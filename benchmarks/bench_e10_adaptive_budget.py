"""E10 (extension) — self-tuning speculation under a bandwidth budget.

The paper expresses every result as "X% extra bandwidth buys Y" but
leaves finding the threshold for a budget to offline sweeps.  The
:class:`~repro.speculation.adaptive.AdaptiveBudgetPolicy` closes that
loop online, steering its threshold on the expected-waste signal
``(1 − p*)·size``.  This bench checks the controller against the
fixed-threshold oracle (the interpolated Figure-5 sweep): achieved
traffic must track the budget monotonically and the gains must stay
near what the oracle buys at the same achieved traffic.
"""

from _harness import emit
from repro.core import format_table, interpolate_at_traffic
from repro.speculation import AdaptiveBudgetPolicy

BUDGETS = [0.03, 0.10, 0.30]


def test_e10_adaptive_budget(benchmark, paper_experiment, fig5_sweep):
    results = {}

    def run_all():
        for budget in BUDGETS:
            policy = AdaptiveBudgetPolicy(
                target_traffic_increase=budget,
                warmup_bytes=50_000,
                window_bytes=500_000,
                adjust_rate=0.05,
            )
            ratios, __ = paper_experiment.evaluate(policy)
            results[budget] = (ratios, policy.threshold)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for budget, (ratios, final_threshold) in results.items():
        oracle = interpolate_at_traffic(fig5_sweep, ratios.traffic_increase)
        rows.append(
            [
                f"{budget:.0%}",
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{oracle.server_load_reduction:.1%}",
                f"{final_threshold:.2f}",
            ]
        )
    emit(
        "e10",
        format_table(
            [
                "budget",
                "achieved traffic",
                "load red. (adaptive)",
                "load red. (oracle @ same traffic)",
                "final T_p",
            ],
            rows,
            title="E10: self-tuning speculation vs the fixed-threshold oracle",
        ),
    )

    achieved = [results[b][0].traffic_increase for b in BUDGETS]
    # Achieved traffic tracks the budget monotonically.
    assert achieved == sorted(achieved)
    # Small budgets stay small (no runaway).
    assert achieved[0] < 0.10
    # The controller's gains stay within a few points of the oracle's
    # at the same achieved traffic level.
    for budget, (ratios, __) in results.items():
        oracle = interpolate_at_traffic(fig5_sweep, ratios.traffic_increase)
        assert (
            ratios.server_load_reduction
            >= oracle.server_load_reduction - 0.08
        )
        assert ratios.server_load_reduction > 0.15
