"""E8 (section 3.4, reference [5]) — client-initiated prefetching.

The paper's preliminary finding about per-user profiles:

    "client-initiated prefetching is extremely effective for access
    patterns that involve frequently-traversed documents, but not
    effective at all for access patterns that involve newly-traversed
    documents.  For such access patterns, only speculative service
    could improve performance."

This bench replays two workloads — a *returning-visitor* workload (few
clients, many sessions each, so users re-traverse their own paths) and
a *first-visit* workload (many clients, ~one session each) — under
pure client-side prefetching from user profiles vs server speculation.
"""

import dataclasses

import pytest

from _harness import emit
from repro.config import BASELINE
from repro.core import format_table
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
    UserProfilePrefetcher,
    compare,
    make_cache_factory,
)
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


def _workload(preset_name, seed):
    from repro.workload import preset

    return SyntheticTraceGenerator(preset(preset_name, seed)).generate()


def _evaluate(trace):
    """(speculation ratios, user-prefetch ratios, prefetch count)."""
    split = trace.start_time + 20 * 86_400.0
    model = DependencyModel.estimate(
        trace.window(trace.start_time, split), window=5.0
    )
    test = trace.window(split, trace.end_time + 1.0)
    # A 60-minute session cache isolates per-visit behaviour, so the
    # profile prefetcher (not the infinite cache) must do the work on
    # repeat visits.
    config = BASELINE.with_updates(session_timeout=3600.0)
    simulator = SpeculativeServiceSimulator(test, config, model=model)
    factory = make_cache_factory(3600.0)
    baseline = simulator.run(None, cache_factory=factory)

    speculation = simulator.run(
        ThresholdPolicy(threshold=0.25), cache_factory=factory
    )
    prefetcher = UserProfilePrefetcher(threshold=0.4, min_support=2)
    # Let the prefetcher learn the training period first.
    for request in trace.window(trace.start_time, split):
        prefetcher.observe(request.client, request.doc_id, request.timestamp)
    profile_run = simulator.run(
        None, cache_factory=factory, prefetcher=prefetcher
    )
    return (
        compare(speculation.metrics, baseline.metrics),
        compare(profile_run.metrics, baseline.metrics),
        profile_run.prefetch_requests,
    )


def test_e8_user_profile_prefetching(benchmark):
    results = {}

    def run_all():
        # Returning visitors: 40 clients, ~45 sessions each.
        results["frequently-traversed"] = _evaluate(
            _workload("returning-visitors", 41)
        )
        # First visits: 1800 clients, ~1 session each.
        results["newly-traversed"] = _evaluate(_workload("first-visits", 42))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for pattern, (speculation, profile, prefetches) in results.items():
        rows.append(
            [
                pattern,
                "server speculation",
                f"{speculation.miss_rate_reduction:.1%}",
                f"{speculation.service_time_reduction:.1%}",
                "-",
            ]
        )
        rows.append(
            [
                pattern,
                "user-profile prefetch",
                f"{profile.miss_rate_reduction:.1%}",
                f"{profile.service_time_reduction:.1%}",
                prefetches,
            ]
        )
    emit(
        "e8",
        format_table(
            ["access pattern", "protocol", "miss red.", "time red.", "prefetches"],
            rows,
            title=(
                "E8: client-initiated prefetching from user profiles "
                "(paper: great on repeat traversals, useless on new ones)"
            ),
        ),
    )

    spec_freq, prof_freq, prefetches_freq = results["frequently-traversed"]
    spec_new, prof_new, prefetches_new = results["newly-traversed"]

    # Repeat traversals: the user profile meaningfully cuts misses.
    assert prof_freq.miss_rate_reduction > 0.05
    assert prefetches_freq > 100
    # Newly-traversed patterns: the profile prefetcher is powerless...
    assert prof_new.miss_rate_reduction < prof_freq.miss_rate_reduction / 2
    # ...while server speculation still works there.
    assert spec_new.miss_rate_reduction > 0.10
