"""E11 (extension) — compact cache digests for cooperative clients.

Section 3.4's cooperative clients piggyback "a list of document IDs";
a literal list costs ~24 bytes per cached document on *every* request.
A Bloom filter shrinks the digest to ~1-2 bytes per document at a
false-positive cost: the server occasionally believes the client caches
a document it does not and skips a useful push.

This bench quantifies the trade-off: cooperative gains with exact
digests, Bloom digests at 1% and 30% false positives, and the
per-request digest overhead each encoding implies.
"""

from _harness import emit
from repro.core import format_table
from repro.speculation import ThresholdPolicy, digest_size_bytes

POLICY = ThresholdPolicy(threshold=0.25)

MODES = [
    ("non-cooperative", dict()),
    ("exact digest", dict(cooperative=True)),
    ("bloom digest (1% fp)", dict(cooperative=True, digest_fp_rate=0.01)),
    ("bloom digest (30% fp)", dict(cooperative=True, digest_fp_rate=0.3)),
]


def test_e11_bloom_digests(benchmark, paper_experiment):
    results = {}

    def run_all():
        for label, kwargs in MODES:
            results[label] = paper_experiment.evaluate(POLICY, **kwargs)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Approximate per-request digest overhead at the mean client cache
    # size observed in the baseline (distinct docs per client).
    baseline = paper_experiment.baseline()
    mean_cache_docs = baseline.metrics.server_requests / max(
        len(paper_experiment.test.clients()), 1
    )

    def overhead(label):
        if label == "non-cooperative":
            return 0.0
        if label == "exact digest":
            return digest_size_bytes(int(mean_cache_docs))
        fp = 0.01 if "1%" in label else 0.3
        return digest_size_bytes(int(mean_cache_docs), fp_rate=fp)

    rows = []
    for label, (ratios, run) in results.items():
        rows.append(
            [
                label,
                f"{ratios.traffic_increase:+.1%}",
                f"{ratios.server_load_reduction:.1%}",
                f"{run.metrics.wasted_bytes / max(run.metrics.speculated_bytes, 1):.1%}",
                f"{overhead(label):.0f} B",
            ]
        )
    emit(
        "e11",
        format_table(
            [
                "digest encoding",
                "traffic",
                "load red.",
                "pushed bytes wasted",
                "digest/request",
            ],
            rows,
            title="E11: cooperative digests — exact list vs Bloom filter",
        ),
    )

    plain = results["non-cooperative"][0]
    exact = results["exact digest"][0]
    tight = results["bloom digest (1% fp)"][0]
    lossy = results["bloom digest (30% fp)"][0]

    # Exact digests give the best bandwidth; a tight Bloom tracks them.
    assert exact.bandwidth_ratio <= plain.bandwidth_ratio + 1e-9
    assert tight.bandwidth_ratio <= plain.bandwidth_ratio + 1e-9
    assert (
        tight.server_load_reduction >= exact.server_load_reduction - 0.03
    )
    # An aggressive false-positive rate visibly costs gains.
    assert lossy.server_load_reduction <= tight.server_load_reduction + 1e-9
    # And the Bloom digest is an order of magnitude smaller.
    assert overhead("bloom digest (1% fp)") < overhead("exact digest") / 5
