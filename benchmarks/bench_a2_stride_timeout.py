"""Ablation A2 — StrideTimeout's control over dependency type.

Section 3.2: "Setting StrideTimeout to a very small value restricts the
definition of document dependency to embedding dependencies, whereas
setting it to a larger value loosens the definition to include
traversal dependencies as well."  This ablation estimates P under
several StrideTimeout values and shows the pair population and the
embedding share move exactly that way.
"""

from _harness import emit
from repro.config import SECONDS_PER_DAY
from repro.core import format_table
from repro.speculation import DependencyModel

TIMEOUTS = [0.5, 5.0, 30.0, 120.0]


def _pair_stats(model: DependencyModel) -> tuple[int, int]:
    """(total pairs, near-certain pairs with p >= 0.9)."""
    total = 0
    certain = 0
    occurrences = model.occurrence_counts
    for source, row in model.pair_counts.items():
        base = occurrences.get(source, 0.0)
        if base <= 0:
            continue
        for count in row.values():
            total += 1
            if count / base >= 0.9:
                certain += 1
    return total, certain


def test_a2_stride_timeout(benchmark, paper_trace):
    month = paper_trace.window(
        paper_trace.start_time, paper_trace.start_time + 30 * SECONDS_PER_DAY
    )
    models = {}

    def estimate_all():
        for timeout in TIMEOUTS:
            models[timeout] = DependencyModel.estimate(
                month, window=timeout, stride_timeout=timeout
            )
        return models

    benchmark.pedantic(estimate_all, rounds=1, iterations=1)

    rows = []
    stats = {}
    for timeout in TIMEOUTS:
        total, certain = _pair_stats(models[timeout])
        stats[timeout] = (total, certain)
        rows.append(
            [
                f"{timeout:g}s",
                total,
                certain,
                f"{certain / total:.1%}" if total else "-",
            ]
        )
    emit(
        "a2",
        format_table(
            ["StrideTimeout", "pairs", "near-certain pairs (p>=0.9)", "certain share"],
            rows,
            title=(
                "A2: StrideTimeout restricts (small) or loosens (large) "
                "the dependency definition"
            ),
        ),
    )

    totals = [stats[t][0] for t in TIMEOUTS]
    # More time -> more (traversal) pairs, monotonically.
    assert all(b >= a for a, b in zip(totals, totals[1:]))
    # The tightest window is dominated by embeddings (inline objects
    # arrive within fractions of a second)...
    tight_share = stats[TIMEOUTS[0]][1] / max(stats[TIMEOUTS[0]][0], 1)
    loose_share = stats[TIMEOUTS[-1]][1] / max(stats[TIMEOUTS[-1]][0], 1)
    # ...so its certain share exceeds the loose window's.
    assert tight_share > loose_share
