"""Output helpers for the benchmark harness.

pytest captures stdout, so each benchmark *emits* its reproduction
tables through :func:`emit`: the text goes to the real stdout (visible
under plain ``pytest benchmarks/ --benchmark-only``) and is appended to
``benchmarks/out/<experiment>.txt`` for later inspection.
"""

from __future__ import annotations

import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

_fresh_this_session: set[str] = set()


def emit(experiment: str, text: str) -> None:
    """Print a reproduction table and persist it under ``benchmarks/out``.

    The first emit of an experiment in a session truncates its output
    file, so re-running the harness replaces stale results instead of
    appending to them.

    Args:
        experiment: Experiment id (e.g. ``"fig5"``); names the output file.
        text: The rendered table/series.
    """
    banner = f"\n===== {experiment} =====\n{text}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    mode = "a" if experiment in _fresh_this_session else "w"
    _fresh_this_session.add(experiment)
    with (OUT_DIR / f"{experiment}.txt").open(mode) as handle:
        handle.write(banner)


def once(benchmark, function, *args, **kwargs):
    """Run a heavy function exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
