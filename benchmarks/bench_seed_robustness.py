"""Seed robustness — the reproduction's conclusions are not one lucky draw.

Re-runs the headline speculation experiment on three independently
seeded paper-scale workloads and checks that the key numbers (the
traffic/load trade-off at the baseline threshold, the embedding-regime
traffic cost) agree across seeds within tight bands.

The per-seed pipeline is a pure function of the seed, so the sweep also
doubles as the byte-identity check for the parallel sweep executor: the
same seeds sharded across a 4-worker pool must reproduce the serial
results exactly.
"""

from _harness import emit
from repro.config import BASELINE
from repro.core import Experiment, format_table
from repro.perf import parallel_map
from repro.speculation import ThresholdPolicy
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

SEEDS = [1, 2, 3]


def _run_seed(seed):
    trace = SyntheticTraceGenerator(
        GeneratorConfig.paper_scale(seed=seed)
    ).generate()
    experiment = Experiment(trace, BASELINE, train_days=60.0)
    moderate, __ = experiment.evaluate(ThresholdPolicy(threshold=0.25))
    embedding, __ = experiment.evaluate(ThresholdPolicy(threshold=0.95))
    return len(trace), moderate, embedding


def test_seed_robustness(benchmark):
    def run_all():
        return parallel_map(_run_seed, SEEDS, workers=1)

    serial = benchmark.pedantic(run_all, rounds=1, iterations=1)
    results = dict(zip(SEEDS, serial))

    # Sharding the seeds across a pool must not change a single bit of
    # the output: ordered merge + a pure per-seed pipeline.
    assert parallel_map(_run_seed, SEEDS, workers=4) == serial

    rows = [
        [
            seed,
            f"{n_requests:,}",
            f"{moderate.traffic_increase:+.1%}",
            f"{moderate.server_load_reduction:.1%}",
            f"{embedding.traffic_increase:+.1%}",
        ]
        for seed, (n_requests, moderate, embedding) in results.items()
    ]
    emit(
        "robustness",
        format_table(
            [
                "seed",
                "requests",
                "traffic @ T_p=0.25",
                "load red. @ T_p=0.25",
                "traffic @ T_p=0.95",
            ],
            rows,
            title="seed robustness of the headline speculation numbers",
        ),
    )

    loads = [moderate.server_load_reduction for __, moderate, ___ in results.values()]
    traffics = [moderate.traffic_increase for __, moderate, ___ in results.values()]
    # The load reduction agrees across seeds within a few points...
    assert max(loads) - min(loads) < 0.08
    # ...the traffic cost stays in the conservative band...
    assert all(t < 0.15 for t in traffics)
    # ...and the embedding regime is near-free everywhere.
    for __, ___, embedding in results.values():
        assert embedding.traffic_increase < 0.02
