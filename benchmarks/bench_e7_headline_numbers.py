"""E7 (section 3.3) — the paper's headline speculation numbers.

"Using only 5% extra bandwidth results in a whopping 30% reduction in
server load, a 23% reduction in service time, and an 18% reduction in
client miss-rate.  Using 10% extra bandwidth results in a reduction of
35%, 27%, and 23% ..." — with strongly diminishing returns beyond +50%.

This bench interpolates the Figure-5 sweep at the paper's quoted traffic
levels and prints paper-vs-measured side by side.  Absolute numbers are
workload-dependent; the assertions check the *shape*: real double-digit
gains at +5-10%, ordering load > time > miss preserved directionally,
and tiny marginal value from +50% to +100%.
"""

from _harness import emit, once
from repro.core import format_table, interpolate_at_traffic

PAPER_NUMBERS = {
    0.05: (0.30, 0.23, 0.18),
    0.10: (0.35, 0.27, 0.23),
    0.50: (0.45, 0.40, 0.35),
    1.00: (0.52, 0.46, 0.37),
}


def test_e7_headline_numbers(benchmark, fig5_sweep):
    measured = once(
        benchmark,
        lambda: {
            level: interpolate_at_traffic(fig5_sweep, level)
            for level in PAPER_NUMBERS
        },
    )

    rows = []
    for level, (paper_load, paper_time, paper_miss) in PAPER_NUMBERS.items():
        ratios = measured[level]
        rows.append(
            [
                f"+{level:.0%}",
                f"{paper_load:.0%} / {ratios.server_load_reduction:.1%}",
                f"{paper_time:.0%} / {ratios.service_time_reduction:.1%}",
                f"{paper_miss:.0%} / {ratios.miss_rate_reduction:.1%}",
            ]
        )
    emit(
        "e7",
        format_table(
            [
                "extra traffic",
                "load red. (paper/ours)",
                "time red. (paper/ours)",
                "miss red. (paper/ours)",
            ],
            rows,
            title="E7: headline numbers, paper vs measured",
        ),
    )

    # Double-digit gains from small bandwidth budgets.
    assert measured[0.05].server_load_reduction > 0.10
    assert measured[0.10].server_load_reduction > 0.15

    # Diminishing returns: the step from +50% to +100% adds far less
    # than the first +10% bought (paper: +7/6/2 points only).
    first = measured[0.10].server_load_reduction
    marginal = (
        measured[1.00].server_load_reduction
        - measured[0.50].server_load_reduction
    )
    assert marginal < first

    # Gains monotone in traffic spent.
    levels = sorted(PAPER_NUMBERS)
    for a, b in zip(levels, levels[1:]):
        assert (
            measured[b].server_load_reduction
            >= measured[a].server_load_reduction - 1e-9
        )
