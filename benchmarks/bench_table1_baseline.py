"""Table 1 — the baseline parameter settings, and a baseline run.

Prints the paper's baseline parameter table verbatim from
:class:`repro.config.BaselineConfig` and validates that a baseline
(no-speculation) replay under those parameters behaves sanely.
"""

import math

from _harness import emit, once
from repro.config import BASELINE
from repro.core import format_table


def test_table1_baseline_parameters(benchmark, paper_experiment):
    emit(
        "table1",
        format_table(
            ["Parameter", "Base Value"],
            BASELINE.as_table_rows(),
            title="Table 1: baseline model parameters",
        ),
    )

    run = once(benchmark, paper_experiment.baseline)
    emit(
        "table1",
        format_table(
            ["baseline quantity", "value"],
            [
                ["client accesses", f"{run.accesses:,}"],
                ["server requests", f"{run.metrics.server_requests:,}"],
                ["client cache hit rate", f"{run.hit_rate:.1%}"],
                ["bytes sent", f"{run.metrics.bytes_sent / 1e6:.1f} MB"],
                ["byte miss rate", f"{run.metrics.miss_rate:.2f}"],
            ],
        ),
    )

    # Paper's exact baseline values.
    assert BASELINE.comm_cost == 1.0
    assert BASELINE.serv_cost == 10_000.0
    assert BASELINE.stride_timeout == 5.0
    assert math.isinf(BASELINE.session_timeout)
    assert math.isinf(BASELINE.max_size)
    assert BASELINE.history_length_days == 60.0
    assert BASELINE.update_cycle_days == 1.0

    # Baseline sanity: no speculation happened, caching works.
    assert run.metrics.speculated_documents == 0
    assert run.metrics.server_requests + run.cache_hits == run.accesses
    assert 0.0 < run.hit_rate < 1.0
