"""Ablation A5 — per-proxy (geographic) vs shared dissemination.

Figure 3's setup pushes the *same* data to every proxy; the paper's
footnote 5 notes that "better results are attainable if the
dissemination strategy takes advantage of the geographic locality of
reference" — pushing to each proxy the data its own subtree actually
requests.

Geographic locality must exist in the workload for the refinement to
matter, so this ablation runs on both the (globally-uniform-interest)
paper-scale trace and a variant where regions have their own interests
(``region_affinity``), under equal per-proxy storage budgets.
"""

import dataclasses

import pytest

from _harness import emit
from repro.core import format_table
from repro.dissemination import DisseminationSimulator
from repro.dissemination.simulator import (
    per_proxy_popular_docs,
    select_popular_bytes,
)
from repro.popularity import PopularityProfile
from repro.topology import build_clientele_tree, greedy_tree_placement
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

BUDGET_FRACTION = 0.04
N_PROXIES = 8


def _gap(trace, site_bytes, n_regions=16):
    tree = build_clientele_tree(trace, n_regions=n_regions, backbone_hops=2)
    simulator = DisseminationSimulator(trace, tree)
    profile = PopularityProfile.from_trace(trace.remote_only())
    demand: dict[str, float] = {}
    for request in trace.remote_only():
        demand[request.client] = demand.get(request.client, 0.0) + request.size
    proxies = greedy_tree_placement(tree, demand, N_PROXIES)
    budget = BUDGET_FRACTION * site_bytes
    shared = simulator.simulate(proxies, select_popular_bytes(profile, budget))
    specialized = simulator.simulate(
        proxies, per_proxy_popular_docs(trace, tree, proxies, budget)
    )
    return shared, specialized


def test_a5_per_proxy_dissemination(benchmark, paper_trace, paper_generator):
    from repro.workload import preset

    geo_generator = SyntheticTraceGenerator(preset("geographic", 8))

    results = {}

    def run_all():
        results["uniform interests"] = _gap(
            paper_trace, paper_generator.site.total_bytes()
        )
        geo_trace = geo_generator.generate()
        results["regional interests"] = _gap(
            geo_trace, geo_generator.site.total_bytes(), n_regions=8
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for workload, (shared, specialized) in results.items():
        rows.append(
            [
                workload,
                f"{shared.savings_fraction:.1%}",
                f"{specialized.savings_fraction:.1%}",
                f"{specialized.savings_fraction - shared.savings_fraction:+.1%}",
            ]
        )
    emit(
        "a5",
        format_table(
            ["workload", "shared data (Fig 3)", "geographic (footnote 5)", "gap"],
            rows,
            title=(
                "A5: same data everywhere vs per-subtree selection "
                f"({BUDGET_FRACTION:.0%} per-proxy budget, {N_PROXIES} proxies)"
            ),
        ),
    )

    for workload, (shared, specialized) in results.items():
        # The footnote-5 refinement never loses under equal budgets.
        assert specialized.savings_fraction >= shared.savings_fraction - 0.01
        assert 0.0 <= specialized.savings_fraction < 1.0
    # With geographic locality in the workload, the refinement clearly wins.
    geo_shared, geo_special = results["regional interests"]
    assert geo_special.savings_fraction > geo_shared.savings_fraction + 0.01
