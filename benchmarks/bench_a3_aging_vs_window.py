"""Ablation A3 — aging vs sliding-window re-estimation.

Section 3.4 envisions "an aging mechanism to phase out dependencies
exhibited in older traces, in favor of dependencies exhibited in more
recent traces".  This ablation compares, on the drifting workload, a
model kept fresh three ways:

* **all-history** — every pair ever seen, no forgetting;
* **sliding window** — the paper's D′-day window (30 days);
* **aging** — exponential decay of old counts (no hard cutoff).
"""

import pytest

from _harness import emit
from repro.config import BASELINE, SECONDS_PER_DAY
from repro.core import format_table
from repro.speculation import (
    AgingDependencyCounter,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
    compare,
)

POLICY = ThresholdPolicy(threshold=0.25)
REPLAY_DAYS = 20.0


def _mean_reduction(ratios):
    return (
        ratios.server_load_reduction
        + ratios.service_time_reduction
        + ratios.miss_rate_reduction
    ) / 3.0


def _aged_model(history, decay_per_day):
    counter = AgingDependencyCounter(
        decay_per_day=decay_per_day, window=BASELINE.stride_timeout
    )
    day = history.start_time
    while day < history.end_time:
        counter.observe(history.window(day, day + SECONDS_PER_DAY))
        day += SECONDS_PER_DAY
    return counter.snapshot()


def test_a3_aging_vs_window(benchmark, medium_trace):
    boundary = medium_trace.end_time - REPLAY_DAYS * SECONDS_PER_DAY
    history = medium_trace.window(medium_trace.start_time, boundary)
    replay = medium_trace.window(boundary, medium_trace.end_time + 1.0)

    from repro.speculation import DependencyModel

    results = {}

    def run_all():
        models = {
            "all-history": DependencyModel.estimate(
                history, window=BASELINE.stride_timeout
            ),
            "window (30d)": DependencyModel.estimate(
                history.window(boundary - 30 * SECONDS_PER_DAY, boundary),
                window=BASELINE.stride_timeout,
            ),
            "aging (0.9/day)": _aged_model(history, 0.9),
        }
        for label, model in models.items():
            simulator = SpeculativeServiceSimulator(replay, BASELINE, model=model)
            baseline = simulator.run(None)
            speculation = simulator.run(POLICY)
            results[label] = compare(speculation.metrics, baseline.metrics)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{ratios.traffic_increase:+.1%}",
            f"{_mean_reduction(ratios):.1%}",
        ]
        for label, ratios in results.items()
    ]
    emit(
        "a3",
        format_table(
            ["freshness mechanism", "traffic", "mean reduction"],
            rows,
            title="A3: aging vs sliding window vs all-history (drifting workload)",
        ),
    )

    all_history = _mean_reduction(results["all-history"])
    window = _mean_reduction(results["window (30d)"])
    aging = _mean_reduction(results["aging (0.9/day)"])
    # Forgetting mechanisms must not lose to never forgetting under drift.
    assert window >= all_history - 0.02
    assert aging >= all_history - 0.02
    # And everything still beats no speculation.
    for ratios in results.values():
        assert _mean_reduction(ratios) > 0.0
