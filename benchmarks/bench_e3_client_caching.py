"""E3 (section 3.4) — the effect of client caching.

SessionTimeout emulates the client cache: 0 = no cache, 60 minutes =
infinite single-session cache, infinity = infinite multi-session cache.
The paper's findings: speculation's gains survive with *no* long-term
client cache at all, and with an infinite cache the relative gains are
smaller (but still solid) than with a bounded cache.
"""

import math

from _harness import emit
from repro.core import format_table
from repro.speculation import ThresholdPolicy, make_cache_factory

POLICY = ThresholdPolicy(threshold=0.25)

CACHES = [
    ("no cache (SessionTimeout=0)", 0.0),
    ("single-session (60 min)", 3600.0),
    ("infinite multi-session", math.inf),
]


def test_e3_client_caching(benchmark, paper_experiment):
    results = {}

    def sweep():
        for label, timeout in CACHES:
            factory = make_cache_factory(timeout)
            ratios, run = paper_experiment.evaluate(
                POLICY, cache_factory=factory, cache_key=label
            )
            results[label] = (ratios, run)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{ratios.traffic_increase:+.1%}",
            f"{ratios.server_load_reduction:.1%}",
            f"{ratios.service_time_reduction:.1%}",
            f"{ratios.miss_rate_reduction:.1%}",
        ]
        for label, (ratios, __) in results.items()
    ]
    emit(
        "e3",
        format_table(
            ["client cache", "traffic", "load red.", "time red.", "miss red."],
            rows,
            title=(
                "E3: speculation gains under client caching models "
                "(paper: gains survive without a long-term cache; an "
                "infinite cache shrinks but does not erase them)"
            ),
        ),
    )

    no_cache = results["no cache (SessionTimeout=0)"][0]
    session = results["single-session (60 min)"][0]
    infinite = results["infinite multi-session"][0]

    # Gains survive without any *long-term* cache: a session-scoped
    # cache is enough to realize the bulk of the benefit.
    assert session.server_load_reduction > 0.10
    assert session.service_time_reduction > 0.10
    assert infinite.server_load_reduction > 0.10
    # With no cache at all there is nowhere to hold pushed documents:
    # speculation degenerates to pure traffic waste — the structural
    # reason the protocol presumes at least a session cache.
    assert no_cache.server_load_reduction == 0.0
    assert no_cache.traffic_increase > 0.0
    # The relative edge of speculation is no larger under the infinite
    # cache than under the bounded (session) cache.
    assert (
        infinite.server_load_reduction
        <= session.server_load_reduction + 0.05
    )
