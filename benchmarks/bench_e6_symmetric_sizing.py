"""E6 (section 2.3) — the symmetric-cluster sizing claims.

Equation 10 with the measured λ = 6.247×10⁻⁷ yields the paper's two
storage estimates:

* shielding 10 servers by 90% needs ~36 MB of proxy storage;
* a 500 MB proxy shields 100 servers from ~96% of remote bandwidth.

This bench recomputes both, cross-checks the closed form against the
general eq. 4-5 allocator, and prints a sizing table.
"""

from _harness import emit, once
from repro.core import format_table
from repro.dissemination import (
    ServerModel,
    exponential_allocation,
    symmetric_alpha,
    symmetric_storage_for_reduction,
)
from repro.popularity.expmodel import PAPER_LAMBDA


def test_e6_symmetric_sizing(benchmark):
    storage_10 = once(
        benchmark, symmetric_storage_for_reduction, 10, PAPER_LAMBDA, 0.90
    )
    alpha_100 = symmetric_alpha(100, PAPER_LAMBDA, 500e6)

    rows = [
        ["10 servers shielded by 90%", "36 MB", f"{storage_10 / 1e6:.1f} MB"],
        ["500 MB proxy, 100 servers", "96%", f"{alpha_100:.1%}"],
    ]
    emit(
        "e6",
        format_table(
            ["claim", "paper", "measured"],
            rows,
            title="E6: symmetric-cluster sizing (eq. 10, lambda = 6.247e-7)",
        ),
    )

    sizing = []
    for n_servers in (1, 10, 100):
        for reduction in (0.5, 0.9, 0.99):
            budget = symmetric_storage_for_reduction(
                n_servers, PAPER_LAMBDA, reduction
            )
            sizing.append(
                [n_servers, f"{reduction:.0%}", f"{budget / 1e6:.1f} MB"]
            )
    emit(
        "e6",
        format_table(
            ["servers", "target reduction", "proxy storage"],
            sizing,
            title="proxy sizing table (eq. 10)",
        ),
    )

    # The paper's two numeric claims.
    assert 34e6 < storage_10 < 38e6
    assert 0.95 < alpha_100 < 0.97

    # Closed form agrees with the general allocator on symmetric input.
    servers = [ServerModel(f"s{i}", 100.0, PAPER_LAMBDA) for i in range(10)]
    general = exponential_allocation(servers, storage_10)
    assert abs(general.alpha - 0.90) < 1e-9
    for share in general.allocations.values():
        assert abs(share - storage_10 / 10) < 1e-3
