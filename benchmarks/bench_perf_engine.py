"""Engine performance benchmarks (not paper figures).

Timed with multiple rounds so pytest-benchmark's statistics are
meaningful: trace generation throughput, dependency-model estimation,
and the simulator's replay rate.  These guard against performance
regressions in the core loops; the figure/table benches above them are
single-shot reproductions.
"""

import pytest

from repro.config import BASELINE
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
)
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

CONFIG = GeneratorConfig(
    seed=77, n_pages=120, n_clients=150, n_sessions=1500, duration_days=30
)


@pytest.fixture(scope="module")
def perf_trace():
    return SyntheticTraceGenerator(CONFIG).generate()


@pytest.fixture(scope="module")
def perf_model(perf_trace):
    return DependencyModel.estimate(perf_trace, window=5.0)


def test_perf_trace_generation(benchmark):
    def generate():
        return SyntheticTraceGenerator(CONFIG).generate()

    trace = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(trace) > 5_000


def test_perf_dependency_estimation(benchmark, perf_trace):
    model = benchmark.pedantic(
        DependencyModel.estimate,
        args=(perf_trace,),
        kwargs={"window": 5.0},
        rounds=3,
        iterations=1,
    )
    assert model.documents()


def test_perf_baseline_replay(benchmark, perf_trace, perf_model):
    simulator = SpeculativeServiceSimulator(perf_trace, BASELINE, model=perf_model)
    run = benchmark.pedantic(simulator.run, args=(None,), rounds=3, iterations=1)
    assert run.accesses == len(perf_trace)


def test_perf_speculative_replay(benchmark, perf_trace, perf_model):
    simulator = SpeculativeServiceSimulator(perf_trace, BASELINE, model=perf_model)
    policy = ThresholdPolicy(threshold=0.25)
    run = benchmark.pedantic(simulator.run, args=(policy,), rounds=3, iterations=1)
    assert run.metrics.speculated_documents > 0


def test_perf_closure_queries(benchmark, perf_model):
    documents = sorted(perf_model.occurrence_counts)[:200]

    def closure_pass():
        # Fresh model so memoization does not trivialize the timing.
        fresh = DependencyModel.from_counts(
            perf_model.pair_counts, perf_model.occurrence_counts
        )
        return sum(len(fresh.closure_row(doc)) for doc in documents)

    total = benchmark.pedantic(closure_pass, rounds=3, iterations=1)
    assert total >= 0
