"""Engine performance benchmarks (not paper figures).

Timed with multiple rounds so pytest-benchmark's statistics are
meaningful: trace generation throughput, dependency-model estimation,
and the simulator's replay rate — each in both the ``dict`` and
``sparse`` backends, so a run shows the vectorization win directly.
These guard against performance regressions in the core loops; the
figure/table benches above them are single-shot reproductions.

The workload is the same reference configuration ``repro bench`` times
and gates (see :data:`repro.perf.bench.SCALES`), so numbers here are
comparable with the committed ``BENCH_PERF.json`` trajectory.
"""

import pytest

from repro.config import BASELINE
from repro.perf import SCALES
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
)
from repro.workload import SyntheticTraceGenerator

CONFIG = SCALES["full"].workload


@pytest.fixture(scope="module")
def perf_trace():
    return SyntheticTraceGenerator(CONFIG).generate()


@pytest.fixture(scope="module")
def perf_model(perf_trace):
    return DependencyModel.estimate(perf_trace, window=5.0)


@pytest.fixture(scope="module")
def perf_model_sparse(perf_trace):
    return DependencyModel.estimate(perf_trace, window=5.0, backend="sparse")


def test_perf_trace_generation(benchmark):
    def generate():
        return SyntheticTraceGenerator(CONFIG).generate()

    trace = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(trace) > 5_000


def test_perf_dependency_estimation(benchmark, perf_trace):
    model = benchmark.pedantic(
        DependencyModel.estimate,
        args=(perf_trace,),
        kwargs={"window": 5.0},
        rounds=3,
        iterations=1,
    )
    assert model.documents()


def test_perf_dependency_estimation_sparse(benchmark, perf_trace):
    model = benchmark.pedantic(
        DependencyModel.estimate,
        args=(perf_trace,),
        kwargs={"window": 5.0, "backend": "sparse"},
        rounds=3,
        iterations=1,
    )
    assert model.documents()


def test_perf_baseline_replay(benchmark, perf_trace, perf_model):
    simulator = SpeculativeServiceSimulator(perf_trace, BASELINE, model=perf_model)
    run = benchmark.pedantic(simulator.run, args=(None,), rounds=3, iterations=1)
    assert run.accesses == len(perf_trace)


def test_perf_speculative_replay(benchmark, perf_trace, perf_model):
    simulator = SpeculativeServiceSimulator(perf_trace, BASELINE, model=perf_model)
    policy = ThresholdPolicy(threshold=0.25)
    run = benchmark.pedantic(simulator.run, args=(policy,), rounds=3, iterations=1)
    assert run.metrics.speculated_documents > 0


def test_perf_speculative_replay_sparse(benchmark, perf_trace, perf_model_sparse):
    simulator = SpeculativeServiceSimulator(
        perf_trace, BASELINE, model=perf_model_sparse
    )
    policy = ThresholdPolicy(threshold=0.25)
    run = benchmark.pedantic(simulator.run, args=(policy,), rounds=3, iterations=1)
    assert run.metrics.speculated_documents > 0


def _closure_pass(source_model, documents, backend):
    # Fresh model so memoization does not trivialize the timing.
    fresh = DependencyModel.from_counts(
        source_model.pair_counts, source_model.occurrence_counts, backend=backend
    )
    return sum(len(row) for row in fresh.closure_rows(documents).values())


def test_perf_closure_queries(benchmark, perf_model):
    documents = sorted(perf_model.occurrence_counts)[:200]
    total = benchmark.pedantic(
        _closure_pass, args=(perf_model, documents, "dict"), rounds=3, iterations=1
    )
    assert total >= 0


def test_perf_closure_queries_sparse(benchmark, perf_model):
    documents = sorted(perf_model.occurrence_counts)[:200]
    total = benchmark.pedantic(
        _closure_pass, args=(perf_model, documents, "sparse"), rounds=3, iterations=1
    )
    assert total >= 0
