"""Ablation A1 — P* closure vs raw P as the policy input.

The paper's baseline policy thresholds the *closure* ``p*[i, j]``; a
simpler design thresholds the direct ``p[i, j]``.  The closure reaches
documents several clicks ahead, buying extra gains for extra traffic.
This ablation compares the two at equal traffic budgets.
"""

from _harness import emit
from conftest import THRESHOLD_GRID
from repro.core import (
    evaluate_thresholds,
    format_table,
    interpolate_at_traffic,
)
from repro.speculation import ThresholdPolicy

TRAFFIC_BUDGETS = [0.05, 0.25]


def test_a1_closure_vs_direct(benchmark, paper_experiment):
    curves = {}

    def sweep():
        for use_closure in (True, False):
            curves[use_closure] = evaluate_thresholds(
                paper_experiment,
                THRESHOLD_GRID,
                policy_factory=lambda tp, uc=use_closure: ThresholdPolicy(
                    threshold=tp, use_closure=uc
                ),
            )
        return curves

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    gains = {}
    for budget in TRAFFIC_BUDGETS:
        for use_closure in (True, False):
            ratios = interpolate_at_traffic(curves[use_closure], budget)
            label = "P* closure" if use_closure else "direct P"
            gains[(budget, use_closure)] = ratios.server_load_reduction
            rows.append(
                [
                    f"{budget:.0%}",
                    label,
                    f"{ratios.server_load_reduction:.1%}",
                    f"{ratios.service_time_reduction:.1%}",
                ]
            )
    emit(
        "a1",
        format_table(
            ["traffic budget", "policy input", "load red.", "time red."],
            rows,
            title="A1: thresholding P* (paper's baseline) vs direct P",
        ),
    )

    # At the same threshold, the closure always proposes a superset of
    # the direct row, so its raw sweep dominates on gains...
    for point_closure, point_direct in zip(curves[True], curves[False]):
        assert (
            point_closure.ratios.server_load_reduction
            >= point_direct.ratios.server_load_reduction - 1e-9
        )
        assert (
            point_closure.ratios.traffic_increase
            >= point_direct.ratios.traffic_increase - 1e-9
        )
    # ...and at equal traffic budgets the two are comparable: the
    # closure must not lose badly (it is the paper's default).
    for budget in TRAFFIC_BUDGETS:
        assert gains[(budget, True)] >= gains[(budget, False)] - 0.05
