"""Tests for the combined dissemination + speculation simulator."""

import pytest

from repro.config import BaselineConfig
from repro.errors import SimulationError
from repro.core import CombinedProtocolSimulator
from repro.speculation import DependencyModel, ThresholdPolicy
from repro.topology import RoutingTree
from repro.trace import Document, Request, Trace

CONFIG = BaselineConfig(comm_cost=1.0, serv_cost=100.0)

SIZES = {"/page": 1000, "/inline": 200, "/hot": 500}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]


def req(t, doc, client="c1"):
    return Request(timestamp=t, client=client, doc_id=doc, size=SIZES[doc])


@pytest.fixture
def tree():
    return RoutingTree(
        "root", {"mid": "root", "edge": "mid", "c1": "edge", "c2": "edge"}
    )


@pytest.fixture
def model():
    return DependencyModel.from_counts(
        {"/page": {"/inline": 10.0}}, {"/page": 10.0, "/inline": 10.0}
    )


class TestRouting:
    def test_baseline_costs(self, tree, model):
        trace = Trace([req(0, "/page")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run()
        assert result.origin_requests == 1
        assert result.bytes_hops == 1000 * 3  # depth 3
        assert result.service_time == 100 + 1000

    def test_proxy_serves_disseminated(self, tree, model):
        trace = Trace([req(0, "/hot")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run(proxies=["edge"], disseminated={"/hot"})
        assert result.proxy_requests == 1
        assert result.origin_requests == 0
        assert result.bytes_hops == 500 * 1  # one hop below edge
        # Latency's comm part scales with the path fraction travelled.
        assert result.service_time == pytest.approx(100 + 500 * (1 / 3))

    def test_cache_hit_costs_nothing(self, tree, model):
        trace = Trace([req(0, "/page"), req(1, "/page")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run()
        assert result.cache_hits == 1
        assert result.origin_requests == 1

    def test_speculation_travels_full_path(self, tree, model):
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run(policy=ThresholdPolicy(threshold=0.9))
        assert result.speculated_documents == 1
        assert result.cache_hits == 1
        assert result.bytes_hops == (1000 + 200) * 3

    def test_proxy_hit_suppresses_origin_speculation(self, tree, model):
        """Requests answered at a proxy never reach the origin, so the
        origin cannot speculate on them — the structural interaction."""
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run(
            proxies=["edge"],
            disseminated={"/page"},
            policy=ThresholdPolicy(threshold=0.9),
        )
        assert result.proxy_requests == 1
        assert result.speculated_documents == 0
        assert result.origin_requests == 1  # /inline itself

    def test_per_proxy_holdings(self, tree, model):
        trace = Trace([req(0, "/hot", "c1"), req(1, "/hot", "c2")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run(
            proxies=["mid", "edge"],
            disseminated={"mid": {"/hot"}, "edge": set()},
        )
        assert result.proxy_requests == 2
        assert result.bytes_hops == 500 * 2 * 2  # served from depth 1


class TestValidation:
    def test_missing_client_rejected(self, model):
        small = RoutingTree("root", {"x": "root"})
        trace = Trace([req(0, "/page")], DOCS)
        with pytest.raises(SimulationError):
            CombinedProtocolSimulator(trace, small, CONFIG, model=model)

    def test_leaf_proxy_rejected(self, tree, model):
        trace = Trace([req(0, "/page")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        with pytest.raises(SimulationError):
            sim.run(proxies=["c1"], disseminated={"/page"})

    def test_policy_without_model_rejected(self, tree):
        trace = Trace([req(0, "/page")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG)
        with pytest.raises(SimulationError):
            sim.run(policy=ThresholdPolicy(threshold=0.5))

    def test_origin_load_fraction(self, tree, model):
        trace = Trace([req(0, "/page"), req(1, "/page")], DOCS)
        sim = CombinedProtocolSimulator(trace, tree, CONFIG, model=model)
        result = sim.run()
        assert result.origin_load_fraction == 0.5


class TestComplementarity:
    def test_combined_minimizes_origin_load(self):
        """Combined <= each protocol alone on origin requests, on a
        realistic workload."""
        from repro.dissemination import select_popular_bytes
        from repro.popularity import PopularityProfile
        from repro.topology import build_clientele_tree, greedy_tree_placement
        from repro.workload import SyntheticTraceGenerator, preset

        generator = SyntheticTraceGenerator(preset("small", 9))
        trace = generator.generate()
        split = trace.start_time + 15 * 86_400
        model = DependencyModel.estimate(
            trace.window(trace.start_time, split), window=5.0
        )
        test = trace.window(split, trace.end_time + 1)
        tree = build_clientele_tree(test, backbone_hops=2)
        demand = {}
        for request in test.remote_only():
            demand[request.client] = demand.get(request.client, 0.0) + request.size
        proxies = greedy_tree_placement(tree, demand, 4)
        documents = select_popular_bytes(
            PopularityProfile.from_trace(test.remote_only()),
            0.1 * generator.site.total_bytes(),
        )
        sim = CombinedProtocolSimulator(test, tree, CONFIG, model=model)
        policy = ThresholdPolicy(threshold=0.25)

        dissemination = sim.run(proxies=proxies, disseminated=documents)
        speculation = sim.run(policy=policy)
        combined = sim.run(
            proxies=proxies, disseminated=documents, policy=policy
        )
        assert combined.origin_requests <= dissemination.origin_requests
        assert combined.origin_requests <= speculation.origin_requests
        # Dissemination keeps speculation's bytes*hops in check.
        assert combined.bytes_hops <= speculation.bytes_hops
