"""Tests for the Common Log Format parser/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceFormatError
from repro.trace import (
    Request,
    format_clf_line,
    parse_clf_line,
    read_clf,
    write_clf,
)

LINE = 'remote.host.edu - - [15/Jan/1995:12:30:45 +0000] "GET /a/b.html HTTP/1.0" 200 2048'


class TestParseLine:
    def test_fields(self):
        r = parse_clf_line(LINE)
        assert r.client == "remote.host.edu"
        assert r.doc_id == "/a/b.html"
        assert r.size == 2048
        assert r.status == 200
        assert r.method == "GET"

    def test_timestamp_utc(self):
        r = parse_clf_line(LINE)
        # 1995-01-15 12:30:45 UTC
        assert r.timestamp == 790173045.0

    def test_zone_offset_applied(self):
        east = parse_clf_line(LINE.replace("+0000", "-0500"))
        assert east.timestamp == 790173045.0 + 5 * 3600

    def test_positive_zone_offset(self):
        west = parse_clf_line(LINE.replace("+0000", "+0100"))
        assert west.timestamp == 790173045.0 - 3600

    def test_dash_size_is_zero(self):
        r = parse_clf_line(LINE.replace(" 200 2048", " 304 -"))
        assert r.size == 0
        assert r.status == 304

    def test_local_domain_classification(self):
        r = parse_clf_line(LINE, local_domains=["host.edu"])
        assert not r.remote
        r2 = parse_clf_line(LINE, local_domains=["other.edu"])
        assert r2.remote

    def test_local_domain_exact_match(self):
        line = LINE.replace("remote.host.edu", "host.edu")
        assert not parse_clf_line(line, local_domains=["host.edu"]).remote

    def test_local_domain_no_substring_false_positive(self):
        # "xhost.edu" must not match local domain "host.edu".
        line = LINE.replace("remote.host.edu", "xhost.edu")
        assert parse_clf_line(line, local_domains=["host.edu"]).remote

    def test_http09_bare_path(self):
        line = LINE.replace('"GET /a/b.html HTTP/1.0"', '"/old.html"')
        r = parse_clf_line(line)
        assert r.method == "GET"
        assert r.doc_id == "/old.html"

    def test_malformed_line_raises(self):
        with pytest.raises(TraceFormatError):
            parse_clf_line("garbage")

    def test_bad_month_raises(self):
        with pytest.raises(TraceFormatError):
            parse_clf_line(LINE.replace("Jan", "Foo"))

    def test_line_number_in_message(self):
        with pytest.raises(TraceFormatError, match="line 7"):
            parse_clf_line("garbage", line_number=7)

    def test_post_method_preserved(self):
        r = parse_clf_line(LINE.replace("GET", "POST"))
        assert r.method == "POST"


class TestRoundTrip:
    def test_format_then_parse(self):
        original = parse_clf_line(LINE)
        again = parse_clf_line(format_clf_line(original))
        assert again.timestamp == original.timestamp
        assert again.client == original.client
        assert again.doc_id == original.doc_id
        assert again.size == original.size
        assert again.status == original.status

    @given(
        st.integers(min_value=0, max_value=2_000_000_000),
        st.integers(min_value=0, max_value=10**7),
        st.sampled_from([200, 304, 404, 500]),
    )
    def test_roundtrip_property(self, epoch, size, status):
        request = Request(
            timestamp=float(epoch),
            client="host.example.com",
            doc_id="/x/y.html",
            size=size,
            status=status,
        )
        parsed = parse_clf_line(format_clf_line(request))
        assert parsed.timestamp == request.timestamp
        assert parsed.size == request.size
        assert parsed.status == request.status


class TestReadWrite:
    def test_read_sorts_and_skips_blank(self):
        later = LINE.replace("12:30:45", "12:40:00")
        trace = read_clf([later, "", LINE])
        assert len(trace) == 2
        assert trace[0].timestamp < trace[1].timestamp

    def test_read_skips_malformed_by_default(self):
        trace = read_clf([LINE, "not a log line"])
        assert len(trace) == 1

    def test_read_strict_mode_raises(self):
        with pytest.raises(TraceFormatError):
            read_clf([LINE, "not a log line"], skip_malformed=False)

    def test_write_yields_one_line_per_request(self):
        trace = read_clf([LINE])
        lines = list(write_clf(trace))
        assert len(lines) == 1
        assert "GET /a/b.html" in lines[0]


class TestRealWorldQuirks:
    def test_ipv6_host(self):
        line = LINE.replace("remote.host.edu", "2001:db8::1")
        r = parse_clf_line(line)
        assert r.client == "2001:db8::1"

    def test_ident_and_user_fields_preserved_parse(self):
        line = LINE.replace(" - - [", " ident42 alice [")
        r = parse_clf_line(line)
        assert r.client == "remote.host.edu"

    def test_unusual_status_codes(self):
        for status in (204, 206, 301, 403, 500, 503):
            line = LINE.replace(" 200 ", f" {status} ")
            assert parse_clf_line(line).status == status

    def test_query_string_in_path(self):
        line = LINE.replace("/a/b.html", "/search?q=x&y=1")
        assert parse_clf_line(line).doc_id == "/search?q=x&y=1"

    def test_head_request(self):
        line = LINE.replace("GET", "HEAD")
        assert parse_clf_line(line).method == "HEAD"

    def test_trailing_whitespace_tolerated(self):
        assert parse_clf_line(LINE + "   ").size == 2048

    def test_huge_size(self):
        line = LINE.replace(" 2048", " 4294967296")
        assert parse_clf_line(line).size == 4_294_967_296

    def test_lowercase_month_accepted(self):
        line = LINE.replace("Jan", "jan")
        assert parse_clf_line(line).timestamp == 790173045.0
