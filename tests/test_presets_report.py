"""Tests for workload presets and the evaluation report."""

import pytest

from repro.cli import main
from repro.errors import CalibrationError
from repro.core.report import generate_report
from repro.workload import GeneratorConfig, preset, preset_names


class TestPresets:
    def test_all_names_resolve(self):
        for name in preset_names():
            config = preset(name, seed=1)
            assert isinstance(config, GeneratorConfig)
            assert config.seed == 1

    def test_unknown_name(self):
        with pytest.raises(CalibrationError, match="available"):
            preset("nope")

    def test_paper_preset_matches_classmethod(self):
        assert preset("paper", 7) == GeneratorConfig.paper_scale(seed=7)

    def test_drifting_has_drift(self):
        config = preset("drifting")
        assert config.link_churn_per_day > 0
        assert config.new_page_fraction > 0

    def test_geographic_has_affinity(self):
        assert preset("geographic").region_affinity > 0

    def test_visit_presets_differ_only_in_clients(self):
        returning = preset("returning-visitors", 5)
        first = preset("first-visits", 5)
        assert returning.n_clients < first.n_clients
        assert returning.n_sessions == first.n_sessions

    def test_diurnal(self):
        assert preset("diurnal").diurnal_amplitude > 0


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report("small", seed=3, thresholds=[0.5, 0.2])

    def test_contains_all_sections(self, report):
        for heading in (
            "# repro evaluation report",
            "## Workload calibration",
            "## Popularity",
            "## Proxy sizing",
            "## Dissemination replay",
            "## Speculative service",
            "## Gains vs bandwidth",
        ):
            assert heading in report

    def test_markdown_tables_wellformed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_eq10_claims_present(self, report):
        assert "36.9 MB" in report
        assert "95.6%" in report

    def test_sweep_thresholds_listed(self, report):
        assert "| 0.5 |" in report
        assert "| 0.2 |" in report

    def test_unknown_preset_raises(self):
        with pytest.raises(CalibrationError):
            generate_report("missing-preset")


class TestReportCLI:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "eval.md"
        code = main(
            ["report", "--preset", "small", "--seed", "3", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "# repro evaluation report" in out.read_text()

    def test_unknown_preset_errors(self, tmp_path, capsys):
        code = main(
            ["report", "--preset", "bogus", "--out", str(tmp_path / "x.md")]
        )
        assert code == 2
        assert "available" in capsys.readouterr().err
