"""Tests for the SpeculativeServer and DisseminationPlanner facades."""

import pytest

from repro.config import BaselineConfig
from repro.errors import AllocationError, SimulationError
from repro.core import DisseminationPlanner, SpeculativeServer
from repro.trace import Document, Request, Trace

SIZES = {"/page": 1000, "/inline": 200, "/next": 500}
DOCS = {d: Document(doc_id=d, size=s) for d, s in SIZES.items()}


def req(t, doc, client="c", remote=True):
    return Request(
        timestamp=t, client=client, doc_id=doc, size=SIZES[doc], remote=remote
    )


def training_trace():
    """Ten visits: /page then /inline always, /next half the time."""
    requests = []
    t = 0.0
    for visit in range(10):
        client = f"c{visit}"
        requests.append(req(t, "/page", client))
        requests.append(req(t + 0.2, "/inline", client))
        if visit % 2 == 0:
            requests.append(req(t + 2.0, "/next", client))
        t += 1000.0
    return Trace(requests, DOCS.values())


class TestSpeculativeServer:
    def test_respond_includes_strong_dependencies(self):
        server = SpeculativeServer(DOCS, BaselineConfig(threshold=0.9))
        server.fit(training_trace())
        response = server.respond("/page")
        assert response.speculated == ("/inline",)
        assert response.total_documents == 2

    def test_lower_threshold_pushes_more(self):
        server = SpeculativeServer(DOCS, BaselineConfig(threshold=0.4))
        server.fit(training_trace())
        response = server.respond("/page")
        assert set(response.speculated) == {"/inline", "/next"}

    def test_hints_carry_probabilities(self):
        server = SpeculativeServer(DOCS, BaselineConfig(threshold=0.9))
        server.fit(training_trace())
        hints = {h.doc_id: h.probability for h in server.respond("/page").hints}
        assert hints["/inline"] == pytest.approx(1.0)
        assert hints["/next"] == pytest.approx(0.5)

    def test_cache_digest_filters(self):
        server = SpeculativeServer(DOCS, BaselineConfig(threshold=0.9))
        server.fit(training_trace())
        response = server.respond("/page", cache_digest=frozenset({"/inline"}))
        assert response.speculated == ()

    def test_max_size_respected(self):
        config = BaselineConfig(threshold=0.9, max_size=100)
        server = SpeculativeServer(DOCS, config)
        server.fit(training_trace())
        assert server.respond("/page").speculated == ()

    def test_unknown_document_rejected(self):
        server = SpeculativeServer(DOCS)
        with pytest.raises(SimulationError):
            server.respond("/ghost")

    def test_empty_catalog_rejected(self):
        with pytest.raises(SimulationError):
            SpeculativeServer({})

    def test_observe_incremental(self):
        server = SpeculativeServer(DOCS, BaselineConfig(threshold=0.9))
        trace = training_trace()
        half = len(trace) // 2
        server.observe(Trace(list(trace)[:half], DOCS.values()))
        server.observe(Trace(list(trace)[half:], DOCS.values()))
        assert server.respond("/page").speculated == ("/inline",)

    def test_refit_discards_old_counts(self):
        server = SpeculativeServer(DOCS, BaselineConfig(threshold=0.9))
        server.fit(training_trace())
        # New behaviour: /page followed by /next always.
        fresh = Trace(
            [req(0, "/page", "z"), req(1, "/next", "z")], DOCS.values()
        )
        server.fit(fresh)
        assert server.respond("/page").speculated == ("/next",)

    def test_aging_server(self):
        server = SpeculativeServer(
            DOCS, BaselineConfig(threshold=0.6), decay_per_day=0.5
        )
        server.observe(training_trace())
        # Fresh conflicting behaviour three days later.
        later = 3 * 86_400.0
        fresh = Trace(
            [req(later + i * 100, "/page", f"n{i}") for i in range(6)]
            + [req(later + i * 100 + 1, "/next", f"n{i}") for i in range(6)],
            DOCS.values(),
            sort=True,
        )
        server.observe(fresh)
        response = server.respond("/page")
        assert "/next" in response.speculated


class TestDisseminationPlanner:
    def _trace(self, seed_docs, n=20):
        requests = []
        t = 0.0
        for i in range(n):
            for doc, size in seed_docs:
                requests.append(
                    Request(timestamp=t, client=f"c{i}", doc_id=doc, size=size)
                )
                t += 10.0
        return Trace(requests)

    def test_plan_respects_budget(self):
        planner = DisseminationPlanner()
        planner.add_server("s1", self._trace([("/a", 1000), ("/b", 2000)]))
        planner.add_server("s2", self._trace([("/x", 1500)]))
        plan = planner.plan(3000.0)
        assert plan.storage_used() <= 3000.0 * 1.001
        assert set(plan.allocations) == {"s1", "s2"}

    def test_documents_fit_allocations(self):
        planner = DisseminationPlanner()
        trace = self._trace([("/a", 1000), ("/b", 2000), ("/c", 500)])
        planner.add_server("s1", trace)
        plan = planner.plan(1600.0)
        chosen_bytes = sum(
            trace.documents[d].size for d in plan.documents["s1"]
        )
        assert chosen_bytes <= plan.allocations["s1"]

    def test_alphas_reported(self):
        planner = DisseminationPlanner()
        planner.add_server("s1", self._trace([("/a", 1000)]))
        plan = planner.plan(10_000.0)
        assert 0.0 <= plan.expected_alpha <= 1.0
        assert plan.empirical_alpha == pytest.approx(1.0)

    def test_server_model_estimation(self):
        planner = DisseminationPlanner()
        planner.add_server("s1", self._trace([("/a", 1000), ("/b", 500)]))
        model = planner.server_model("s1")
        assert model.rate > 0
        assert model.lam > 0

    def test_duplicate_server_rejected(self):
        planner = DisseminationPlanner()
        planner.add_server("s1", self._trace([("/a", 10)]))
        with pytest.raises(AllocationError):
            planner.add_server("s1", self._trace([("/b", 10)]))

    def test_empty_trace_rejected(self):
        with pytest.raises(AllocationError):
            DisseminationPlanner().add_server("s1", Trace([]))

    def test_plan_without_servers_rejected(self):
        with pytest.raises(AllocationError):
            DisseminationPlanner().plan(100.0)

    def test_unknown_server_model(self):
        with pytest.raises(AllocationError):
            DisseminationPlanner().server_model("ghost")

    def test_local_only_server_rejected_in_remote_mode(self):
        planner = DisseminationPlanner()
        local_trace = Trace(
            [Request(timestamp=0.0, client="c", doc_id="/a", size=10, remote=False)]
        )
        planner.add_server("s1", local_trace)
        with pytest.raises(AllocationError):
            planner.server_model("s1")

    def test_popular_server_gets_more_storage(self):
        """Rates are per unit time, so both traces must span the same
        window; the busy server packs 10x the accesses into it."""
        def trace_over_one_day(doc, n_accesses):
            step = 86_400.0 / n_accesses
            return Trace(
                [
                    Request(
                        timestamp=i * step, client=f"c{i}", doc_id=doc, size=1000
                    )
                    for i in range(n_accesses)
                ]
            )

        planner = DisseminationPlanner()
        planner.add_server("busy", trace_over_one_day("/a", 100))
        planner.add_server("idle", trace_over_one_day("/b", 10))
        plan = planner.plan(1500.0)
        assert plan.allocations["busy"] >= plan.allocations["idle"]
