"""Tests for the prediction-quality diagnostics."""

import pytest

from repro.errors import SimulationError
from repro.speculation import (
    DependencyModel,
    ThresholdPolicy,
    evaluate_policy_predictions,
)
from repro.trace import Document, Request, Trace

SIZES = {"/a": 100, "/b": 100, "/c": 100}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]


def req(t, doc, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=SIZES[doc])


@pytest.fixture
def perfect_model():
    # Model says /a -> /b with certainty.
    return DependencyModel.from_counts({"/a": {"/b": 10.0}}, {"/a": 10.0, "/b": 10.0})


class TestScoring:
    def test_perfect_prediction(self, perfect_model):
        trace = Trace([req(0, "/a"), req(1, "/b")], DOCS)
        quality = evaluate_policy_predictions(
            trace, perfect_model, ThresholdPolicy(threshold=0.9)
        )
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_wrong_prediction(self, perfect_model):
        trace = Trace([req(0, "/a"), req(1, "/c")], DOCS)
        quality = evaluate_policy_predictions(
            trace, perfect_model, ThresholdPolicy(threshold=0.9)
        )
        assert quality.precision == 0.0  # pushed /b, /c was accessed
        assert quality.recall == 0.0

    def test_missed_opportunity(self):
        empty = DependencyModel.from_counts({}, {})
        trace = Trace([req(0, "/a"), req(1, "/b")], DOCS)
        quality = evaluate_policy_predictions(
            trace, empty, ThresholdPolicy(threshold=0.9)
        )
        assert quality.predictions == 0
        assert quality.precision == 1.0  # vacuous
        assert quality.recall == 0.0
        assert quality.opportunities == 1

    def test_horizon_limits_actuals(self, perfect_model):
        trace = Trace([req(0, "/a"), req(100, "/b")], DOCS)
        quality = evaluate_policy_predictions(
            trace, perfect_model, ThresholdPolicy(threshold=0.9), horizon=5.0
        )
        # /b outside the horizon: the push is counted as unused.
        assert quality.used_predictions == 0
        assert quality.opportunities == 0

    def test_clients_scored_separately(self, perfect_model):
        trace = Trace([req(0, "/a", "x"), req(1, "/b", "y")], DOCS)
        quality = evaluate_policy_predictions(
            trace, perfect_model, ThresholdPolicy(threshold=0.9)
        )
        # y's access of /b is not x's future.
        assert quality.used_predictions == 0

    def test_max_requests_cap(self, perfect_model):
        trace = Trace(
            [req(float(i), "/a", f"c{i}") for i in range(10)], DOCS
        )
        quality = evaluate_policy_predictions(
            trace, perfect_model, ThresholdPolicy(threshold=0.9), max_requests=3
        )
        assert quality.scored_requests == 3

    def test_invalid_horizon(self, perfect_model):
        trace = Trace([req(0, "/a")], DOCS)
        with pytest.raises(SimulationError):
            evaluate_policy_predictions(
                trace, perfect_model, ThresholdPolicy(threshold=0.9), horizon=0.0
            )

    def test_f1_zero_when_both_zero(self):
        empty = DependencyModel.from_counts({}, {})
        trace = Trace([req(0, "/a")], DOCS)
        quality = evaluate_policy_predictions(
            trace, empty, ThresholdPolicy(threshold=0.9)
        )
        # precision vacuous 1.0, recall 0 with no opportunities -> f1 finite
        assert 0.0 <= quality.f1 <= 1.0


class TestThresholdTradeoff:
    def test_lower_threshold_trades_precision_for_recall(self):
        """On a mixed workload, loosening T_p must not increase
        precision and must not decrease recall."""
        from repro.workload import generate_trace

        trace = generate_trace(
            13, n_pages=50, n_clients=40, n_sessions=300, duration_days=10
        )
        half = trace.start_time + 5 * 86_400
        model = DependencyModel.estimate(
            trace.window(trace.start_time, half), window=5.0
        )
        test = trace.window(half, trace.end_time + 1)
        strict = evaluate_policy_predictions(
            test, model, ThresholdPolicy(threshold=0.8)
        )
        loose = evaluate_policy_predictions(
            test, model, ThresholdPolicy(threshold=0.1)
        )
        assert loose.recall >= strict.recall
        assert loose.precision <= strict.precision + 1e-9
