"""Streaming generation: stream()/generate() equivalence and sharding."""

import heapq

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.trace import Trace
from repro.workload import (
    GeneratorConfig,
    SyntheticTraceGenerator,
    merge_streams,
)

BASE = GeneratorConfig(
    seed=3, n_pages=60, n_clients=40, n_sessions=300, duration_days=10
)

# Configurations chosen to exercise every stateful path of the stream:
# churn rewires links mid-stream, new pages grow the site, the diurnal
# profile uses rejection thinning, and affinity re-reads client state.
CONFIGS = [
    BASE,
    GeneratorConfig(
        seed=7,
        n_pages=80,
        n_clients=50,
        n_sessions=400,
        duration_days=14,
        link_churn_per_day=0.05,
        new_page_fraction=0.2,
    ),
    GeneratorConfig(
        seed=11,
        n_pages=50,
        n_clients=30,
        n_sessions=250,
        duration_days=7,
        diurnal_amplitude=0.6,
        region_affinity=0.5,
    ),
    GeneratorConfig(
        seed=0,
        n_pages=40,
        n_clients=25,
        n_sessions=200,
        duration_days=5,
        activity_alpha=0.0,
    ),
]


def _requests_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.timestamp == b.timestamp
        assert a.client == b.client
        assert a.doc_id == b.doc_id
        assert a.size == b.size
        assert a.remote == b.remote


class TestStreamEquivalence:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"seed{c.seed}")
    def test_stream_matches_generate(self, config):
        streamed = list(SyntheticTraceGenerator(config).stream())
        batch = SyntheticTraceGenerator(config).generate()
        _requests_equal(streamed, list(batch))

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"seed{c.seed}")
    def test_stream_matches_reference_batch(self, config):
        streamed = list(SyntheticTraceGenerator(config).stream())
        reference = SyntheticTraceGenerator(config)._generate_batch(epoch=0)
        _requests_equal(streamed, list(reference))

    def test_stream_is_time_ordered(self):
        timestamps = [
            r.timestamp for r in SyntheticTraceGenerator(BASE).stream()
        ]
        assert timestamps == sorted(timestamps)

    def test_stream_leaves_matching_site_state(self):
        config = CONFIGS[1]  # churn + new pages mutate the site
        streaming = SyntheticTraceGenerator(config)
        list(streaming.stream())
        batch = SyntheticTraceGenerator(config)
        batch._generate_batch(epoch=0)
        assert streaming._links == batch._links
        assert np.array_equal(streaming._born, batch._born)


class TestSharding:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_shard_merge_equals_unsharded(self, shards):
        config = CONFIGS[1]
        whole = list(SyntheticTraceGenerator(config).stream())
        parts = [
            SyntheticTraceGenerator(config).stream(
                shard_index=i, shard_count=shards, epoch=0
            )
            for i in range(shards)
        ]
        merged = list(merge_streams(*parts))
        _requests_equal(merged, whole)

    def test_shards_partition_clients(self):
        config = BASE
        seen = [
            {
                r.client
                for r in SyntheticTraceGenerator(config).stream(
                    shard_index=i, shard_count=3, epoch=0
                )
            }
            for i in range(3)
        ]
        assert not (seen[0] & seen[1])
        assert not (seen[0] & seen[2])
        assert not (seen[1] & seen[2])

    def test_merge_streams_is_heapq_merge_on_timestamp(self):
        config = BASE
        parts = [
            list(
                SyntheticTraceGenerator(config).stream(
                    shard_index=i, shard_count=2, epoch=0
                )
            )
            for i in range(2)
        ]
        expected = list(
            heapq.merge(*parts, key=lambda request: request.timestamp)
        )
        _requests_equal(list(merge_streams(*parts)), expected)

    def test_bad_shard_args_raise(self):
        generator = SyntheticTraceGenerator(BASE)
        with pytest.raises(CalibrationError):
            generator.stream(shard_count=0)
        with pytest.raises(CalibrationError):
            generator.stream(shard_index=2, shard_count=2)
        with pytest.raises(CalibrationError):
            generator.stream(shard_index=-1, shard_count=2)


class TestEpochs:
    def test_epochs_differ_but_reproduce(self):
        first = SyntheticTraceGenerator(BASE)
        epoch0 = list(first.stream())
        epoch1 = list(first.stream())
        assert [r.doc_id for r in epoch0] != [r.doc_id for r in epoch1]

        second = SyntheticTraceGenerator(BASE)
        _requests_equal(list(second.stream()), epoch0)
        _requests_equal(list(second.stream()), epoch1)

    def test_explicit_epoch_pins_randomness(self):
        generator = SyntheticTraceGenerator(BASE)
        pinned = list(generator.stream(epoch=5))
        again = list(SyntheticTraceGenerator(BASE).stream(epoch=5))
        _requests_equal(pinned, again)


class TestRegionOrderRegression:
    """Regression: region orders must not depend on arrival order.

    The old implementation permuted each region's local pages lazily
    from the shared generation RNG, so *which clients showed up first*
    changed every region's page order — sharded runs could not
    reproduce the unsharded trace. Orders now come from dedicated
    SeedSequence substreams derived only from (seed, region).
    """

    def test_orders_prederived_before_generation(self):
        generator = SyntheticTraceGenerator(BASE)
        before = {
            region: list(generator._region_order(region))
            for region in range(BASE.n_regions)
        }
        list(generator.stream())
        after = {
            region: list(generator._region_order(region))
            for region in range(BASE.n_regions)
        }
        assert before == after

    def test_orders_identical_across_instances(self):
        first = SyntheticTraceGenerator(BASE)
        second = SyntheticTraceGenerator(BASE)
        list(second.stream())  # consume randomness in one of them
        for region in range(BASE.n_regions):
            assert list(first._region_order(region)) == list(
                second._region_order(region)
            )

    def test_orders_are_permutations_of_local_pages(self):
        generator = SyntheticTraceGenerator(BASE)
        for region in range(BASE.n_regions):
            order = list(generator._region_order(region))
            assert sorted(order) == sorted(set(order))


class TestGenerateWrapper:
    def test_generate_returns_sorted_trace(self):
        trace = SyntheticTraceGenerator(BASE).generate()
        assert isinstance(trace, Trace)
        timestamps = [r.timestamp for r in trace]
        assert timestamps == sorted(timestamps)

    def test_generate_carries_full_catalog(self):
        generator = SyntheticTraceGenerator(BASE)
        trace = generator.generate()
        assert set(trace.documents) >= {
            d.doc_id for d in generator.site.documents()
        }
