"""Tests for the self-tuning bandwidth-budget policy."""

import pytest

from repro.config import BASELINE
from repro.core import Experiment
from repro.errors import PolicyError
from repro.speculation import AdaptiveBudgetPolicy, DependencyModel
from repro.trace import Document
from repro.workload import SyntheticTraceGenerator, preset


@pytest.fixture(scope="module")
def experiment():
    trace = SyntheticTraceGenerator(preset("small", 9)).generate()
    return Experiment(trace, BASELINE, train_days=18)


def make_policy(**kw):
    defaults = dict(
        target_traffic_increase=0.10,
        warmup_bytes=20_000,
        window_bytes=300_000,
        adjust_rate=0.05,
    )
    defaults.update(kw)
    return AdaptiveBudgetPolicy(**defaults)


class TestValidation:
    def test_negative_target(self):
        with pytest.raises(PolicyError):
            AdaptiveBudgetPolicy(target_traffic_increase=-0.1)

    def test_bad_initial_threshold(self):
        with pytest.raises(PolicyError):
            AdaptiveBudgetPolicy(0.1, initial_threshold=0.0)

    def test_bad_adjust_rate(self):
        with pytest.raises(PolicyError):
            AdaptiveBudgetPolicy(0.1, adjust_rate=1.0)

    def test_bad_window(self):
        with pytest.raises(PolicyError):
            AdaptiveBudgetPolicy(0.1, window_bytes=0.0)

    def test_bad_min_threshold(self):
        with pytest.raises(PolicyError):
            AdaptiveBudgetPolicy(0.1, min_threshold=0.0)


class TestSteering:
    def test_threshold_rises_when_over_budget(self):
        policy = make_policy(
            target_traffic_increase=0.0, warmup_bytes=0.0, initial_threshold=0.5
        )
        # A model that always proposes a big, uncertain push.
        model = DependencyModel.from_counts(
            {"/a": {"/big": 6.0}}, {"/a": 10.0, "/big": 10.0}
        )
        catalog = {
            "/a": Document(doc_id="/a", size=100),
            "/big": Document(doc_id="/big", size=100_000),
        }
        before = policy.threshold
        for __ in range(20):
            policy.select("/a", model, catalog)
        assert policy.threshold > before

    def test_threshold_falls_when_under_budget(self):
        policy = make_policy(
            target_traffic_increase=0.5, warmup_bytes=0.0, initial_threshold=0.9
        )
        model = DependencyModel.from_counts({}, {"/a": 1.0})
        catalog = {"/a": Document(doc_id="/a", size=1000)}
        for __ in range(30):
            policy.select("/a", model, catalog)
        assert policy.threshold < 0.9

    def test_threshold_clamped(self):
        policy = make_policy(
            target_traffic_increase=0.9,
            warmup_bytes=0.0,
            initial_threshold=0.05,
            min_threshold=0.04,
        )
        model = DependencyModel.from_counts({}, {"/a": 1.0})
        catalog = {"/a": Document(doc_id="/a", size=1000)}
        for __ in range(200):
            policy.select("/a", model, catalog)
        assert policy.threshold >= 0.04

    def test_certain_pushes_cost_nothing(self):
        """A p=1 push has zero expected waste and never raises the
        threshold — the paper's embedding argument, encoded."""
        policy = make_policy(target_traffic_increase=0.0, warmup_bytes=0.0)
        model = DependencyModel.from_counts(
            {"/a": {"/inline": 10.0}}, {"/a": 10.0, "/inline": 10.0}
        )
        catalog = {
            "/a": Document(doc_id="/a", size=1000),
            "/inline": Document(doc_id="/inline", size=500),
        }
        for __ in range(10):
            chosen = policy.select("/a", model, catalog)
            assert [c.doc_id for c in chosen] == ["/inline"]
        assert policy.observed_traffic_increase == 0.0

    def test_window_rescaling(self):
        policy = make_policy(window_bytes=1_000.0, warmup_bytes=0.0)
        model = DependencyModel.from_counts({}, {"/a": 1.0})
        catalog = {"/a": Document(doc_id="/a", size=600)}
        for __ in range(10):
            policy.select("/a", model, catalog)
        # Window cap keeps the demand counter bounded.
        assert policy._demand_bytes <= 1_000.0 + 1e-9


class TestEndToEnd:
    def test_budget_monotonicity(self, experiment):
        achieved = []
        for target in (0.03, 0.15, 0.40):
            policy = make_policy(target_traffic_increase=target)
            ratios, __ = experiment.evaluate(policy)
            achieved.append(ratios.traffic_increase)
        assert achieved[0] <= achieved[1] <= achieved[2]

    def test_small_budget_stays_small(self, experiment):
        policy = make_policy(target_traffic_increase=0.03)
        ratios, __ = experiment.evaluate(policy)
        # Within a small multiple of the stated budget.
        assert ratios.traffic_increase < 0.15

    def test_still_delivers_gains(self, experiment):
        policy = make_policy(target_traffic_increase=0.10)
        ratios, __ = experiment.evaluate(policy)
        assert ratios.server_load_reduction > 0.2
