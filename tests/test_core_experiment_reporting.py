"""Tests for experiment plumbing and report rendering."""

import pytest

from repro.config import BaselineConfig
from repro.errors import SimulationError
from repro.core import (
    Experiment,
    format_series,
    format_table,
    interpolate_at_traffic,
    evaluate_thresholds,
    train_test_split,
)
from repro.core.experiment import SweepPoint
from repro.speculation import SpeculationRatios, ThresholdPolicy, make_cache_factory
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


@pytest.fixture(scope="module")
def trace():
    return SyntheticTraceGenerator(
        GeneratorConfig(
            seed=21, n_pages=60, n_clients=50, n_sessions=500, duration_days=20
        )
    ).generate()


@pytest.fixture(scope="module")
def experiment(trace):
    return Experiment(trace, train_days=10)


class TestTrainTestSplit:
    def test_split_sizes(self, trace):
        train, test = train_test_split(trace, 10)
        assert len(train) + len(test) == len(trace)
        assert train.end_time <= test.start_time

    def test_boundary_goes_to_test(self, trace):
        train, test = train_test_split(trace, 10)
        boundary = trace.start_time + 10 * 86_400
        assert all(r.timestamp < boundary for r in train)
        assert all(r.timestamp >= boundary for r in test)

    def test_bad_split_rejected(self, trace):
        with pytest.raises(SimulationError):
            train_test_split(trace, 0)
        with pytest.raises(SimulationError):
            train_test_split(trace, 10_000)


class TestExperiment:
    def test_baseline_cached(self, experiment):
        assert experiment.baseline() is experiment.baseline()

    def test_evaluate_produces_ratios(self, experiment):
        ratios, run = experiment.evaluate(ThresholdPolicy(threshold=0.5))
        assert ratios.bandwidth_ratio >= 1.0
        assert run.accesses == len(experiment.test)

    def test_different_cache_keys_isolated(self, experiment):
        default = experiment.baseline()
        no_cache = experiment.baseline(
            cache_factory=make_cache_factory(0.0), cache_key="none"
        )
        assert no_cache.metrics.server_requests >= default.metrics.server_requests

    def test_speculation_beats_baseline_on_load(self, experiment):
        ratios, __ = experiment.evaluate(ThresholdPolicy(threshold=0.5))
        assert ratios.server_load_ratio < 1.0


class TestSweep:
    def test_sweep_order_preserved(self, experiment):
        points = evaluate_thresholds(experiment, [0.9, 0.3])
        assert [p.parameter for p in points] == [0.9, 0.3]

    def test_lower_threshold_more_traffic(self, experiment):
        points = evaluate_thresholds(experiment, [0.9, 0.1])
        assert (
            points[1].ratios.traffic_increase >= points[0].ratios.traffic_increase
        )

    def test_custom_policy_factory(self, experiment):
        from repro.speculation import TopKPolicy

        points = evaluate_thresholds(
            experiment,
            [0.2],
            policy_factory=lambda p: TopKPolicy(k=2, min_probability=p),
        )
        assert len(points) == 1


class TestInterpolation:
    def _points(self):
        def ratios(traffic, load):
            return SpeculationRatios(
                bandwidth_ratio=1 + traffic,
                server_load_ratio=load,
                service_time_ratio=load + 0.05,
                miss_rate_ratio=load + 0.10,
            )

        return [
            SweepPoint(parameter=0.5, ratios=ratios(0.10, 0.70), run=None),
            SweepPoint(parameter=0.1, ratios=ratios(0.50, 0.50), run=None),
        ]

    def test_exact_point(self):
        out = interpolate_at_traffic(self._points(), 0.10)
        assert out.server_load_ratio == pytest.approx(0.70)

    def test_midpoint(self):
        out = interpolate_at_traffic(self._points(), 0.30)
        assert out.server_load_ratio == pytest.approx(0.60)
        assert out.bandwidth_ratio == pytest.approx(1.30)

    def test_below_first_point_interpolates_from_origin(self):
        out = interpolate_at_traffic(self._points(), 0.05)
        assert out.server_load_ratio == pytest.approx(0.85)

    def test_beyond_sweep_clamps(self):
        out = interpolate_at_traffic(self._points(), 9.0)
        assert out.server_load_ratio == pytest.approx(0.50)

    def test_zero_traffic_is_origin(self):
        out = interpolate_at_traffic(self._points(), 0.0)
        assert out.server_load_ratio == 1.0

    def test_empty_points(self):
        assert interpolate_at_traffic([], 0.1) is None

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            interpolate_at_traffic(self._points(), -0.1)


class TestReporting:
    def test_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "longer" in lines[3]

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_series_bars_scale(self):
        text = format_series("s", [1, 2], [0.5, 1.0], bar_width=10)
        lines = text.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])

    def test_series_all_zero(self):
        text = format_series("s", [1], [0.0])
        assert "#" not in text
