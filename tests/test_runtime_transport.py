"""Runtime wire protocol, virtual clock and in-memory transport."""

import asyncio

import pytest

from repro.errors import RuntimeProtocolError, TransportError
from repro.runtime import InMemoryNetwork, Message, VirtualClock, run_virtual
from repro.runtime.messages import (
    HEADER_BYTES,
    frame,
    make_error,
    make_request,
    make_response,
    raise_if_error,
)


class TestMessages:
    def test_encode_decode_round_trip(self):
        message = make_request("client-1", "client-1#7", "/a.html", 12.5)
        assert Message.decode(message.encode()) == message

    def test_frame_is_length_prefixed(self):
        message = make_request("c", "c#1", "/a", 0.0)
        for codec in ("binary", "json"):
            framed = frame(message, codec)
            body = framed[HEADER_BYTES:]
            assert framed[:HEADER_BYTES] == len(body).to_bytes(
                HEADER_BYTES, "big"
            )
            assert Message.decode(body) == message
        # JSON remains the debug form: frame(..., "json") carries the
        # canonical Message.encode() bytes verbatim.
        assert frame(message, "json")[HEADER_BYTES:] == message.encode()

    def test_decode_rejects_garbage(self):
        with pytest.raises(RuntimeProtocolError):
            Message.decode(b"not json at all")

    def test_decode_rejects_non_object(self):
        with pytest.raises(RuntimeProtocolError):
            Message.decode(b"[1, 2, 3]")

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(RuntimeProtocolError):
            Message.decode(b'{"kind": "teleport", "sender": "x"}')

    def test_oversized_frame_rejected(self):
        huge = Message(
            kind="response", sender="s", payload={"blob": "x" * (9 * 2**20)}
        )
        with pytest.raises(RuntimeProtocolError):
            frame(huge)

    def test_response_body_includes_riders(self):
        message = make_response(
            "origin", "c#1", "/a", 100, "origin", speculated=[("/b", 40)]
        )
        assert message.body_bytes == 140

    def test_raise_if_error_maps_error_kind(self):
        ok = make_response("o", "c#1", "/a", 1, "o")
        assert raise_if_error(ok) is ok
        with pytest.raises(RuntimeProtocolError):
            raise_if_error(make_error("o", "c#1", "protocol", "bad doc"))
        with pytest.raises(TransportError):
            raise_if_error(make_error("o", "c#1", "transport", "upstream gone"))


class TestVirtualClock:
    def test_sleeps_advance_virtual_time_only(self):
        async def nap():
            loop = asyncio.get_running_loop()
            before = loop.time()
            await asyncio.sleep(3600.0)
            return loop.time() - before

        assert run_virtual(nap()) == pytest.approx(3600.0)

    def test_start_offset(self):
        async def now():
            return asyncio.get_running_loop().time()

        assert run_virtual(now(), start=1000.0) == pytest.approx(1000.0)

    def test_deadlock_is_surfaced(self):
        async def wait_forever():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(RuntimeProtocolError, match="deadlock"):
            run_virtual(wait_forever())

    def test_requires_selector_loop(self):
        class FakeLoop:
            pass

        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            VirtualClock().install(FakeLoop())  # type: ignore[arg-type]


async def echo_exchange(network, *, doc_id="/a", timeout=None):
    """One request/response round trip; returns (reply, service_time)."""
    server = network.endpoint("server")
    client = network.endpoint("client")

    async def handler(message):
        return make_response(
            "server",
            message.request_id,
            message.payload["doc_id"],
            size=2048,
            served_by="server",
        )

    server.start(handler)
    client.start(None)
    loop = asyncio.get_running_loop()
    started = loop.time()
    request = make_request("client", client.next_request_id(), doc_id, 0.0)
    try:
        reply = await client.call("server", request, timeout=timeout)
    finally:
        await server.close()
        await client.close()
    return reply, loop.time() - started


class TestInMemoryNetwork:
    def test_round_trip(self):
        network = InMemoryNetwork(seed=0)
        reply, elapsed = run_virtual(echo_exchange(network))
        assert reply.kind == "response"
        assert reply.payload["size"] == 2048
        # Two frames crossed the wire, each at least base_latency late.
        assert elapsed >= 2 * 0.005
        stats = network.stats()
        assert stats["frames_sent"] == 2
        assert stats["frames_delivered"] == 2
        assert stats["frames_dropped"] == 0
        assert stats["frames_rejected"] == 0
        assert stats["frames_inflight"] == 0
        # request (64) + response (2048) body bytes, all delivered
        assert stats["bytes_sent"] == 64 + 2048
        assert stats["bytes_delivered"] == 64 + 2048

    def test_same_seed_same_latency(self):
        elapsed = [
            run_virtual(echo_exchange(InMemoryNetwork(seed=5)))[1]
            for _ in range(2)
        ]
        assert elapsed[0] == elapsed[1]

    def test_seed_changes_jittered_latency(self):
        a = run_virtual(echo_exchange(InMemoryNetwork(seed=1)))[1]
        b = run_virtual(echo_exchange(InMemoryNetwork(seed=2)))[1]
        assert a != b

    def test_hop_count_scales_latency(self):
        flat = run_virtual(
            echo_exchange(InMemoryNetwork(seed=3, jitter=0.0))
        )[1]
        deep = run_virtual(
            echo_exchange(
                InMemoryNetwork(seed=3, jitter=0.0, hop_count=lambda s, d: 4)
            )
        )[1]
        assert deep == pytest.approx(4 * flat)

    def test_per_link_fifo_despite_size_inversion(self):
        async def scenario():
            # Slow link: a 1 MB frame takes 100 virtual seconds, but the
            # tiny frame sent just after it must not overtake it.
            network = InMemoryNetwork(seed=0, bandwidth=1e4, jitter=0.0)
            receiver = network.endpoint("rx")
            sender = network.endpoint("tx")
            seen = []

            async def handler(message):
                seen.append(message.payload["n"])
                return None

            receiver.start(handler)
            sender.start(None)
            for n, body in enumerate([1_000_000, 0, 10]):
                sender.cast(
                    "rx",
                    Message(
                        kind="request",
                        sender="tx",
                        payload={"n": n},
                        body_bytes=body,
                    ),
                )
            await asyncio.sleep(500.0)
            await receiver.close()
            await sender.close()
            return seen

        assert run_virtual(scenario()) == [0, 1, 2]

    def test_unknown_endpoint_raises(self):
        async def scenario():
            network = InMemoryNetwork()
            sender = network.endpoint("tx")
            with pytest.raises(TransportError, match="unknown endpoint"):
                sender.cast("nowhere", Message(kind="request", sender="tx"))

        run_virtual(scenario())

    def test_duplicate_endpoint_name_rejected(self):
        network = InMemoryNetwork()
        network.endpoint("a")
        with pytest.raises(TransportError):
            network.endpoint("a")

    def test_unanswered_call_times_out(self):
        async def scenario():
            network = InMemoryNetwork(seed=0)
            server = network.endpoint("server")
            client = network.endpoint("client")

            async def mute(message):
                return None

            server.start(mute)
            client.start(None)
            request = make_request(
                "client", client.next_request_id(), "/a", 0.0
            )
            try:
                with pytest.raises(TransportError, match="timed out"):
                    await client.call("server", request, timeout=2.0)
            finally:
                await server.close()
                await client.close()

        run_virtual(scenario())

    def test_dropped_frames_recover_via_retry(self):
        async def scenario():
            network = InMemoryNetwork(seed=0, drop_probability=0.6)
            server = network.endpoint("server")
            client = network.endpoint("client")

            async def handler(message):
                return make_response(
                    "server", message.request_id, "/a", 10, "server"
                )

            server.start(handler)
            client.start(None)
            reply = None
            attempts = 0
            try:
                for attempts in range(1, 11):  # noqa: B007
                    request = make_request(
                        "client", client.next_request_id(), "/a", 0.0
                    )
                    try:
                        reply = await client.call(
                            "server", request, timeout=1.0
                        )
                        break
                    except TransportError:
                        continue
                return reply, attempts, network.frames_dropped
            finally:
                await server.close()
                await client.close()

        reply, attempts, dropped = run_virtual(scenario())
        assert reply is not None and reply.kind == "response"
        assert attempts == 3  # seed 0 drops the first two attempts
        assert dropped >= 1

    def test_full_inbox_rejects_frames(self):
        async def scenario():
            network = InMemoryNetwork(seed=0, jitter=0.0)
            network.endpoint("rx", inbox_limit=1)  # pump never started
            sender = network.endpoint("tx")
            for _ in range(3):
                sender.cast("rx", Message(kind="request", sender="tx"))
            await asyncio.sleep(1.0)
            return network.stats()

        stats = run_virtual(scenario())
        assert stats["frames_rejected"] == 2
        assert stats["frames_delivered"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(TransportError):
            InMemoryNetwork(base_latency=-1.0)
        with pytest.raises(TransportError):
            InMemoryNetwork(bandwidth=0.0)
        with pytest.raises(TransportError):
            InMemoryNetwork(drop_probability=1.0)
