"""Tests for the routing tree."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.topology import RoutingTree


@pytest.fixture
def tree():
    #        root
    #       /    \
    #      a      b
    #     / \      \
    #    c   d      e
    #   /
    #  leaf1   (d, e are leaves too)
    return RoutingTree(
        "root",
        {"a": "root", "b": "root", "c": "a", "d": "a", "e": "b", "leaf1": "c"},
    )


class TestConstruction:
    def test_root_with_parent_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTree("r", {"r": "x"})

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTree("r", {"a": "b", "b": "a"})

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTree("r", {"a": "ghost"})

    def test_single_node_tree(self):
        t = RoutingTree("r", {})
        assert t.leaves == frozenset()
        assert t.nodes() == {"r"}


class TestQueries:
    def test_depths(self, tree):
        assert tree.depth("root") == 0
        assert tree.depth("a") == 1
        assert tree.depth("leaf1") == 3

    def test_leaves(self, tree):
        assert tree.leaves == {"leaf1", "d", "e"}

    def test_internal_nodes(self, tree):
        assert tree.internal_nodes() == {"a", "b", "c"}

    def test_parent(self, tree):
        assert tree.parent("c") == "a"
        assert tree.parent("root") is None

    def test_children(self, tree):
        assert set(tree.children("a")) == {"c", "d"}
        assert tree.children("leaf1") == []

    def test_path_from_root(self, tree):
        assert tree.path_from_root("leaf1") == ["root", "a", "c", "leaf1"]
        assert tree.path_from_root("root") == ["root"]

    def test_hops(self, tree):
        assert tree.hops("leaf1") == 3

    def test_hops_from_ancestor(self, tree):
        assert tree.hops_from("a", "leaf1") == 2
        assert tree.hops_from("root", "leaf1") == 3
        assert tree.hops_from("leaf1", "leaf1") == 0

    def test_hops_from_non_ancestor_rejected(self, tree):
        with pytest.raises(TopologyError):
            tree.hops_from("b", "leaf1")

    def test_subtree_leaves(self, tree):
        assert tree.subtree_leaves("a") == {"leaf1", "d"}
        assert tree.subtree_leaves("root") == {"leaf1", "d", "e"}
        assert tree.subtree_leaves("leaf1") == {"leaf1"}

    def test_node_kind(self, tree):
        assert tree.node_kind("root") == "root"
        assert tree.node_kind("a") == "internal"
        assert tree.node_kind("d") == "leaf"

    def test_unknown_node_errors(self, tree):
        for method in (tree.depth, tree.parent, tree.children, tree.node_kind):
            with pytest.raises(TopologyError):
                method("missing")
        with pytest.raises(TopologyError):
            tree.path_from_root("missing")
        with pytest.raises(TopologyError):
            tree.subtree_leaves("missing")

    def test_hops_from_unknown_ids_raise_value_error(self, tree):
        # TopologyError subclasses ValueError so unvalidated node-id
        # probes can catch the builtin; the message names the id.
        with pytest.raises(ValueError, match="missing"):
            tree.hops_from("missing", "leaf1")
        with pytest.raises(ValueError, match="missing"):
            tree.hops_from("root", "missing")

    def test_subtree_leaves_unknown_id_raises_value_error(self, tree):
        with pytest.raises(ValueError, match="missing"):
            tree.subtree_leaves("missing")

    def test_distance(self, tree):
        assert tree.distance("leaf1", "leaf1") == 0
        assert tree.distance("a", "leaf1") == 2
        assert tree.distance("leaf1", "a") == 2
        assert tree.distance("d", "leaf1") == 3  # via a
        assert tree.distance("e", "leaf1") == 5  # via root
        assert tree.distance("root", "e") == 2

    def test_distance_unknown_id_rejected(self, tree):
        with pytest.raises(ValueError, match="missing"):
            tree.distance("missing", "leaf1")

    def test_contains_and_len(self, tree):
        assert "a" in tree
        assert "missing" not in tree
        assert len(tree) == 7


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=5))
def test_chain_and_fanout_invariants(chain_length, fanout):
    """Chains of any length with leaf fanout keep depth bookkeeping exact."""
    parents = {}
    previous = "root"
    for i in range(chain_length):
        node = f"n{i}"
        parents[node] = previous
        previous = node
    for j in range(fanout):
        parents[f"leaf{j}"] = previous
    tree = RoutingTree("root", parents)
    assert tree.depth(previous) == chain_length
    for j in range(fanout):
        leaf = f"leaf{j}"
        assert tree.depth(leaf) == chain_length + 1
        path = tree.path_from_root(leaf)
        assert path[0] == "root" and path[-1] == leaf
        assert len(path) == chain_length + 2
        # Depth increases by exactly one along the path.
        for step, node in enumerate(path):
            assert tree.depth(node) == step
    assert tree.leaves == {f"leaf{j}" for j in range(fanout)}
