"""Clock/units provenance checker: flow-based U001-U002."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name):
    return run_lint(
        [FIXTURES / name],
        config=LintConfig(),
        checker_names=["units"],
        base_dir=FIXTURES,
    )


class TestViolations:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_fixture("units_violations.py").findings

    def test_every_rule_fires(self, findings):
        assert {f.rule_id for f in findings} == {"U001", "U002"}

    def test_virtual_wall_mix(self, findings):
        flagged = [f for f in findings if f.rule_id == "U001"]
        assert len(flagged) == 1
        assert "virtual-clock seconds with wall-clock seconds" in (
            flagged[0].message
        )

    def test_bytes_time_mixes(self, findings):
        flagged = [f for f in findings if f.rule_id == "U002"]
        assert len(flagged) == 2  # one addition, one comparison


class TestCleanCode:
    def test_unit_respecting_arithmetic_passes(self):
        assert lint_fixture("units_clean.py").findings == []


class TestFlowSemantics:
    """Unit-level cases for label sources and conversion boundaries."""

    def run_snippet(self, tmp_path, code):
        path = tmp_path / "snippet.py"
        path.write_text(code)
        return run_lint(
            [path], checker_names=["units"], base_dir=tmp_path
        ).findings

    def test_wall_labels_flow_through_locals(self, tmp_path):
        code = (
            "import time\n"
            "def f(loop):\n"
            "    t0 = time.monotonic()\n"
            "    copied = t0\n"
            "    return loop.time() - copied\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["U001"]

    def test_running_loop_receiver_is_virtual(self, tmp_path):
        code = (
            "import asyncio, time\n"
            "def f():\n"
            "    return asyncio.get_running_loop().time() - "
            "time.perf_counter()\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["U001"]

    def test_rate_division_is_a_unit_boundary(self, tmp_path):
        code = (
            "def f(loop, miss_bytes, bandwidth):\n"
            "    return loop.time() + miss_bytes / bandwidth\n"
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_init_attribute_units_reach_methods(self, tmp_path):
        code = (
            "import time\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.started = time.perf_counter()\n"
            "    def skew(self, loop):\n"
            "        return loop.time() - self.started\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["U001"]

    def test_return_summary_carries_units(self, tmp_path):
        code = (
            "import time\n"
            "def wall_now():\n"
            "    return time.monotonic()\n"
            "def f(loop):\n"
            "    return loop.time() - wall_now()\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["U001"]

    def test_already_mixed_side_does_not_recascade(self, tmp_path):
        # The inner mix is reported once; the enclosing subtraction
        # whose one side already carries both families stays silent.
        code = (
            "import time\n"
            "def f(loop):\n"
            "    bad = loop.time() - time.monotonic()\n"
            "    return bad - time.monotonic()\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["U001"]


class TestRepoUnits:
    def test_repo_sources_keep_units_separate(self):
        repo = Path(__file__).parent.parent
        result = run_lint(
            [repo / "src"], checker_names=["units"], base_dir=repo
        )
        assert result.findings == []
