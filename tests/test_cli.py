"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def log_file(tmp_path):
    path = tmp_path / "access.log"
    code = main(
        [
            "generate",
            str(path),
            "--seed",
            "3",
            "--pages",
            "60",
            "--clients",
            "50",
            "--sessions",
            "250",
            "--days",
            "8",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_clf(self, log_file):
        lines = log_file.read_text().splitlines()
        assert len(lines) > 250
        assert '"GET /' in lines[0]

    def test_stdout_summary(self, tmp_path, capsys):
        path = tmp_path / "x.log"
        main(["generate", str(path), "--sessions", "100", "--days", "5",
              "--pages", "40", "--clients", "30"])
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "accesses" in out

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.log", tmp_path / "b.log"
        args = ["--seed", "9", "--pages", "40", "--clients", "30",
                "--sessions", "100", "--days", "5"]
        main(["generate", str(a)] + args)
        main(["generate", str(b)] + args)
        assert a.read_text() == b.read_text()

    def test_bad_config_errors(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "x.log"), "--sessions", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_full_pipeline(self, log_file, capsys):
        code = main(["analyze", str(log_file), "--local-domain", "campus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "document classes" in out
        assert "block analysis" in out
        assert "lambda" in out

    def test_no_clean_flag(self, log_file, capsys):
        main(["analyze", str(log_file), "--no-clean"])
        out = capsys.readouterr().out
        assert "cleaned:" not in out

    def test_missing_file(self, capsys):
        code = main(["analyze", "/nonexistent.log"])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_custom_block_size(self, log_file, capsys):
        main(["analyze", str(log_file), "--block-kb", "64"])
        assert "64 KB block" in capsys.readouterr().out


class TestSimulate:
    def test_default_sweep(self, log_file, capsys):
        code = main(["simulate", str(log_file), "--local-domain", "campus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "policy" in out
        assert "0.25" in out

    def test_adaptive_budget(self, log_file, capsys):
        code = main(
            ["simulate", str(log_file), "--adaptive-budget", "0.05"]
        )
        assert code == 0
        assert "adaptive@5%" in capsys.readouterr().out

    def test_negative_adaptive_budget(self, log_file):
        assert main(["simulate", str(log_file), "--adaptive-budget", "-1"]) == 2

    def test_digest_fp_requires_cooperative(self, log_file, capsys):
        code = main(["simulate", str(log_file), "--digest-fp", "0.01"])
        assert code == 2
        assert "requires --cooperative" in capsys.readouterr().err

    def test_bloom_cooperative(self, log_file, capsys):
        code = main(
            [
                "simulate",
                str(log_file),
                "--cooperative",
                "--digest-fp",
                "0.01",
                "--threshold",
                "0.5",
            ]
        )
        assert code == 0
        assert "cooperative clients" in capsys.readouterr().out

    def test_explicit_thresholds(self, log_file, capsys):
        main(
            [
                "simulate",
                str(log_file),
                "--threshold",
                "0.5",
                "--train-days",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert "0.50" in out
        assert "4.0 training days" in out

    def test_cooperative_flag(self, log_file, capsys):
        main(["simulate", str(log_file), "--cooperative", "--threshold", "0.5"])
        assert "cooperative clients" in capsys.readouterr().out

    def test_max_size(self, log_file, capsys):
        code = main(
            ["simulate", str(log_file), "--max-size-kb", "8", "--threshold", "0.5"]
        )
        assert code == 0

    def test_invalid_threshold(self, log_file, capsys):
        code = main(["simulate", str(log_file), "--threshold", "1.5"])
        assert code == 2

    def test_bad_train_days(self, log_file, capsys):
        code = main(["simulate", str(log_file), "--train-days", "100000"])
        assert code == 2


class TestPlan:
    def test_single_server(self, log_file, capsys):
        code = main(["plan", f"www={log_file}", "--budget-mb", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "www" in out
        assert "intercepts" in out

    def test_name_defaults_to_stem(self, log_file, capsys):
        main(["plan", str(log_file), "--budget-mb", "2"])
        assert "access" in capsys.readouterr().out

    def test_multiple_servers(self, log_file, tmp_path, capsys):
        other = tmp_path / "other.log"
        main(["generate", str(other), "--seed", "5", "--pages", "40",
              "--clients", "30", "--sessions", "120", "--days", "6"])
        code = main(
            ["plan", f"a={log_file}", f"b={other}", "--budget-mb", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "a" in out and "b" in out

    def test_bad_budget(self, log_file, capsys):
        code = main(["plan", str(log_file), "--budget-mb", "-1"])
        assert code == 2

    def test_missing_log(self, capsys):
        code = main(["plan", "x=/missing.log", "--budget-mb", "1"])
        assert code == 2


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_no_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestSweep:
    def test_table_output(self, log_file, capsys):
        code = main(
            ["sweep", str(log_file), "--thresholds", "0.5,0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "threshold sweep" in out
        assert "0.25" in out

    def test_csv_output(self, log_file, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            ["sweep", str(log_file), "--thresholds", "0.5", "--csv", str(csv_path)]
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("threshold,")
        assert len(lines) == 2

    def test_bad_threshold_list(self, log_file):
        assert main(["sweep", str(log_file), "--thresholds", "abc"]) == 2

    def test_out_of_range_threshold(self, log_file):
        assert main(["sweep", str(log_file), "--thresholds", "1.5"]) == 2

    def test_empty_threshold_list(self, log_file):
        assert main(["sweep", str(log_file), "--thresholds", ""]) == 2


class TestEdgeCases:
    def test_analyze_log_emptied_by_cleaning(self, tmp_path, capsys):
        path = tmp_path / "scripts.log"
        path.write_text(
            'h - - [15/Jan/1995:12:00:00 +0000] "GET /cgi-bin/x HTTP/1.0" 200 10\n'
        )
        code = main(["analyze", str(path)])
        assert code == 2
        assert "removed every request" in capsys.readouterr().err

    def test_analyze_unparsable_log(self, tmp_path, capsys):
        path = tmp_path / "garbage.log"
        path.write_text("not a log\nnope\n")
        code = main(["analyze", str(path)])
        assert code == 2
        assert "no parsable" in capsys.readouterr().err

    def test_plan_name_with_equals_in_path(self, log_file, capsys):
        code = main(["plan", f"srv={log_file}", "--budget-mb", "1"])
        assert code == 0
        assert "srv" in capsys.readouterr().out

    def test_analyze_with_sampling(self, log_file, capsys):
        code = main(["analyze", str(log_file), "--sample", "0.5"])
        assert code == 0
        assert "sampled 50% of clients" in capsys.readouterr().out

    def test_analyze_bad_sample_fraction(self, log_file, capsys):
        code = main(["analyze", str(log_file), "--sample", "2.0"])
        assert code == 2


class TestFit:
    def test_prints_configuration(self, log_file, capsys):
        code = main(["fit", str(log_file), "--local-domain", "campus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fitted from" in out
        assert "popularity_alpha" in out
        assert "(assumed default)" in out

    def test_regenerate_twin(self, log_file, tmp_path, capsys):
        twin = tmp_path / "twin.log"
        code = main(["fit", str(log_file), "--regenerate", str(twin)])
        assert code == 0
        assert twin.exists()
        assert "synthetic twin" in capsys.readouterr().out
        assert len(twin.read_text().splitlines()) > 50

    def test_too_small_log(self, tmp_path, capsys):
        path = tmp_path / "tiny.log"
        path.write_text(
            'h - - [15/Jan/1995:12:00:00 +0000] "GET /a HTTP/1.0" 200 10\n'
        )
        code = main(["fit", str(path)])
        assert code == 2
