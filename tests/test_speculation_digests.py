"""Tests for Bloom-filter cache digests."""

import pytest

from repro.config import BASELINE
from repro.core import Experiment
from repro.errors import PolicyError, SimulationError
from repro.speculation import (
    BloomFilter,
    ThresholdPolicy,
    digest_size_bytes,
)
from repro.workload import SyntheticTraceGenerator, preset


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(100, 0.01)
        items = [f"/doc{i}" for i in range(100)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_nominal(self):
        bloom = BloomFilter.from_items(
            (f"/doc{i}" for i in range(200)), 0.05, capacity=200
        )
        false_positives = sum(
            1 for i in range(5000) if f"/other{i}" in bloom
        )
        assert false_positives / 5000 == pytest.approx(0.05, abs=0.04)

    def test_lower_fp_rate_bigger_filter(self):
        loose = BloomFilter(100, 0.1)
        tight = BloomFilter(100, 0.001)
        assert tight.n_bits > loose.n_bits

    def test_clear(self):
        bloom = BloomFilter(10, 0.01)
        bloom.add("/a")
        bloom.clear()
        assert "/a" not in bloom
        assert bloom.count == 0

    def test_count(self):
        bloom = BloomFilter(10, 0.01)
        bloom.add("/a")
        bloom.add("/b")
        assert bloom.count == 2

    def test_capacity_recorded(self):
        assert BloomFilter(123, 0.01).capacity == 123

    def test_deterministic_per_seed(self):
        a = BloomFilter.from_items(["/x", "/y"], 0.1, seed=5)
        b = BloomFilter.from_items(["/x", "/y"], 0.1, seed=5)
        assert ("/z" in a) == ("/z" in b)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(16, 0.01)
        assert "/a" not in bloom

    def test_invalid_parameters(self):
        with pytest.raises(PolicyError):
            BloomFilter(0, 0.01)
        with pytest.raises(PolicyError):
            BloomFilter(10, 0.0)
        with pytest.raises(PolicyError):
            BloomFilter(10, 1.0)


class TestDigestSize:
    def test_exact_digest_linear(self):
        assert digest_size_bytes(100) == 2400.0
        assert digest_size_bytes(0) == 0.0

    def test_bloom_much_smaller(self):
        exact = digest_size_bytes(1000)
        bloom = digest_size_bytes(1000, fp_rate=0.01)
        assert bloom < exact / 10

    def test_tighter_fp_costs_more(self):
        assert digest_size_bytes(100, fp_rate=0.001) > digest_size_bytes(
            100, fp_rate=0.1
        )

    def test_invalid(self):
        with pytest.raises(PolicyError):
            digest_size_bytes(-1)
        with pytest.raises(PolicyError):
            digest_size_bytes(10, fp_rate=2.0)


class TestSimulatorIntegration:
    @pytest.fixture(scope="class")
    def experiment(self):
        trace = SyntheticTraceGenerator(preset("small", 9)).generate()
        return Experiment(trace, BASELINE, train_days=15)

    def test_requires_cooperative(self, experiment):
        with pytest.raises(SimulationError):
            experiment.simulator.run(
                ThresholdPolicy(threshold=0.25), digest_fp_rate=0.01
            )

    def test_bloom_between_plain_and_exact_on_traffic(self, experiment):
        policy = ThresholdPolicy(threshold=0.25)
        plain, __ = experiment.evaluate(policy)
        exact, __ = experiment.evaluate(policy, cooperative=True)
        bloom, __ = experiment.evaluate(
            policy, cooperative=True, digest_fp_rate=0.01
        )
        # Bloom keeps most of the cooperative bandwidth savings.
        assert bloom.bandwidth_ratio < plain.bandwidth_ratio
        assert bloom.bandwidth_ratio <= exact.bandwidth_ratio * 1.05

    def test_aggressive_fp_costs_gains(self, experiment):
        policy = ThresholdPolicy(threshold=0.25)
        exact, exact_run = experiment.evaluate(policy, cooperative=True)
        lossy, lossy_run = experiment.evaluate(
            policy, cooperative=True, digest_fp_rate=0.3
        )
        # False positives suppress useful pushes: fewer speculated docs
        # and weaker gains.
        assert (
            lossy_run.metrics.speculated_documents
            < exact_run.metrics.speculated_documents
        )
        assert lossy.server_load_reduction <= exact.server_load_reduction
