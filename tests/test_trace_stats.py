"""Tests for trace statistics."""

from repro.trace import Request, Trace, summarize
from repro.trace.stats import popularity_share


def req(t, client, doc, size=10, remote=True):
    return Request(timestamp=t, client=client, doc_id=doc, size=size, remote=remote)


class TestPopularityShare:
    def test_all_one_document(self):
        trace = Trace([req(i, "c", "/a") for i in range(10)])
        assert popularity_share(trace, 0.10) == 1.0

    def test_uniform_two_docs(self):
        trace = Trace(
            [req(0, "c", "/a"), req(1, "c", "/b"), req(2, "c", "/a"), req(3, "c", "/b")]
        )
        # top 50% of 2 docs = 1 doc = half the requests
        assert popularity_share(trace, 0.5) == 0.5

    def test_at_least_one_document_counted(self):
        trace = Trace([req(0, "c", "/a"), req(1, "c", "/b")])
        # 0.1% of 2 docs rounds up to 1 document.
        assert popularity_share(trace, 0.001) == 0.5

    def test_empty_trace(self):
        assert popularity_share(Trace([]), 0.1) == 0.0

    def test_skewed(self):
        requests = [req(float(i), "c", "/hot") for i in range(9)]
        requests.append(req(9.0, "c", "/cold"))
        trace = Trace(requests)
        assert popularity_share(trace, 0.5) == 0.9

    def test_population_is_catalog_not_requested_docs(self):
        """Regression: ranks were taken over *requested* docs only.

        With a 20-document catalog of which one was requested, the old
        code computed top_n from the 1 requested doc and reported the
        hot doc as "top 10%" concentration — wildly overstating skew
        on sparse traces. The population is now the catalog size.
        """
        from repro.trace.records import Document

        documents = [Document(f"/d{i}", 10) for i in range(20)]
        requests = [req(float(i), "c", "/d0") for i in range(8)]
        requests += [req(8.0 + i, "c", f"/d{i}") for i in range(1, 5)]
        trace = Trace(requests, documents)
        # top 5% of 20 catalog docs = 1 doc = the 8 hot requests.
        assert popularity_share(trace, 0.05) == 8 / 12
        # top 25% = 5 docs = every request.
        assert popularity_share(trace, 0.25) == 1.0

    def test_population_falls_back_to_requested_docs(self):
        # No explicit catalog: population is the requested docs, as
        # before the catalog was threaded through.
        trace = Trace([req(0, "c", "/a"), req(1, "c", "/b")])
        assert popularity_share(trace, 0.5) == 0.5


class TestSummarize:
    def test_counts(self):
        trace = Trace(
            [
                req(0, "a", "/1", size=5),
                req(1, "a", "/2", size=10),
                req(5000, "b", "/1", size=5, remote=False),
            ]
        )
        stats = summarize(trace, session_timeout=1800.0)
        assert stats.num_requests == 3
        assert stats.num_clients == 2
        assert stats.num_documents == 2
        assert stats.num_sessions == 2  # a's pair, b's single
        assert stats.total_bytes == 20
        assert stats.remote_fraction == 2 / 3
        assert stats.mean_session_length == 1.5

    def test_empty(self):
        stats = summarize(Trace([]))
        assert stats.num_requests == 0
        assert stats.remote_fraction == 0.0
        assert stats.mean_session_length == 0.0

    def test_format_contains_fields(self):
        stats = summarize(Trace([req(0, "a", "/1")]))
        text = stats.format()
        assert "requests" in text
        assert "remote fraction" in text
