"""End-to-end integration tests across subsystems."""

import math

import pytest

from repro.config import BASELINE, BaselineConfig
from repro.core import (
    DisseminationPlanner,
    Experiment,
    SpeculativeServer,
    evaluate_thresholds,
)
from repro.dissemination import DisseminationSimulator
from repro.dissemination.simulator import select_popular_bytes
from repro.popularity import PopularityProfile, fit_lambda
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
    compare,
    evaluate_policy_predictions,
)
from repro.topology import build_clientele_tree, greedy_tree_placement
from repro.trace import TraceCleaner, read_clf, write_clf
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


@pytest.fixture(scope="module")
def generator():
    return SyntheticTraceGenerator(
        GeneratorConfig(
            seed=99, n_pages=100, n_clients=120, n_sessions=1000, duration_days=24
        )
    )


@pytest.fixture(scope="module")
def trace(generator):
    return generator.generate()


class TestCLFRoundTripPipeline:
    def test_simulation_survives_clf_roundtrip(self, trace):
        """Serialize to CLF, parse back, clean, simulate.

        CLF timestamps have one-second resolution (as the paper's 1995
        logs did), so sub-second gaps collapse; counts and bytes must
        survive exactly, simulation ratios approximately."""
        lines = list(write_clf(trace))
        parsed = read_clf(lines, local_domains=["campus"])
        cleaned, __ = TraceCleaner(canonicalize=False).clean(parsed)
        assert len(cleaned) == len(trace)
        assert cleaned.total_bytes() == trace.total_bytes()
        assert cleaned.clients() == trace.clients()

        direct = Experiment(trace, BASELINE, train_days=12)
        roundtrip = Experiment(cleaned, BASELINE, train_days=12)
        ratios_a, __ = direct.evaluate(ThresholdPolicy(threshold=0.25))
        ratios_b, __ = roundtrip.evaluate(ThresholdPolicy(threshold=0.25))
        assert ratios_a.server_load_ratio == pytest.approx(
            ratios_b.server_load_ratio, abs=0.05
        )
        assert ratios_a.bandwidth_ratio == pytest.approx(
            ratios_b.bandwidth_ratio, abs=0.05
        )


class TestBothProtocolsTogether:
    def test_dissemination_then_speculation(self, trace, generator):
        """The two protocols compose: dissemination shields the wide
        area, speculation then cuts residual demand at the proxy."""
        tree = build_clientele_tree(trace, backbone_hops=2)
        profile = PopularityProfile.from_trace(trace.remote_only())
        demand = {}
        for request in trace.remote_only():
            demand[request.client] = demand.get(request.client, 0.0) + request.size
        proxies = greedy_tree_placement(tree, demand, 4)
        documents = select_popular_bytes(
            profile, 0.10 * generator.site.total_bytes()
        )
        dissemination = DisseminationSimulator(trace, tree).simulate(
            proxies, documents
        )
        assert dissemination.savings_fraction > 0.0

        experiment = Experiment(trace, BASELINE, train_days=12)
        ratios, __ = experiment.evaluate(ThresholdPolicy(threshold=0.25))
        assert ratios.server_load_reduction > 0.0

    def test_planner_matches_profile_lambda(self, trace):
        planner = DisseminationPlanner()
        planner.add_server("www", trace)
        model = planner.server_model("www")
        profile = PopularityProfile.from_trace(trace)
        curve_bytes, coverage = profile.coverage_curve()
        assert model.lam == pytest.approx(fit_lambda(curve_bytes, coverage))


class TestServerFacadeAgainstSimulator:
    def test_facade_and_simulator_agree_on_push_sets(self, trace):
        """SpeculativeServer.respond must propose exactly what the
        simulator's policy selects for the same model and threshold."""
        split = trace.start_time + 12 * 86_400
        train = trace.window(trace.start_time, split)
        model = DependencyModel.estimate(train, window=5.0)

        config = BaselineConfig(threshold=0.3)
        server = SpeculativeServer(trace.documents, config)
        server.fit(train)
        policy = ThresholdPolicy(threshold=0.3)

        sample = {r.doc_id for r in trace}
        checked = 0
        for doc_id in sorted(sample)[:40]:
            facade = server.respond(doc_id).speculated
            direct = tuple(
                c.doc_id for c in policy.select(doc_id, model, trace.documents)
            )
            assert facade == direct
            checked += 1
        assert checked == 40


class TestPredictionQualityConsistency:
    def test_precision_tracks_wasted_bytes(self, trace):
        """Diagnostic precision and simulator waste measure the same
        phenomenon: a high-precision policy wastes few pushed bytes."""
        experiment = Experiment(trace, BASELINE, train_days=12)
        strict = ThresholdPolicy(threshold=0.8)
        loose = ThresholdPolicy(threshold=0.05)

        strict_quality = evaluate_policy_predictions(
            experiment.test, experiment.model, strict
        )
        loose_quality = evaluate_policy_predictions(
            experiment.test, experiment.model, loose
        )
        assert strict_quality.precision >= loose_quality.precision

        __, strict_run = experiment.evaluate(strict)
        __, loose_run = experiment.evaluate(loose)

        def waste(run):
            pushed = run.metrics.speculated_bytes
            return run.metrics.wasted_bytes / pushed if pushed else 0.0

        assert waste(strict_run) <= waste(loose_run) + 0.02


class TestSweepInternalConsistency:
    def test_ratio_definitions_hold(self, trace):
        """Recompute the four ratios from raw metrics and match."""
        experiment = Experiment(trace, BASELINE, train_days=12)
        points = evaluate_thresholds(experiment, [0.5, 0.1])
        baseline = experiment.baseline()
        for point in points:
            m = point.run.metrics
            b = baseline.metrics
            assert point.ratios.bandwidth_ratio == pytest.approx(
                m.bytes_sent / b.bytes_sent
            )
            assert point.ratios.server_load_ratio == pytest.approx(
                m.server_requests / b.server_requests
            )
            assert point.ratios.service_time_ratio == pytest.approx(
                m.service_time / b.service_time
            )
            assert point.ratios.miss_rate_ratio == pytest.approx(
                m.miss_rate / b.miss_rate
            )

    def test_accessed_bytes_invariant(self, trace):
        """Speculation never changes what clients *access*."""
        experiment = Experiment(trace, BASELINE, train_days=12)
        baseline = experiment.baseline()
        __, run = experiment.evaluate(ThresholdPolicy(threshold=0.2))
        assert run.metrics.accessed_bytes == baseline.metrics.accessed_bytes
        assert run.accesses == baseline.accesses
