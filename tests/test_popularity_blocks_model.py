"""Tests for the block analysis (Fig. 1) and the exponential model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.popularity import (
    ExponentialPopularityModel,
    analyze_blocks,
    fit_lambda,
)
from repro.popularity.expmodel import PAPER_LAMBDA
from repro.trace import Request, Trace


def req(t, doc, size, remote=True):
    return Request(timestamp=t, client="c", doc_id=doc, size=size, remote=remote)


class TestBlockAnalysis:
    def _trace(self):
        # Three docs of 100 bytes each; block size 150 -> one per block.
        return Trace(
            [req(0, "/a", 100)] * 1
            + [req(i, "/a", 100) for i in range(5)]
            + [req(10 + i, "/b", 100) for i in range(3)]
            + [req(20, "/c", 100)],
            sort=True,
        )

    def test_blocks_ordered_by_popularity(self):
        analysis = analyze_blocks(self._trace(), block_bytes=150)
        requests = [b.requests for b in analysis.blocks]
        assert requests == sorted(requests, reverse=True)

    def test_fractions_sum_to_one(self):
        analysis = analyze_blocks(self._trace(), block_bytes=150)
        assert sum(b.request_fraction for b in analysis.blocks) == pytest.approx(1.0)

    def test_bandwidth_saved_monotone_to_one(self):
        analysis = analyze_blocks(self._trace(), block_bytes=150)
        saved = analysis.bandwidth_saved
        assert np.all(np.diff(saved) >= 0)
        assert saved[-1] == pytest.approx(1.0)

    def test_block_packing_respects_size(self):
        trace = Trace([req(i, f"/d{i}", 60) for i in range(6)], sort=True)
        analysis = analyze_blocks(trace, block_bytes=150)
        for block in analysis.blocks:
            # Two 60-byte docs per 150-byte block.
            assert block.n_documents <= 2

    def test_oversized_document_gets_own_block(self):
        trace = Trace([req(0, "/huge", 1000), req(1, "/tiny", 10)])
        analysis = analyze_blocks(trace, block_bytes=100)
        assert analysis.blocks[0].n_documents == 1
        assert analysis.blocks[0].bytes == 1000

    def test_remote_only_filtering(self):
        trace = Trace([req(0, "/a", 100), req(1, "/b", 100, remote=False)])
        analysis = analyze_blocks(trace, block_bytes=1000)
        assert analysis.blocks[0].requests == 1  # only the remote one

    def test_top_block_share(self):
        analysis = analyze_blocks(self._trace(), block_bytes=150)
        assert analysis.top_block_request_share == pytest.approx(6 / 10)

    def test_share_of_top_fraction(self):
        analysis = analyze_blocks(self._trace(), block_bytes=150)
        assert analysis.share_of_top_fraction(1.0) == pytest.approx(1.0)
        assert analysis.share_of_top_fraction(0.01) == pytest.approx(
            analysis.top_block_request_share
        )

    def test_invalid_block_bytes(self):
        with pytest.raises(ReproError):
            analyze_blocks(self._trace(), block_bytes=0)

    def test_paper_shape_on_skewed_trace(self):
        """A Zipf-like trace shows the paper's concentration: the top
        block dominates and the saved-bandwidth curve is concave."""
        rng = np.random.default_rng(0)
        docs = [f"/d{i}" for i in range(200)]
        weights = np.arange(1, 201.0) ** -1.4
        weights /= weights.sum()
        picks = rng.choice(200, size=20_000, p=weights)
        trace = Trace(
            [req(float(i), docs[k], 2048) for i, k in enumerate(picks)], sort=True
        )
        analysis = analyze_blocks(trace)
        assert analysis.top_block_request_share > 0.3
        saved = analysis.bandwidth_saved
        increments = np.diff(np.concatenate([[0.0], saved]))
        assert increments[0] == max(increments)


class TestExponentialModel:
    def test_coverage_at_zero(self):
        assert ExponentialPopularityModel(1e-6).coverage(0) == 0.0

    def test_coverage_monotone(self):
        m = ExponentialPopularityModel(1e-6)
        assert m.coverage(1e6) < m.coverage(5e6) < 1.0

    def test_density_is_derivative(self):
        m = ExponentialPopularityModel(2e-6)
        b = 1e6
        eps = 1.0
        numeric = (m.coverage(b + eps) - m.coverage(b - eps)) / (2 * eps)
        assert m.density(b) == pytest.approx(numeric, rel=1e-4)

    def test_bytes_for_coverage_inverts(self):
        m = ExponentialPopularityModel(PAPER_LAMBDA)
        for target in (0.1, 0.5, 0.9, 0.99):
            assert m.coverage(m.bytes_for_coverage(target)) == pytest.approx(target)

    def test_effectiveness(self):
        assert ExponentialPopularityModel(0.5).effectiveness == 2.0

    def test_invalid_lambda(self):
        with pytest.raises(ReproError):
            ExponentialPopularityModel(0.0)

    def test_negative_budget(self):
        with pytest.raises(ReproError):
            ExponentialPopularityModel(1e-6).coverage(-1)

    def test_invalid_target_coverage(self):
        with pytest.raises(ReproError):
            ExponentialPopularityModel(1e-6).bytes_for_coverage(1.0)


class TestFitLambda:
    def test_recovers_exact_exponential(self):
        lam = 3.3e-7
        b = np.linspace(1e5, 2e7, 50)
        h = 1.0 - np.exp(-lam * b)
        assert fit_lambda(b, h) == pytest.approx(lam, rel=1e-6)

    @given(st.floats(min_value=1e-8, max_value=1e-4))
    def test_recovers_any_lambda(self, lam):
        b = np.linspace(1.0, 5.0 / lam, 40)
        h = 1.0 - np.exp(-lam * b)
        assert fit_lambda(b, h) == pytest.approx(lam, rel=1e-3)

    def test_saturated_tail_discarded(self):
        lam = 1e-6
        b = np.linspace(1e5, 1e8, 100)  # deep into saturation
        h = np.minimum(1.0 - np.exp(-lam * b), 1.0)
        assert fit_lambda(b, h) == pytest.approx(lam, rel=0.01)

    def test_fully_saturated_curve_still_fits(self):
        b = np.array([1e6, 2e6])
        h = np.array([1.0, 1.0])
        lam = fit_lambda(b, h)
        assert lam > 0

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            fit_lambda(np.array([1.0, 2.0]), np.array([0.5]))

    def test_empty(self):
        with pytest.raises(ReproError):
            fit_lambda(np.array([]), np.array([]))

    def test_invalid_coverage_range(self):
        with pytest.raises(ReproError):
            fit_lambda(np.array([1.0]), np.array([1.5]))

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(1)
        lam = 6.247e-7
        b = np.linspace(1e5, 6e6, 60)
        h = np.clip(1.0 - np.exp(-lam * b) + rng.normal(0, 0.01, 60), 0, 1)
        assert fit_lambda(b, h) == pytest.approx(lam, rel=0.08)
