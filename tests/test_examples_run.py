"""Smoke-run every example script end to end.

The docs-consistency suite checks the examples *compile*; this one runs
them (they are the README's promises).  Each example is deterministic
and finishes in seconds.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_cover_both_protocols():
    """The example set exercises speculation and dissemination APIs."""
    sources = "\n".join(path.read_text() for path in EXAMPLES)
    assert "ThresholdPolicy" in sources or "Experiment" in sources
    assert "DisseminationPlanner" in sources or "symmetric_storage" in sources
