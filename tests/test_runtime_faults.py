"""Fault injection, resilience mechanisms, and failure-path regressions.

Covers the four failure-path bugs (pending-future leak on cancellation,
handler crashes stranding requesters, protocol errors killing client
workers, retry double-counting) plus the chaos subsystem: breaker state
machine, fault plans, stale serving during partitions, miss-queue
recovery, and the end-to-end ``repro chaos --smoke`` invariants.
"""

import asyncio
import json

import pytest

from repro.errors import RuntimeProtocolError, SimulationError, TransportError
from repro.runtime import (
    BackoffPolicy,
    CircuitBreaker,
    DuplicateFilter,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InMemoryNetwork,
    LoadConfig,
    LoadGenerator,
    MetricsRegistry,
    OnlineDependencyEstimator,
    OriginServer,
    ProxyNode,
    execute_chaos_smoke,
    run_virtual,
    verify_conservation,
)
from repro.runtime.loadgen import ClientRoute
from repro.runtime.messages import Message, make_request, make_response
from repro.runtime.resilience import retry_rng
from repro.trace.records import Document, Request


def catalog(*sizes: int) -> dict[str, Document]:
    """A tiny catalog: /doc-0, /doc-1, ... with the given sizes."""
    return {
        f"/doc-{index}": Document(doc_id=f"/doc-{index}", size=size)
        for index, size in enumerate(sizes)
    }


def fresh_origin(documents: dict[str, Document], metrics=None) -> OriginServer:
    estimator = OnlineDependencyEstimator(learn=True)
    return OriginServer(documents, estimator=estimator, metrics=metrics)


class TestEndpointRegressions:
    def test_cancelled_call_does_not_leak_pending(self):
        # Regression: a call whose awaiting task is cancelled used to
        # leave its future in _pending forever (session-long leak).
        async def scenario():
            network = InMemoryNetwork(seed=0)
            server = network.endpoint("server")
            client = network.endpoint("client")
            server.start(None)  # a server that never answers
            client.start(None)
            request = make_request("client", client.next_request_id(), "/d", 0.0)
            caller = asyncio.get_running_loop().create_task(
                client.call("server", request, timeout=None)
            )
            await asyncio.sleep(0.1)
            assert len(client._pending) == 1
            caller.cancel()
            with pytest.raises(asyncio.CancelledError):
                await caller
            pending = dict(client._pending)
            await server.close()
            await client.close()
            return pending

        assert run_virtual(scenario()) == {}

    def test_timeout_also_clears_pending(self):
        async def scenario():
            network = InMemoryNetwork(seed=0)
            server = network.endpoint("server")
            client = network.endpoint("client")
            server.start(None)
            client.start(None)
            request = make_request("client", client.next_request_id(), "/d", 0.0)
            with pytest.raises(TransportError, match="timed out"):
                await client.call("server", request, timeout=0.5)
            pending = dict(client._pending)
            await server.close()
            await client.close()
            return pending

        assert run_virtual(scenario()) == {}

    def test_handler_crash_becomes_error_reply(self):
        # Regression: a raising handler used to kill the dispatch task
        # silently, stranding the requester until its timeout.
        async def scenario():
            network = InMemoryNetwork(seed=0)
            server = network.endpoint("server")
            client = network.endpoint("client")

            async def broken(message):
                raise ValueError("boom")

            server.start(broken)
            client.start(None)
            loop = asyncio.get_running_loop()
            started = loop.time()
            request = make_request("client", client.next_request_id(), "/d", 0.0)
            with pytest.raises(RuntimeProtocolError, match="handler failed"):
                await client.call("server", request, timeout=60.0)
            elapsed = loop.time() - started
            await server.close()
            await client.close()
            return elapsed, network.handler_errors

        elapsed, handler_errors = run_virtual(scenario())
        # The error reply arrives at network speed, not at the timeout.
        assert elapsed < 1.0
        assert handler_errors == 1

    def test_handler_transport_error_keeps_its_kind(self):
        async def scenario():
            network = InMemoryNetwork(seed=0)
            server = network.endpoint("server")
            client = network.endpoint("client")

            async def flaky(message):
                raise TransportError("upstream gone")

            server.start(flaky)
            client.start(None)
            request = make_request("client", client.next_request_id(), "/d", 0.0)
            with pytest.raises(TransportError, match="handler failed"):
                await client.call("server", request, timeout=60.0)
            await server.close()
            await client.close()

        run_virtual(scenario())


class TestLoadgenFailurePaths:
    def run_session(self, requests, documents, *, fault_plan=None, load=None):
        """One single-client session against a live origin."""

        async def scenario():
            metrics = MetricsRegistry()
            network = InMemoryNetwork(seed=0)
            injector_task = None
            if fault_plan is not None:
                injector = FaultInjector(fault_plan, metrics=metrics)
                network.attach_faults(injector)
                injector_task = asyncio.get_running_loop().create_task(
                    injector.run()
                )
            origin_endpoint = network.endpoint("home-server")
            origin = fresh_origin(documents, metrics)
            origin_endpoint.start(origin.handle)
            generator = LoadGenerator(
                network,
                {"c1": ClientRoute(target="home-server", target_depth=0, depth=1)},
                {"c1": requests},
                origin_name="home-server",
                load=load if load is not None else LoadConfig(),
                metrics=metrics,
            )
            try:
                await generator.run()
            finally:
                if injector_task is not None:
                    injector_task.cancel()
                    await asyncio.gather(injector_task, return_exceptions=True)
                await origin_endpoint.close()
            for name, value in network.stats().items():
                metrics.counter(f"network.{name}").inc(value)
            return metrics.snapshot()

        return run_virtual(scenario())

    def test_protocol_error_does_not_kill_the_worker(self):
        # Regression: a RuntimeProtocolError (e.g. unknown document)
        # used to escape _attempt and kill the whole client worker, so
        # every later request of that session silently vanished.
        documents = catalog(4096)
        requests = [
            Request(timestamp=0.0, client="c1", doc_id="/no-such", size=100),
            Request(timestamp=9_000.0, client="c1", doc_id="/doc-0", size=4096),
        ]
        snapshot = self.run_session(requests, documents)
        counters = snapshot["counters"]
        assert counters["protocol_errors"] == 1
        assert counters["requests_failed"] == 1
        # The session survived: the second request was served normally.
        assert counters["accesses"] == 2
        assert counters["received_bytes"] == 4096

    def test_dropped_reply_retry_counts_as_duplicate_service(self):
        # Regression: a retry after a dropped reply used to double-count
        # origin load and bytes served.  The demand key makes the origin
        # serve the retry but book it as duplicate service.
        documents = catalog(4096)
        requests = [
            Request(timestamp=0.0, client="c1", doc_id="/doc-0", size=4096)
        ]
        # Drop every origin→client frame for the first attempt only; the
        # backoff retry lands after the window and gets through.
        plan = FaultPlan().drop_rate(
            1.0, at=0.0, until=0.3, target=("home-server", "c1")
        )
        load = LoadConfig(
            request_timeout=0.2,
            retries=2,
            backoff=BackoffPolicy(base=0.25, jitter=0.0),
        )
        snapshot = self.run_session(requests, documents, fault_plan=plan, load=load)
        counters = snapshot["counters"]
        assert counters["retries"] >= 1
        assert counters["origin.requests"] == 1  # fresh load counted once
        assert counters["origin.bytes_served"] == 4096
        assert counters["origin.duplicate_requests"] >= 1
        assert counters["origin.duplicate_bytes"] >= 4096
        assert counters["received_bytes"] == 4096
        # Loose conservation holds; strict must flag the duplicates.
        verify_conservation(snapshot)
        with pytest.raises(RuntimeProtocolError, match="strict"):
            verify_conservation(snapshot, strict=True)


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = {"now": 0.0}
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=overrides.get("failure_threshold", 2),
            reset_timeout=overrides.get("reset_timeout", 10.0),
            clock=lambda: clock["now"],
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        return breaker, clock, transitions

    def test_opens_after_threshold_and_fast_fails(self):
        breaker, clock, transitions = self.make()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert transitions == [("closed", "open")]

    def test_half_open_probe_single_flight(self):
        breaker, clock, transitions = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_failed_probe_reopens_with_fresh_window(self):
        breaker, clock, transitions = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # window restarted at t=10
        clock["now"] = 19.9
        assert not breaker.allow()
        clock["now"] = 20.0
        assert breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, clock, transitions = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(SimulationError):
            CircuitBreaker(reset_timeout=0.0)


class TestResiliencePrimitives:
    def test_backoff_grows_clamps_and_is_deterministic(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, max_delay=3.0, jitter=0.0)
        delays = [policy.delay(attempt, retry_rng(0, "x")) for attempt in range(5)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]
        jittered = BackoffPolicy(base=1.0, jitter=0.5)
        first = jittered.delay(0, retry_rng(7, "client-a"))
        again = jittered.delay(0, retry_rng(7, "client-a"))
        other = jittered.delay(0, retry_rng(7, "client-b"))
        assert first == again
        assert first != other
        assert 0.5 <= first <= 1.0

    def test_backoff_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(SimulationError):
            BackoffPolicy(jitter=1.5)

    def test_duplicate_filter_is_a_bounded_lru(self):
        duplicates = DuplicateFilter(capacity=2)
        assert not duplicates.seen("a")
        assert not duplicates.seen("b")
        assert duplicates.seen("a")  # refreshed, now most recent
        assert not duplicates.seen("c")  # evicts b
        assert not duplicates.seen("b")
        assert len(duplicates) == 2

    def test_origin_books_same_demand_key_once(self):
        documents = catalog(1000)
        origin = fresh_origin(documents)

        async def scenario():
            first = await origin.handle(
                make_request("c1", "c1#1", "/doc-0", 0.0, demand="c1@1")
            )
            second = await origin.handle(
                make_request("c1", "c1#2", "/doc-0", 0.0, demand="c1@1")
            )
            return first, second

        first, second = asyncio.run(scenario())
        assert first.payload["size"] == second.payload["size"] == 1000
        counters = origin.metrics.snapshot()["counters"]
        assert counters["origin.requests"] == 1
        assert counters["origin.bytes_served"] == 1000
        assert counters["origin.duplicate_requests"] == 1
        assert counters["origin.duplicate_bytes"] == 1000
        assert len(origin.recent_trace()) == 1  # history not inflated


class TestFaultPlan:
    def test_events_fire_in_time_order(self):
        plan = FaultPlan()
        plan.add(FaultEvent(at=5.0, action="heal", target=("a", "b")))
        plan.add(FaultEvent(at=1.0, action="partition", target=("a", "b")))
        plan.add(FaultEvent(at=1.0, action="crash", target=("c",)))
        ordered = plan.ordered()
        assert [event.action for event in ordered] == [
            "partition",
            "crash",
            "heal",
        ]

    def test_validation(self):
        with pytest.raises(SimulationError, match="unknown fault action"):
            FaultEvent(at=0.0, action="meteor")
        with pytest.raises(SimulationError, match="non-negative"):
            FaultEvent(at=-1.0, action="crash", target=("x",))
        with pytest.raises(SimulationError, match="restart_at"):
            FaultPlan().crash("x", at=5.0, restart_at=2.0)
        with pytest.raises(SimulationError, match="drop_rate"):
            FaultEvent(at=0.0, action="drop_rate", value=1.5)

    def test_injector_state_machine(self):
        crashed, restarted = [], []
        injector = FaultInjector(FaultPlan())
        injector.register_node(
            "p1",
            on_crash=lambda: crashed.append(True),
            on_restart=lambda: restarted.append(True),
        )
        injector.apply(FaultEvent(at=0.0, action="crash", target=("p1",)))
        assert injector.is_down("p1")
        assert injector.intercept("p1", "origin")
        assert injector.intercept("origin", "p1")
        assert crashed == [True]
        injector.apply(FaultEvent(at=1.0, action="restart", target=("p1",)))
        assert not injector.is_down("p1")
        assert not injector.intercept("p1", "origin")
        assert restarted == [True]

        injector.apply(
            FaultEvent(at=2.0, action="partition", target=("a", "b"))
        )
        assert injector.intercept("a", "b")
        assert injector.intercept("b", "a")
        assert not injector.intercept("a", "c")
        injector.apply(FaultEvent(at=3.0, action="heal", target=("a", "b")))
        assert not injector.intercept("a", "b")

        injector.apply(
            FaultEvent(
                at=4.0, action="latency_add", target=("origin",), value=0.5
            )
        )
        assert injector.extra_latency("origin", "c9") == 0.5
        assert injector.extra_latency("c9", "origin") == 0.5
        assert injector.extra_latency("a", "b") == 0.0
        assert injector.metrics.snapshot()["counters"]["faults.crash"] == 1

    def test_injected_drops_are_seeded(self):
        def sample(seed):
            injector = FaultInjector(FaultPlan(), seed=seed)
            injector.apply(FaultEvent(at=0.0, action="drop_rate", value=0.5))
            return [injector.intercept("a", "b") for _ in range(64)]

        assert sample(1) == sample(1)
        assert sample(1) != sample(2)
        assert any(sample(1)) and not all(sample(1))


class TestProxyResilience:
    def test_stale_serving_miss_queue_and_recovery(self):
        documents = catalog(1000, 2000, 3000, 4000)

        async def scenario():
            metrics = MetricsRegistry()
            network = InMemoryNetwork(seed=0)
            injector = FaultInjector(FaultPlan(), metrics=metrics)
            network.attach_faults(injector)
            origin_endpoint = network.endpoint("home-server")
            origin = fresh_origin(documents, metrics)
            origin_endpoint.start(origin.handle)
            proxy_endpoint = network.endpoint("region-0")
            proxy = ProxyNode(
                "region-0",
                proxy_endpoint,
                upstream="home-server",
                holdings={"/doc-0": 1000},
                metrics=metrics,
                upstream_timeout=0.2,
                breaker=CircuitBreaker(failure_threshold=1, reset_timeout=1.0),
                backoff=BackoffPolicy(base=0.05, jitter=0.0),
                forward_retries=0,
            )
            proxy_endpoint.start(proxy.handle)
            client = network.endpoint("c1")
            client.start(None)

            async def ask(doc_id, timeout=5.0):
                return await client.call(
                    "region-0",
                    make_request("c1", client.next_request_id(), doc_id, 0.0),
                    timeout=timeout,
                )

            # Cut the proxy off from the origin.
            injector.apply(
                FaultEvent(
                    at=0.0, action="partition", target=("home-server", "region-0")
                )
            )
            # A miss cannot be forwarded: transport error, breaker opens.
            with pytest.raises(TransportError, match="unreachable"):
                await ask("/doc-1")
            assert proxy.breaker.state == "open"
            assert proxy.queued_misses == ("/doc-1",)
            # Holdings keep being served while partitioned (stale serve).
            reply = await ask("/doc-0")
            assert reply.payload["size"] == 1000
            # Another miss fast-fails instead of burning a timeout.
            with pytest.raises(TransportError, match="circuit open"):
                await ask("/doc-2")
            assert proxy.queued_misses == ("/doc-1", "/doc-2")

            # Heal the link and wait out the breaker's reset window.
            injector.apply(
                FaultEvent(
                    at=1.0, action="heal", target=("home-server", "region-0")
                )
            )
            await asyncio.sleep(1.1)
            # The half-open probe succeeds, closes the breaker and kicks
            # off background recovery of the queued misses.
            reply = await ask("/doc-3")
            assert reply.payload["size"] == 4000
            assert proxy.breaker.state == "closed"
            await asyncio.sleep(5.0)  # let recovery fetch the queue
            holdings = proxy.holdings
            queued = proxy.queued_misses
            await proxy.close()
            await client.close()
            await proxy_endpoint.close()
            await origin_endpoint.close()
            return holdings, queued, metrics.snapshot()["counters"]

        holdings, queued, counters = run_virtual(scenario())
        assert queued == ()
        assert holdings["/doc-1"] == 2000
        assert holdings["/doc-2"] == 3000
        assert counters["proxy.region-0.stale_serves"] == 1
        assert counters["proxy.region-0.breaker_fast_fails"] == 1
        assert counters["proxy.region-0.queued_misses"] == 2
        assert counters["proxy.region-0.recovered_misses"] == 2
        assert counters["proxy.region-0.breaker.open"] >= 1
        assert counters["proxy.region-0.breaker.closed"] >= 1

    def test_crash_hook_loses_holdings(self):
        metrics = MetricsRegistry()
        network = InMemoryNetwork(seed=0)
        endpoint = network.endpoint("region-0")
        proxy = ProxyNode(
            "region-0",
            endpoint,
            upstream="home-server",
            holdings={"/doc-0": 1000, "/doc-1": 2000},
            metrics=metrics,
        )
        proxy.on_crash()
        assert proxy.holdings == {}
        proxy.on_restart()
        counters = metrics.snapshot()["counters"]
        assert counters["proxy.region-0.crashes"] == 1
        assert counters["proxy.region-0.holdings_lost"] == 2
        assert counters["proxy.region-0.restarts"] == 1


class TestChaosSmoke:
    @pytest.fixture(scope="class")
    def report(self):
        return execute_chaos_smoke(0)

    def test_ratios_survive_the_faults(self, report):
        assert report.max_ratio_divergence() <= 0.05
        report.require_resilience(0.05)

    def test_fault_timeline_recorded(self, report):
        labels = [label for _, label in report.fault_events]
        assert any("crash[" in label for label in labels)
        assert any("restart[" in label for label in labels)
        assert any("drop_rate[" in label for label in labels)

    def test_crash_recovery_chain_ran(self, report):
        counters = report.faulted.speculative["counters"]
        crashes = [
            name for name in counters if name.endswith(".crashes")
        ]
        assert crashes, "one proxy must have crashed"
        assert counters["daemon.repush_requests"] >= 1
        assert counters["daemon.repushes"] >= 1
        assert counters["network.frames_dropped"] > 0
        assert counters["retries"] > 0

    def test_conservation_on_every_snapshot(self, report):
        for snapshot in (
            report.clean.baseline,
            report.clean.speculative,
            report.faulted.baseline,
            report.faulted.speculative,
        ):
            verify_conservation(snapshot)
        # The clean pair is fault-free: strict equality must hold.
        verify_conservation(report.clean.speculative, strict=True)

    def test_chaos_smoke_is_deterministic(self, report):
        again = execute_chaos_smoke(0)
        dump = lambda snap: json.dumps(snap, sort_keys=True)  # noqa: E731
        assert dump(again.faulted.speculative) == dump(
            report.faulted.speculative
        )
        assert dump(again.faulted.baseline) == dump(report.faulted.baseline)
        assert again.fault_events == report.fault_events


class TestMessageShapes:
    def test_error_reply_round_trips_the_kind(self):
        message = Message(
            kind="error",
            sender="s",
            request_id="r",
            payload={"error_kind": "transport", "reason": "nope"},
        )
        from repro.runtime.messages import raise_if_error

        with pytest.raises(TransportError):
            raise_if_error(message)

    def test_demand_key_rides_the_payload(self):
        message = make_request("c", "c#1", "/d", 0.0, demand="c@42")
        assert message.payload["req"] == "c@42"
        bare = make_request("c", "c#2", "/d", 0.0)
        assert "req" not in bare.payload

    def test_response_body_bytes_include_riders(self):
        message = make_response(
            "s", "r", "/d", 100, "s", speculated=[("/e", 50), ("/f", 25)]
        )
        assert message.body_bytes == 175
