"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for __, name, ___ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # __main__ calls sys.exit on import; it is covered by the CLI tests.
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(item):
            undocumented.append(name)
        elif inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: {undocumented}"
