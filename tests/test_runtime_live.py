"""Live runtime end-to-end: determinism, batch parity, daemon, TCP."""

import asyncio
import json

import pytest

from repro.errors import RuntimeProtocolError, SimulationError, TransportError
from repro.runtime import (
    DisseminationDaemon,
    InMemoryNetwork,
    LiveSettings,
    MetricsRegistry,
    OnlineDependencyEstimator,
    OriginServer,
    ProxyNode,
    TcpServer,
    execute_loadtest,
    execute_smoke,
    run_virtual,
    tcp_call,
)
from repro.runtime.messages import Message, make_request
from repro.speculation.policies import ThresholdPolicy
from repro.workload.generator import GeneratorConfig, generate_trace

SMALL = GeneratorConfig(
    seed=2, n_pages=50, n_clients=40, n_sessions=250, duration_days=6
)


SETTINGS = LiveSettings(seed=3, budget_bytes=300_000.0)


@pytest.fixture(scope="module")
def report():
    return execute_loadtest(SMALL, SETTINGS, verify_batch=True)


class TestLoadtest:
    def test_same_seed_reproduces_snapshots(self, report):
        again = execute_loadtest(SMALL, SETTINGS, verify_batch=True)
        dump = lambda snap: json.dumps(snap, sort_keys=True)  # noqa: E731
        assert dump(again.baseline) == dump(report.baseline)
        assert dump(again.speculative) == dump(report.speculative)
        assert again.ratios == report.ratios

    def test_network_seed_changes_latencies_not_ratios(self, report):
        other = execute_loadtest(
            SMALL, LiveSettings(seed=4, budget_bytes=300_000.0)
        )
        # Decisions are seed-free; only float summation order may shift.
        assert other.ratios.bandwidth_ratio == report.ratios.bandwidth_ratio
        assert (
            other.ratios.server_load_ratio == report.ratios.server_load_ratio
        )
        assert other.ratios.service_time_ratio == pytest.approx(
            report.ratios.service_time_ratio
        )
        assert (
            other.speculative["histograms"]["request_latency"]
            != report.speculative["histograms"]["request_latency"]
        )

    def test_speculation_relieves_the_origin(self, report):
        base = report.baseline["counters"]
        spec = report.speculative["counters"]
        assert spec["origin_requests"] < base["origin_requests"]
        assert spec["proxy_requests"] > 0
        assert base.get("speculated_documents", 0) == 0
        assert spec["speculated_documents"] > 0
        assert report.disseminated_documents > 0
        # Speculation trades a little traffic for load and service time.
        assert report.ratios.server_load_ratio < 1.0
        assert report.ratios.service_time_ratio < 1.0
        assert report.ratios.miss_rate_ratio < 1.0

    def test_live_matches_batch_replay(self, report):
        assert report.batch_ratios is not None
        assert report.max_divergence() <= 0.05
        report.require_convergence(0.05)

    def test_divergence_raises_at_negative_tolerance(self, report):
        with pytest.raises(RuntimeProtocolError, match="diverge"):
            report.require_convergence(-1.0)

    def test_smoke_self_test_converges(self):
        smoke = execute_smoke(0)  # raises on >5% divergence
        assert smoke.batch_ratios is not None
        assert smoke.baseline["counters"]["accesses"] > 0

    def test_tiny_workload_rejected(self):
        tiny = GeneratorConfig(
            seed=0, n_pages=4, n_clients=2, n_sessions=1, duration_days=1
        )
        with pytest.raises(SimulationError):
            execute_loadtest(tiny)


class TestDaemon:
    def test_push_once_replaces_proxy_holdings(self):
        async def scenario():
            trace = generate_trace(
                5, n_pages=30, n_clients=10, n_sessions=80, duration_days=3
            ).remote_only()
            network = InMemoryNetwork(seed=0)
            estimator = OnlineDependencyEstimator(learn=True)
            origin_endpoint = network.endpoint("home-server")
            origin = OriginServer(trace.documents, estimator=estimator)
            origin_endpoint.start(origin.handle)
            proxy_endpoint = network.endpoint("region-0")
            proxy = ProxyNode(
                "region-0", proxy_endpoint, upstream="home-server"
            )
            proxy_endpoint.start(proxy.handle)
            # Live demand builds the history the daemon plans from.
            for index, request in enumerate(trace):
                await origin.handle(
                    make_request(
                        request.client,
                        f"seed#{index}",
                        request.doc_id,
                        request.timestamp,
                    )
                )
            daemon = DisseminationDaemon(
                origin,
                origin_endpoint,
                ["region-0"],
                budget_bytes=500_000.0,
            )
            try:
                pushed = await daemon.push_once()
                return pushed, proxy.holdings, daemon.metrics.snapshot()
            finally:
                await proxy_endpoint.close()
                await origin_endpoint.close()

        pushed, holdings, metrics = run_virtual(scenario())
        assert len(pushed) > 0
        assert set(holdings) == set(pushed)
        assert metrics["counters"]["daemon.pushes"] == 1
        assert metrics["counters"]["daemon.replans"] == 1

    def test_unreachable_proxy_degrades_not_fails(self):
        async def scenario():
            trace = generate_trace(
                5, n_pages=30, n_clients=10, n_sessions=80, duration_days=3
            ).remote_only()
            network = InMemoryNetwork(seed=0)
            estimator = OnlineDependencyEstimator(learn=False)
            estimator.warm(trace)
            origin_endpoint = network.endpoint("home-server")
            origin = OriginServer(trace.documents, estimator=estimator)
            origin_endpoint.start(origin.handle)
            for index, request in enumerate(trace):
                await origin.handle(
                    make_request(
                        request.client,
                        f"seed#{index}",
                        request.doc_id,
                        request.timestamp,
                    )
                )
            # A proxy endpoint that never pumps its inbox: the push
            # times out and the daemon must carry on.
            network.endpoint("region-dead")
            daemon = DisseminationDaemon(
                origin,
                origin_endpoint,
                ["region-dead"],
                budget_bytes=500_000.0,
                push_timeout=1.0,
            )
            try:
                pushed = await daemon.push_once()
                return pushed, daemon.metrics.snapshot()
            finally:
                await origin_endpoint.close()

        pushed, metrics = run_virtual(scenario())
        assert len(pushed) > 0
        assert metrics["counters"]["daemon.failed_pushes"] == 1
        assert "daemon.pushes" not in metrics["counters"]

    def test_repush_request_during_push_is_served_promptly(self):
        """Regression: a request_repush() arriving while the daemon is
        awaiting inside push_once() used to have its wake-up consumed
        by the loop-top clear(), delaying the re-push by a full
        UpdateCycle (or forever with interval=None)."""
        interval = 5.0

        async def scenario():
            trace = generate_trace(
                5, n_pages=30, n_clients=10, n_sessions=80, duration_days=3
            ).remote_only()
            network = InMemoryNetwork(seed=0)
            estimator = OnlineDependencyEstimator(learn=True)
            origin_endpoint = network.endpoint("home-server")
            origin = OriginServer(trace.documents, estimator=estimator)
            origin_endpoint.start(origin.handle)
            proxy_endpoint = network.endpoint("region-0")
            proxy = ProxyNode(
                "region-0", proxy_endpoint, upstream="home-server"
            )
            proxy_endpoint.start(proxy.handle)
            for index, request in enumerate(trace):
                await origin.handle(
                    make_request(
                        request.client,
                        f"seed#{index}",
                        request.doc_id,
                        request.timestamp,
                    )
                )
            daemon = DisseminationDaemon(
                origin,
                origin_endpoint,
                ["region-0"],
                budget_bytes=500_000.0,
                interval=interval,
            )
            loop = asyncio.get_running_loop()
            runner = loop.create_task(daemon.run())
            # Land the request 1ms into the first cycle's push, while
            # the daemon is awaiting the proxy's ack (round trip is
            # >= 10ms of virtual latency).
            loop.call_later(
                interval + 0.001, daemon.request_repush, "region-0"
            )
            await asyncio.sleep(interval + 1.0)
            served_at = loop.time()
            try:
                counters = daemon.metrics.snapshot()["counters"]
                return counters, served_at
            finally:
                runner.cancel()
                await proxy_endpoint.close()
                await origin_endpoint.close()

        counters, served_at = run_virtual(scenario())
        assert counters["daemon.repush_requests"] == 1
        # Served within the same cycle, not at the next interval wake.
        assert counters.get("daemon.repushes", 0) == 1
        assert served_at < 2 * interval

    def test_named_daemon_labels_its_counters(self):
        """Per-node daemons in a fleet share one registry; the name
        keyword keeps their counters from colliding."""
        network = InMemoryNetwork(seed=0)
        endpoint = network.endpoint("home-server")
        origin = OriginServer(
            {}, estimator=OnlineDependencyEstimator(learn=False)
        )
        registry = MetricsRegistry()
        daemon = DisseminationDaemon(
            origin,
            endpoint,
            [],
            budget_bytes=1.0,
            name="region-01",
            metrics=registry,
        )
        other = DisseminationDaemon(
            origin,
            endpoint,
            [],
            budget_bytes=1.0,
            name="region-02",
            metrics=registry,
        )
        daemon.pause()
        daemon.resume()
        other.pause()
        counters = registry.snapshot()["counters"]
        assert counters["daemon.region-01.pauses"] == 1
        assert counters["daemon.region-01.resumes"] == 1
        assert counters["daemon.region-02.pauses"] == 1
        assert "daemon.pauses" not in counters

    def test_unnamed_daemon_keeps_the_bare_prefix(self):
        network = InMemoryNetwork(seed=0)
        endpoint = network.endpoint("home-server")
        origin = OriginServer(
            {}, estimator=OnlineDependencyEstimator(learn=False)
        )
        registry = MetricsRegistry()
        daemon = DisseminationDaemon(
            origin, endpoint, [], budget_bytes=1.0, metrics=registry
        )
        daemon.pause()
        assert registry.snapshot()["counters"]["daemon.pauses"] == 1


class TestTcpTransport:
    def test_round_trip_with_speculation(self):
        async def scenario():
            trace = generate_trace(
                9, n_pages=40, n_clients=20, n_sessions=150, duration_days=4
            ).remote_only()
            estimator = OnlineDependencyEstimator(learn=False)
            estimator.warm(trace)
            origin = OriginServer(
                trace.documents,
                estimator=estimator,
                policy=ThresholdPolicy(threshold=0.1),
            )
            server = TcpServer(origin.handle)
            await server.start()
            assert server.port != 0
            doc_id = sorted(trace.documents)[0]
            try:
                reply = await tcp_call(
                    "127.0.0.1",
                    server.port,
                    make_request("probe", "probe#1", doc_id, 0.0),
                )
                stats = await tcp_call(
                    "127.0.0.1",
                    server.port,
                    Message(
                        kind="stats", sender="probe", request_id="probe#2"
                    ),
                )
                with pytest.raises(RuntimeProtocolError, match="unknown"):
                    await tcp_call(
                        "127.0.0.1",
                        server.port,
                        make_request("probe", "probe#3", "/no-such-doc", 1.0),
                    )
                return reply, stats, server.requests_served, server.port
            finally:
                await server.close()

        reply, stats, served, port = asyncio.run(scenario())
        assert reply.kind == "response"
        assert reply.payload["served_by"] == "home-server"
        assert reply.payload["size"] > 0
        assert "service_seconds" in reply.payload
        assert stats.kind == "stats-reply"
        assert served == 3

    def test_connect_failure_is_a_transport_error(self):
        async def scenario():
            server = TcpServer(None)
            await server.start()
            port = server.port
            await server.close()
            with pytest.raises(TransportError, match="connect"):
                await tcp_call(
                    "127.0.0.1",
                    port,
                    Message(kind="stats", sender="probe", request_id="p#1"),
                )

        asyncio.run(scenario())


class TestShardedLoadtest:
    """Multi-process sharding must reproduce single-process counters."""

    def test_four_workers_match_single_process_exactly(self):
        workload = GeneratorConfig(
            seed=4, n_pages=40, n_clients=24, n_sessions=150, duration_days=5
        )
        settings = LiveSettings(seed=4)
        single = execute_loadtest(workload, settings)
        sharded = execute_loadtest(workload, settings, workers=4)
        assert sharded.ratios == single.ratios
        for arm in ("baseline", "speculative"):
            single_counters = dict(getattr(single, arm)["counters"])
            sharded_counters = dict(getattr(sharded, arm)["counters"])
            # The merged virtual clock is the max over shards, not the
            # single-process elapsed time; everything else is exact.
            single_counters.pop("run.virtual_seconds")
            sharded_counters.pop("run.virtual_seconds")
            assert sharded_counters == single_counters

    def test_sharded_run_is_reproducible(self):
        workload = GeneratorConfig(
            seed=4, n_pages=40, n_clients=24, n_sessions=150, duration_days=5
        )
        first = execute_loadtest(workload, LiveSettings(seed=4), workers=3)
        again = execute_loadtest(workload, LiveSettings(seed=4), workers=3)
        assert first.ratios == again.ratios
        assert first.speculative["counters"] == again.speculative["counters"]

    def test_sharding_preconditions_are_enforced(self):
        workload = GeneratorConfig(
            seed=4, n_pages=40, n_clients=24, n_sessions=150, duration_days=5
        )
        for settings in (
            LiveSettings(seed=4, drop_probability=0.2),
            LiveSettings(seed=4, learn_online=True),
            LiveSettings(seed=4, dissemination_interval=600.0),
        ):
            with pytest.raises(SimulationError, match="shard"):
                execute_loadtest(workload, settings, workers=2)

    def test_observed_runs_refuse_sharding(self):
        from repro.obs import ObsConfig

        workload = GeneratorConfig(
            seed=4, n_pages=40, n_clients=24, n_sessions=150, duration_days=5
        )
        with pytest.raises(SimulationError, match="shard"):
            execute_loadtest(
                workload,
                LiveSettings(seed=4),
                obs=ObsConfig.full(),
                workers=2,
            )

    def test_worker_count_must_be_positive(self):
        workload = GeneratorConfig(
            seed=4, n_pages=40, n_clients=24, n_sessions=150, duration_days=5
        )
        with pytest.raises(SimulationError):
            execute_loadtest(workload, LiveSettings(seed=4), workers=0)
