"""The unified observability layer: traces, time-series, exports.

The two load-bearing guarantees (see ``docs/observability.md``):

1. **Trace determinism** — same seed ⇒ byte-identical JSONL.
2. **Curve-integrates-to-headline** — the final value of every
   cumulative time-series equals the live counter exactly, so the
   windowed curves reproduce the paper's four ratios bit-for-bit.
"""

import json

import pytest

from repro.config import BaselineConfig
from repro.core import CombinedProtocolSimulator
from repro.obs import (
    EVENT_KINDS,
    Counter,
    Histogram,
    MetricsRegistry,
    ObsBundle,
    ObsConfig,
    Profiler,
    TimeSeriesRecorder,
    Tracer,
    config_digest,
    default_registry,
    prometheus_text,
    ratios_from_counters,
    run_manifest,
)
from repro.runtime import LiveSettings, execute_loadtest, smoke_workload
from repro.speculation import DependencyModel, ThresholdPolicy
from repro.topology import RoutingTree
from repro.trace import Document, Request, Trace

OBS = ObsConfig.full()


@pytest.fixture(scope="module")
def observed():
    """One fully observed live run, shared by the read-only tests."""
    return execute_loadtest(smoke_workload(0), LiveSettings(seed=0), obs=OBS)


class TestTracer:
    def test_events_round_and_sort_fields(self):
        tracer = Tracer()
        tracer.event(1.23456789012, "request", b=2, a=1)
        line = tracer.to_jsonl()
        assert json.loads(line) == {
            "a": 1,
            "b": 2,
            "kind": "request",
            "t": 1.23456789,
        }
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_ring_bound_drops_oldest(self):
        tracer = Tracer(limit=2)
        for index in range(5):
            tracer.event(float(index), "event", index=index)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [e.to_dict()["index"] for e in tracer.events] == [3, 4]


class TestTraceDeterminism:
    def test_live_trace_is_byte_identical(self, observed):
        again = execute_loadtest(
            smoke_workload(0), LiveSettings(seed=0), obs=OBS
        )
        first = observed.observed.trace_jsonl()
        assert first
        assert first == again.observed.trace_jsonl()

    def test_seed_changes_the_trace(self, observed):
        other = execute_loadtest(
            smoke_workload(1), LiveSettings(seed=1), obs=OBS
        )
        assert observed.observed.trace_jsonl() != other.observed.trace_jsonl()

    def test_event_kinds_are_known(self, observed):
        kinds = {
            event.kind for event in observed.observed.speculative.trace
        }
        assert kinds
        assert kinds <= set(EVENT_KINDS)

    def test_nothing_dropped_at_default_limit(self, observed):
        assert observed.observed.speculative.dropped == 0


class TestCurveParity:
    """Windowed series integrate back to the exact live counters."""

    def test_final_values_equal_live_counters(self, observed):
        for arm_snapshot, arm_obs in (
            (observed.speculative, observed.observed.speculative),
            (observed.baseline, observed.observed.baseline),
        ):
            final = arm_obs.timeseries.final_values()
            for name, value in arm_snapshot["counters"].items():
                assert final[name] == value, name

    def test_ratios_from_final_windows_match_headline(self, observed):
        spec = observed.observed.speculative.timeseries.final_values()
        base = observed.observed.baseline.timeseries.final_values()
        assert ratios_from_counters(spec, base) == observed.ratios

    def test_curve_ends_at_the_headline(self, observed):
        curve = observed.observed.ratio_curve()
        assert curve
        __, last = curve[-1]
        assert last == observed.ratios

    def test_combined_simulator_samples_integrate_exactly(self):
        sizes = {"/page": 1000, "/inline": 200}
        docs = [Document(doc_id=d, size=s) for d, s in sizes.items()]
        trace = Trace(
            [
                Request(timestamp=t, client="c1", doc_id=d, size=sizes[d])
                for t, d in [(0.0, "/page"), (9000.0, "/inline")]
            ],
            docs,
        )
        tree = RoutingTree("root", {"edge": "root", "c1": "edge"})
        model = DependencyModel.from_counts(
            {"/page": {"/inline": 10.0}}, {"/page": 10.0, "/inline": 10.0}
        )
        sim = CombinedProtocolSimulator(
            trace, tree, BaselineConfig(comm_cost=1.0, serv_cost=100.0),
            model=model,
        )
        recorder = TimeSeriesRecorder(window=3600.0)
        tracer = Tracer()
        result = sim.run(
            policy=ThresholdPolicy(threshold=0.9),
            recorder=recorder,
            tracer=tracer,
        )
        final = recorder.final_values()
        assert final["accesses"] == result.accesses
        assert final["cache_hits"] == result.cache_hits
        assert final["origin_requests"] == result.origin_requests
        assert final["bytes_hops"] == result.bytes_hops
        assert final["service_time"] == result.service_time
        assert final["speculated_bytes"] == result.speculated_bytes
        # Two requests 2.5 hours apart land in different windows.
        assert len(recorder.series("accesses")) == 2
        # The speculated rider produced exactly one trace event.
        assert [e.kind for e in tracer.events] == ["speculation"]


class TestTimeSeriesRecorder:
    def test_same_window_samples_collapse_to_the_last(self):
        recorder = TimeSeriesRecorder(window=10.0)
        recorder.sample_at(1.0, "x", 1.0)
        recorder.sample_at(9.0, "x", 5.0)
        recorder.sample_at(11.0, "x", 7.0)
        samples = recorder.series("x")
        assert [(s.window_start, s.value) for s in samples] == [
            (0.0, 5.0),
            (10.0, 7.0),
        ]

    def test_bound_clock_drives_plain_samples(self):
        now = [0.0]
        recorder = TimeSeriesRecorder(window=10.0, clock=lambda: now[0])
        recorder.sample("x", 1.0)
        now[0] = 25.0
        recorder.sample("x", 2.0)
        assert [s.window_start for s in recorder.series("x")] == [0.0, 20.0]

    def test_registry_counters_record_when_recorder_present(self):
        recorder = TimeSeriesRecorder(window=10.0, clock=lambda: 0.0)
        registry = MetricsRegistry(recorder=recorder)
        registry.counter("hits").inc(3)
        registry.counter("hits").inc(2)
        assert recorder.final_values()["hits"] == 5.0
        assert registry.value("hits") == 5.0

    def test_plain_registry_records_nothing(self):
        registry = default_registry()
        registry.counter("hits").inc()
        assert registry.tracer is None
        assert registry.recorder is None


class TestObsConfig:
    def test_disabled_by_default(self):
        config = ObsConfig()
        assert not config.enabled
        assert ObsConfig.full().enabled

    def test_bundle_without_config_is_plain(self):
        bundle = ObsBundle.from_config(None)
        assert bundle.tracer is None
        assert bundle.recorder is None

    def test_disabled_obs_attaches_no_observations(self):
        report = execute_loadtest(
            smoke_workload(0), LiveSettings(seed=0), obs=ObsConfig()
        )
        assert report.observed is None

    def test_observed_run_measures_identically(self, observed):
        plain = execute_loadtest(smoke_workload(0), LiveSettings(seed=0))
        assert plain.ratios == observed.ratios
        assert plain.speculative == observed.speculative


class TestExports:
    def test_prometheus_text_shape(self, observed):
        text = prometheus_text(observed.speculative)
        assert "# TYPE repro_accesses counter" in text
        accesses = observed.speculative["counters"]["accesses"]
        assert f"\nrepro_accesses {accesses}\n" in text
        # Dotted counter names are sanitised for the exposition format.
        assert "repro_run_virtual_seconds" in text
        assert "." not in text.replace("# TYPE", "").split()[1]

    def test_prometheus_histograms_become_gauges(self, observed):
        text = prometheus_text(observed.speculative)
        assert "# TYPE repro_request_latency_count gauge" in text

    def test_config_digest_is_canonical(self):
        digest = config_digest({"b": 2, "a": 1})
        assert digest == config_digest({"a": 1, "b": 2})
        assert digest != config_digest({"a": 1, "b": 3})
        assert len(digest) == 64

    def test_run_manifest_contents(self):
        manifest = run_manifest(seed=7, config={"x": 1})
        assert set(manifest) == {"seed", "config_digest", "git_sha"}
        assert manifest["seed"] == 7
        assert manifest["config_digest"] == config_digest({"x": 1})

    def test_live_manifest_pins_the_run(self, observed):
        manifest = observed.observed.manifest
        assert manifest["seed"] == 0
        assert len(manifest["config_digest"]) == 64


class TestProfiler:
    def test_wall_sections_accumulate(self):
        profiler = Profiler()
        with profiler.section("work"):
            sum(range(1000))
        with profiler.section("work"):
            sum(range(1000))
        summary = profiler.summary()
        assert summary["work"]["calls"] == 2
        assert summary["work"]["seconds"] >= 0.0
        assert profiler.wall_seconds("work") == summary["work"]["seconds"]

    def test_cpu_profile_reports_stats(self):
        profiler = Profiler(cpu=True)
        with profiler.section("hot"):
            sorted(range(100, 0, -1))
        assert "function calls" in profiler.cpu_stats(limit=5)


class TestExactCounterMerge:
    """Shard-merge exactness: Counter state transfer and fsum totals."""

    def test_int_counters_stay_int(self):
        counter = Counter()
        counter.inc(3)
        counter.inc(4)
        assert counter.value == 7
        assert isinstance(counter.value, int)

    def test_float_accumulation_is_correctly_rounded(self):
        import math

        values = [0.1] * 10 + [1e16, 1.0, -1e16] + [1e-9] * 7
        counter = Counter()
        for value in values:
            counter.inc(value)
        assert counter.value == math.fsum(values)

    def test_merge_is_order_independent(self):
        import math
        import random

        values = [(-1) ** i * (0.1 + i * 1e-7) for i in range(200)]
        rng = random.Random(5)
        states = []
        for chunk in range(4):
            counter = Counter()
            for value in values[chunk * 50 : (chunk + 1) * 50]:
                counter.inc(value)
            states.append(counter.state())
        merged_values = [
            Counter.from_states(order(states)).value
            for order in (
                lambda s: s,
                lambda s: list(reversed(s)),
                lambda s: rng.sample(s, len(s)),
            )
        ]
        single = Counter()
        for value in values:
            single.inc(value)
        assert merged_values[0] == merged_values[1] == merged_values[2]
        assert merged_values[0] == single.value == math.fsum(values)

    def test_merge_registry_states_sums_and_maxes(self):
        shards = []
        for shard in range(3):
            registry = MetricsRegistry()
            registry.counter("server.requests").inc(10 + shard)
            registry.counter("run.virtual_seconds").inc(100.0 * (shard + 1))
            registry.histogram("latency").observe(float(shard))
            shards.append(registry.export_state())
        from repro.obs import merge_registry_states

        merged = merge_registry_states(
            shards, max_counters=("run.virtual_seconds",)
        )
        snapshot = merged.snapshot()
        assert snapshot["counters"]["server.requests"] == 33
        assert snapshot["counters"]["run.virtual_seconds"] == 300.0

    def test_histogram_extend_matches_observe(self):
        first = Histogram()
        for value in (1.0, 2.0, 4.0):
            first.observe(value)
        second = Histogram()
        second.extend(first.values)
        assert second.summary() == first.summary()
