"""Tests for the trace-driven dissemination simulator (Fig. 3)."""

import pytest

from repro.errors import SimulationError
from repro.dissemination import DisseminationSimulator
from repro.dissemination.simulator import per_proxy_popular_docs, select_popular_bytes
from repro.popularity import PopularityProfile
from repro.topology import RoutingTree, build_clientele_tree
from repro.trace import Request, Trace
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


@pytest.fixture
def tree():
    return RoutingTree(
        "root",
        {
            "mid": "root",
            "subnet": "mid",
            "c1": "subnet",
            "c2": "subnet",
        },
    )


@pytest.fixture
def trace():
    return Trace(
        [
            Request(timestamp=0.0, client="c1", doc_id="/a", size=100),
            Request(timestamp=1.0, client="c2", doc_id="/a", size=100),
            Request(timestamp=2.0, client="c1", doc_id="/b", size=50),
        ]
    )


class TestBaseline:
    def test_baseline_cost(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        # Each client at depth 3: (100+100+50) * 3
        assert sim.baseline_cost() == 750.0

    def test_local_requests_excluded_by_default(self, tree):
        t = Trace(
            [
                Request(timestamp=0.0, client="c1", doc_id="/a", size=100),
                Request(
                    timestamp=1.0, client="c2", doc_id="/a", size=100, remote=False
                ),
            ]
        )
        sim = DisseminationSimulator(t, tree)
        assert sim.baseline_cost() == 300.0

    def test_missing_client_rejected(self, trace):
        small_tree = RoutingTree("root", {"c1": "root"})
        with pytest.raises(SimulationError):
            DisseminationSimulator(trace, small_tree)


class TestSimulate:
    def test_no_dissemination_no_savings(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        result = sim.simulate(["mid"], set())
        assert result.savings_fraction == 0.0
        assert result.proxy_hits == 0

    def test_full_dissemination_saves_proxy_depth(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        result = sim.simulate(["mid"], {"/a", "/b"})
        # mid at depth 1 of 3: saves 1/3 of every byte-hop.
        assert result.savings_fraction == pytest.approx(1 / 3)
        assert result.proxy_hits == 3

    def test_deeper_proxy_saves_more(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        shallow = sim.simulate(["mid"], {"/a"})
        deep = sim.simulate(["subnet"], {"/a"})
        assert deep.savings_fraction > shallow.savings_fraction

    def test_deepest_ancestor_wins(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        both = sim.simulate(["mid", "subnet"], {"/a", "/b"})
        only_deep = sim.simulate(["subnet"], {"/a", "/b"})
        assert both.savings_fraction == pytest.approx(only_deep.savings_fraction)

    def test_partial_dissemination(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        result = sim.simulate(["subnet"], {"/a"})
        # /a hits save 2 of 3 hops on 200 bytes; /b pays full.
        expected_cost = 100 * 1 + 100 * 1 + 50 * 3
        assert result.cost == pytest.approx(expected_cost)
        assert result.proxy_hits == 2

    def test_per_proxy_holdings(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        result = sim.simulate(["mid", "subnet"], {"mid": {"/b"}, "subnet": {"/a"}})
        expected_cost = 100 * 1 + 100 * 1 + 50 * 2
        assert result.cost == pytest.approx(expected_cost)

    def test_storage_accounting(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        result = sim.simulate(["mid", "subnet"], {"/a"})
        assert result.storage_bytes == 200.0  # /a on both proxies

    def test_push_cost(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        without = sim.simulate(["subnet"], {"/a"})
        with_push = sim.simulate(["subnet"], {"/a"}, include_push_cost=True)
        assert with_push.push_cost == 100 * 2  # /a pushed 2 hops down
        assert with_push.cost == without.cost + with_push.push_cost

    def test_leaf_proxy_rejected(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        with pytest.raises(SimulationError):
            sim.simulate(["c1"], {"/a"})

    def test_root_proxy_rejected(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        with pytest.raises(SimulationError):
            sim.simulate(["root"], {"/a"})

    def test_savings_bounded(self, trace, tree):
        sim = DisseminationSimulator(trace, tree)
        result = sim.simulate(["subnet"], {"/a", "/b"})
        assert 0.0 <= result.savings_fraction < 1.0


class TestSelection:
    def test_select_popular_bytes_orders_by_popularity(self):
        t = Trace(
            [Request(timestamp=float(i), client="c", doc_id="/hot", size=100) for i in range(5)]
            + [Request(timestamp=10.0, client="c", doc_id="/cold", size=100)]
        )
        profile = PopularityProfile.from_trace(t)
        assert select_popular_bytes(profile, 100) == {"/hot"}
        assert select_popular_bytes(profile, 200) == {"/hot", "/cold"}

    def test_select_zero_budget(self):
        t = Trace([Request(timestamp=0.0, client="c", doc_id="/a", size=10)])
        assert select_popular_bytes(PopularityProfile.from_trace(t), 0) == set()

    def test_select_negative_budget_rejected(self):
        t = Trace([Request(timestamp=0.0, client="c", doc_id="/a", size=10)])
        with pytest.raises(SimulationError):
            select_popular_bytes(PopularityProfile.from_trace(t), -1)

    def test_per_proxy_selection_reflects_subtree(self, tree):
        t = Trace(
            [
                Request(timestamp=float(i), client="c1", doc_id="/one", size=100)
                for i in range(5)
            ]
            + [
                Request(timestamp=10.0 + i, client="c2", doc_id="/two", size=100)
                for i in range(9)
            ]
        )
        per_proxy = per_proxy_popular_docs(t, tree, ["subnet"], byte_budget=100)
        # Within the subtree both clients appear; /two is more popular.
        assert per_proxy["subnet"] == {"/two"}

    def test_per_proxy_empty_subtree(self, tree):
        t = Trace([Request(timestamp=0.0, client="c1", doc_id="/a", size=10)])
        tree2 = RoutingTree(
            "root", {"mid": "root", "other": "root", "c1": "mid", "cx": "other"}
        )
        per_proxy = per_proxy_popular_docs(t, tree2, ["other"], byte_budget=100)
        assert per_proxy["other"] == set()


class TestIntegration:
    def test_more_proxies_never_hurt(self):
        gen = SyntheticTraceGenerator(
            GeneratorConfig(seed=9, n_pages=50, n_clients=60, n_sessions=300, duration_days=8)
        )
        t = gen.generate()
        tree = build_clientele_tree(t)
        profile = PopularityProfile.from_trace(t.remote_only())
        docs = select_popular_bytes(profile, 0.10 * gen.site.total_bytes())
        sim = DisseminationSimulator(t, tree)
        regions = sorted(
            n for n in tree.internal_nodes() if n.startswith("region-")
        )
        previous = -1.0
        for k in (0, 1, 2, 4, len(regions)):
            result = sim.simulate(regions[:k], docs)
            assert result.savings_fraction >= previous - 1e-12
            previous = result.savings_fraction

    def test_footnote5_per_proxy_at_least_as_good(self):
        """Geographically-specialized dissemination should not lose to
        one-size-fits-all under the same per-proxy byte budget."""
        gen = SyntheticTraceGenerator(
            GeneratorConfig(seed=10, n_pages=60, n_clients=80, n_sessions=400, duration_days=8)
        )
        t = gen.generate()
        tree = build_clientele_tree(t)
        sim = DisseminationSimulator(t, tree)
        regions = sorted(
            n for n in tree.internal_nodes() if n.startswith("region-")
        )[:4]
        budget = 0.08 * gen.site.total_bytes()
        profile = PopularityProfile.from_trace(t.remote_only())
        shared = select_popular_bytes(profile, budget)
        specialized = per_proxy_popular_docs(t, tree, regions, budget)
        shared_result = sim.simulate(regions, shared)
        special_result = sim.simulate(regions, specialized)
        assert special_result.savings_fraction >= shared_result.savings_fraction - 0.02
