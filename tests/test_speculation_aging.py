"""Tests for aging and rolling re-estimation of the dependency model."""

import pytest

from repro.config import SECONDS_PER_DAY
from repro.errors import DependencyModelError
from repro.speculation import AgingDependencyCounter, RollingEstimator
from repro.trace import Request, Trace


def req(t, doc, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=10)


def day(n):
    return n * SECONDS_PER_DAY


class TestAgingCounter:
    def test_no_decay_accumulates(self):
        counter = AgingDependencyCounter(decay_per_day=1.0)
        counter.observe(Trace([req(0, "/a"), req(1, "/b")]))
        counter.observe(Trace([req(day(10), "/a"), req(day(10) + 1, "/b")]))
        model = counter.snapshot()
        assert model.occurrence_counts["/a"] == 2.0
        assert model.p("/a", "/b") == 1.0

    def test_decay_fades_old_counts(self):
        counter = AgingDependencyCounter(decay_per_day=0.5)
        counter.observe(Trace([req(0, "/a"), req(1, "/b")]))
        counter.observe(Trace([req(day(2), "/a"), req(day(2) + 1, "/c")]))
        model = counter.snapshot()
        # Old /a->/b count decayed by 0.5^2 = 0.25; occurrences 0.25 + 1.
        assert model.occurrence_counts["/a"] == pytest.approx(1.25)
        assert model.p("/a", "/b") == pytest.approx(0.25 / 1.25)
        assert model.p("/a", "/c") == pytest.approx(1.0 / 1.25)

    def test_recent_behaviour_dominates_over_time(self):
        counter = AgingDependencyCounter(decay_per_day=0.8)
        counter.observe(Trace([req(0, "/a"), req(1, "/old")]))
        for n in range(1, 15):
            counter.observe(
                Trace([req(day(n), "/a"), req(day(n) + 1, "/new")])
            )
        model = counter.snapshot()
        assert model.p("/a", "/new") > model.p("/a", "/old") * 5

    def test_empty_batch_noop(self):
        counter = AgingDependencyCounter()
        counter.observe(Trace([]))
        assert counter.snapshot().documents() == set()

    def test_decay_property(self):
        assert AgingDependencyCounter(decay_per_day=0.7).decay_per_day == 0.7

    def test_invalid_decay(self):
        with pytest.raises(DependencyModelError):
            AgingDependencyCounter(decay_per_day=0.0)
        with pytest.raises(DependencyModelError):
            AgingDependencyCounter(decay_per_day=1.1)

    def test_snapshot_isolated_from_counter(self):
        counter = AgingDependencyCounter()
        counter.observe(Trace([req(0, "/a"), req(1, "/b")]))
        snap = counter.snapshot()
        counter.observe(Trace([req(day(1), "/a"), req(day(1) + 1, "/b")]))
        assert snap.occurrence_counts["/a"] == 1.0


class TestRollingEstimator:
    def _trace(self):
        """Behaviour changes at day 10: /a->/b before, /a->/c after."""
        requests = []
        for n in range(20):
            follower = "/b" if n < 10 else "/c"
            requests.append(req(day(n), "/a", client=f"c{n}"))
            requests.append(req(day(n) + 1, follower, client=f"c{n}"))
        return Trace(requests, sort=True)

    def test_no_peeking_at_future(self):
        rolling = RollingEstimator(
            self._trace(), history_length_days=60, update_cycle_days=1
        )
        model = rolling.model_at(day(5))
        assert model.p("/a", "/c") == 0.0

    def test_model_adapts_with_short_cycle(self):
        rolling = RollingEstimator(
            self._trace(), history_length_days=5, update_cycle_days=1
        )
        late = rolling.model_at(day(19))
        assert late.p("/a", "/c") == 1.0
        assert late.p("/a", "/b") == 0.0

    def test_long_cycle_lags(self):
        rolling = RollingEstimator(
            self._trace(), history_length_days=60, update_cycle_days=60
        )
        late = rolling.model_at(day(19))
        # Only the day-0 boundary has fired; it saw nothing.
        assert late.p("/a", "/c") == 0.0

    def test_history_window_limits_training(self):
        rolling = RollingEstimator(
            self._trace(), history_length_days=3, update_cycle_days=1
        )
        model = rolling.model_at(day(15))
        # Days 12-14 only: /b pairs are gone.
        assert model.p("/a", "/b") == 0.0

    def test_model_cached_within_cycle(self):
        rolling = RollingEstimator(
            self._trace(), history_length_days=10, update_cycle_days=1
        )
        assert rolling.model_at(day(5) + 10) is rolling.model_at(day(5) + 500)

    def test_before_start_uses_empty_model(self):
        rolling = RollingEstimator(self._trace(), update_cycle_days=1)
        model = rolling.model_at(0.0)
        assert model.p("/a", "/b") == 0.0

    def test_n_updates(self):
        rolling = RollingEstimator(self._trace(), update_cycle_days=7)
        assert rolling.n_updates(day(20)) == 3  # boundaries at days 0, 7, 14

    def test_invalid_parameters(self):
        with pytest.raises(DependencyModelError):
            RollingEstimator(self._trace(), history_length_days=0)
        with pytest.raises(DependencyModelError):
            RollingEstimator(self._trace(), update_cycle_days=0)


class TestPaperStabilityDirection:
    def test_shorter_cycle_tracks_drift_better(self):
        """The paper's D=1 vs D=60 finding: with drifting dependencies a
        1-day update cycle predicts the present better than a 60-day one."""
        trace_requests = []
        for n in range(60):
            follower = "/early" if n < 30 else "/late"
            trace_requests.append(req(day(n), "/hub", client=f"c{n}"))
            trace_requests.append(req(day(n) + 2, follower, client=f"c{n}"))
        trace = Trace(trace_requests, sort=True)

        fast = RollingEstimator(trace, history_length_days=20, update_cycle_days=1)
        slow = RollingEstimator(trace, history_length_days=20, update_cycle_days=60)
        now = day(59)
        assert fast.model_at(now).p("/hub", "/late") > slow.model_at(now).p(
            "/hub", "/late"
        )
