"""Property-based tests of dependency estimation on random traces."""

from hypothesis import given, settings, strategies as st

from repro.speculation import DependencyModel
from repro.trace import Request, Trace

DOC_IDS = ["/p1", "/p2", "/p3", "/img"]


@st.composite
def random_traces(draw):
    entries = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=2000, allow_nan=False),
                st.sampled_from(["a", "b"]),
                st.sampled_from(DOC_IDS),
            ),
            min_size=1,
            max_size=50,
        )
    )
    requests = [
        Request(timestamp=t, client=c, doc_id=d, size=10) for t, c, d in entries
    ]
    return Trace(requests, sort=True)


@given(random_traces(), st.floats(min_value=0.5, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_estimated_probabilities_valid(trace, window):
    model = DependencyModel.estimate(trace, window=window)
    occurrences = model.occurrence_counts
    for source, row in model.pair_counts.items():
        assert occurrences[source] > 0
        for target, count in row.items():
            assert target != source
            assert 0 < count <= occurrences[source]
            assert 0.0 < model.p(source, target) <= 1.0


@given(random_traces())
@settings(max_examples=40, deadline=None)
def test_occurrences_match_request_counts(trace):
    """Every request occurrence is counted exactly once."""
    model = DependencyModel.estimate(trace, window=5.0)
    from collections import Counter

    expected = Counter(r.doc_id for r in trace)
    observed = model.occurrence_counts
    for doc_id, count in expected.items():
        assert observed[doc_id] == count


@given(random_traces(), st.floats(min_value=1.0, max_value=50.0))
@settings(max_examples=40, deadline=None)
def test_wider_window_never_loses_pairs(trace, window):
    """Widening T_w (with matching stride gap) only adds pair mass."""
    narrow = DependencyModel.estimate(
        trace, window=window, stride_timeout=window
    )
    wide = DependencyModel.estimate(
        trace, window=window * 2, stride_timeout=window * 2
    )
    for source, row in narrow.pair_counts.items():
        for target, count in row.items():
            assert wide.pair_counts.get(source, {}).get(target, 0.0) >= count


@given(random_traces())
@settings(max_examples=40, deadline=None)
def test_closure_consistent_with_direct(trace):
    model = DependencyModel.estimate(trace, window=5.0)
    for source in list(model.occurrence_counts)[:4]:
        row = model.closure_row(source, min_probability=0.01, max_hops=5)
        direct = model.successors(source)
        for target, probability in direct.items():
            assert row.get(target, 0.0) >= probability - 1e-12
        for target, probability in row.items():
            assert 0.0 < probability <= 1.0 + 1e-12


@given(random_traces())
@settings(max_examples=30, deadline=None)
def test_histogram_counts_all_pairs(trace):
    model = DependencyModel.estimate(trace, window=5.0)
    histogram = model.pair_histogram(10)
    n_pairs = sum(len(row) for row in model.pair_counts.values())
    assert histogram.total_pairs == n_pairs
