"""Tests for the P matrix and its closure P*."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DependencyModelError
from repro.speculation import DependencyModel
from repro.trace import Request, Trace


def req(t, doc, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=10)


class TestEstimation:
    def test_simple_pair(self):
        trace = Trace([req(0, "/a"), req(1, "/b")])
        model = DependencyModel.estimate(trace, window=5.0)
        assert model.p("/a", "/b") == 1.0
        assert model.p("/b", "/a") == 0.0

    def test_conditional_probability(self):
        # /a requested twice; /b follows once -> p = 0.5
        trace = Trace(
            [req(0, "/a"), req(1, "/b"), req(100, "/a", "d"), req(110, "/c", "d")],
            sort=True,
        )
        model = DependencyModel.estimate(trace, window=5.0)
        assert model.p("/a", "/b") == 0.5

    def test_window_excludes_distant_follower(self):
        trace = Trace([req(0, "/a"), req(10, "/b")])
        model = DependencyModel.estimate(trace, window=5.0, stride_timeout=60.0)
        assert model.p("/a", "/b") == 0.0

    def test_stride_boundary_blocks_pairs(self):
        # Gap of 7s splits strides at timeout 5 even with a larger window.
        trace = Trace([req(0, "/a"), req(7, "/b")])
        model = DependencyModel.estimate(trace, window=60.0, stride_timeout=5.0)
        assert model.p("/a", "/b") == 0.0

    def test_different_clients_never_pair(self):
        trace = Trace([req(0, "/a", "c1"), req(1, "/b", "c2")])
        model = DependencyModel.estimate(trace, window=5.0)
        assert model.p("/a", "/b") == 0.0

    def test_repeat_follower_counts_once(self):
        trace = Trace([req(0, "/a"), req(1, "/b"), req(2, "/b")])
        model = DependencyModel.estimate(trace, window=5.0)
        assert model.p("/a", "/b") == 1.0

    def test_self_pairs_excluded(self):
        trace = Trace([req(0, "/a"), req(1, "/a")])
        model = DependencyModel.estimate(trace, window=5.0)
        assert model.p("/a", "/a") == 0.0

    def test_probabilities_at_most_one(self):
        trace = Trace(
            [req(t, d) for t, d in [(0, "/a"), (1, "/b"), (2, "/a"), (3, "/b")]]
        )
        model = DependencyModel.estimate(trace, window=5.0)
        for source in model.documents():
            for probability in model.successors(source).values():
                assert 0.0 < probability <= 1.0

    def test_invalid_window(self):
        with pytest.raises(DependencyModelError):
            DependencyModel.estimate(Trace([]), window=0.0)

    def test_embedding_vs_traversal_shape(self):
        """Embedding deps (always followed) get p=1; traversal deps
        (sometimes) get fractional p — the paper's two classes."""
        requests = []
        t = 0.0
        for visit in range(10):
            requests.append(req(t, "/page"))
            requests.append(req(t + 0.1, "/inline.gif"))  # always
            if visit < 5:
                requests.append(req(t + 2.0, "/next"))  # sometimes
            t += 100.0
        model = DependencyModel.estimate(Trace(requests, sort=True), window=5.0)
        assert model.p("/page", "/inline.gif") == 1.0
        assert model.p("/page", "/next") == 0.5


class TestFromCounts:
    def test_counts_validated(self):
        with pytest.raises(DependencyModelError):
            DependencyModel.from_counts({"/a": {"/b": 5.0}}, {"/a": 2.0})

    def test_negative_count_rejected(self):
        with pytest.raises(DependencyModelError):
            DependencyModel.from_counts({"/a": {"/b": -1.0}}, {"/a": 2.0})

    def test_pairs_without_occurrences_rejected(self):
        with pytest.raises(DependencyModelError):
            DependencyModel.from_counts({"/a": {"/b": 1.0}}, {})

    def test_round_trip(self):
        trace = Trace([req(0, "/a"), req(1, "/b")])
        model = DependencyModel.estimate(trace, window=5.0)
        again = DependencyModel.from_counts(
            model.pair_counts, model.occurrence_counts
        )
        assert again.p("/a", "/b") == model.p("/a", "/b")


class TestClosure:
    def _chain_model(self):
        # /a -> /b (0.8), /b -> /c (0.5), /a -> /c (0.1 direct)
        return DependencyModel.from_counts(
            {"/a": {"/b": 8.0, "/c": 1.0}, "/b": {"/c": 5.0}},
            {"/a": 10.0, "/b": 10.0, "/c": 10.0},
        )

    def test_direct_edge_preserved(self):
        model = self._chain_model()
        assert model.p_star("/a", "/b") == pytest.approx(0.8)

    def test_best_chain_beats_direct(self):
        model = self._chain_model()
        # via /b: 0.8 * 0.5 = 0.4 > direct 0.1
        assert model.p_star("/a", "/c") == pytest.approx(0.4)

    def test_closure_at_least_direct(self):
        model = self._chain_model()
        for source in ("/a", "/b"):
            row = model.closure_row(source, min_probability=0.01)
            for target, direct in model.successors(source).items():
                assert row[target] >= direct - 1e-12

    def test_min_probability_prunes(self):
        model = self._chain_model()
        row = model.closure_row("/a", min_probability=0.5)
        assert "/c" not in row
        assert "/b" in row

    def test_max_hops_limits_chains(self):
        model = DependencyModel.from_counts(
            {"/a": {"/b": 9.0}, "/b": {"/c": 9.0}, "/c": {"/d": 9.0}},
            {"/a": 10.0, "/b": 10.0, "/c": 10.0, "/d": 10.0},
        )
        short = model.closure_row("/a", max_hops=1, min_probability=0.01)
        assert set(short) == {"/b"}
        longer = model.closure_row("/a", max_hops=3, min_probability=0.01)
        assert "/d" in longer

    def test_source_excluded_from_row(self):
        model = self._chain_model()
        assert "/a" not in model.closure_row("/a")

    def test_cycle_handled(self):
        model = DependencyModel.from_counts(
            {"/a": {"/b": 5.0}, "/b": {"/a": 5.0}},
            {"/a": 10.0, "/b": 10.0},
        )
        row = model.closure_row("/a", min_probability=0.01)
        assert row["/b"] == pytest.approx(0.5)

    def test_unknown_source_empty(self):
        model = self._chain_model()
        assert model.closure_row("/nope") == {}

    def test_memoization_returns_copies(self):
        model = self._chain_model()
        row1 = model.closure_row("/a")
        row1["/b"] = 999.0
        row2 = model.closure_row("/a")
        assert row2["/b"] == pytest.approx(0.8)

    def test_invalid_parameters(self):
        model = self._chain_model()
        with pytest.raises(DependencyModelError):
            model.closure_row("/a", min_probability=0.0)
        with pytest.raises(DependencyModelError):
            model.closure_row("/a", max_hops=0)

    @given(
        st.dictionaries(
            st.sampled_from(["/a", "/b", "/c", "/d"]),
            st.dictionaries(
                st.sampled_from(["/a", "/b", "/c", "/d"]),
                st.floats(min_value=0.0, max_value=10.0),
                max_size=4,
            ),
            max_size=4,
        )
    )
    @settings(max_examples=50)
    def test_closure_bounds_property(self, raw):
        occurrences = {doc: 10.0 for doc in ["/a", "/b", "/c", "/d"]}
        pairs = {
            s: {t: c for t, c in row.items() if t != s} for s, row in raw.items()
        }
        model = DependencyModel.from_counts(pairs, occurrences)
        for source in ["/a", "/b", "/c", "/d"]:
            row = model.closure_row(source, min_probability=0.01, max_hops=6)
            for target, probability in row.items():
                assert 0.01 <= probability <= 1.0 + 1e-12
                assert target != source
                assert probability >= model.p(source, target) - 1e-12


class TestHistogram:
    def test_figure4_peaks_at_reciprocals(self):
        """Uniform anchor choice among k links piles pairs near 1/k."""
        pairs = {}
        occurrences = {}
        doc_index = 0
        for k in (1, 2, 4):
            for copy in range(30):
                source = f"/s{k}-{copy}"
                occurrences[source] = float(4 * k)
                pairs[source] = {
                    f"/t{doc_index + j}": 4.0 for j in range(k)
                }  # each target p = 1/k
                doc_index += k
        model = DependencyModel.from_counts(pairs, occurrences)
        histogram = model.pair_histogram(n_bins=20)
        # 1/1 -> bin 19, 1/2 -> bin 10, 1/4 -> bin 5
        assert histogram.counts[19] == 30
        assert histogram.counts[10] == 60
        assert histogram.counts[5] == 120

    def test_total_pairs(self):
        model = DependencyModel.from_counts(
            {"/a": {"/b": 1.0, "/c": 1.0}}, {"/a": 2.0}
        )
        assert model.pair_histogram(10).total_pairs == 2

    def test_fraction_in_bin(self):
        model = DependencyModel.from_counts({"/a": {"/b": 1.0}}, {"/a": 1.0})
        histogram = model.pair_histogram(4)
        assert histogram.fraction_in_bin(3) == 1.0

    def test_degenerate_bins_clamp_to_one(self):
        model = DependencyModel.from_counts({"/a": {"/b": 1.0}}, {"/a": 1.0})
        histogram = model.pair_histogram(0)
        assert histogram.bin_edges == (0.0, 1.0)
        assert histogram.counts == (1,)
        assert model.pair_histogram(-3).counts == (1,)

    def test_fraction_in_bin_rejects_bad_index(self):
        model = DependencyModel.from_counts({"/a": {"/b": 1.0}}, {"/a": 1.0})
        histogram = model.pair_histogram(4)
        with pytest.raises(IndexError, match="0..3"):
            histogram.fraction_in_bin(4)
        with pytest.raises(IndexError, match="0..3"):
            histogram.fraction_in_bin(-1)

    def test_histogram_counts_match_edges(self):
        with pytest.raises(DependencyModelError):
            from repro.speculation.dependency import PairHistogram

            PairHistogram(bin_edges=(0.0, 0.5, 1.0), counts=(1,))
