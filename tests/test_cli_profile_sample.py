"""CLI tests for ``repro profile`` and ``repro sample``."""

import json

import pytest

from repro.cli import main


class TestProfile:
    def test_smoke_preset_table(self, capsys):
        code = main(["profile", "--preset", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "burstiness" in out

    def test_json_output(self, capsys):
        code = main(["profile", "--preset", "smoke", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_requests"] > 0
        assert "arrivals" in payload
        assert "sessions" in payload

    def test_out_writes_report(self, tmp_path, capsys):
        report = tmp_path / "profile.json"
        code = main(["profile", "--preset", "smoke", "--out", str(report)])
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["n_requests"] > 0

    def test_clf_input(self, tmp_path, capsys):
        log = tmp_path / "access.log"
        assert (
            main(
                ["generate", str(log), "--seed", "1", "--pages", "40",
                 "--clients", "30", "--sessions", "120", "--days", "5"]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["profile", "--clf", str(log), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_requests"] > 100

    def test_missing_clf_errors(self, tmp_path, capsys):
        code = main(["profile", "--clf", str(tmp_path / "nope.log")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_window_errors(self, capsys):
        code = main(["profile", "--preset", "smoke", "--window", "0"])
        assert code == 2

    def test_unknown_preset_errors(self, capsys):
        code = main(["profile", "--preset", "galactic"])
        assert code == 2

    def test_deterministic(self, capsys):
        main(["profile", "--preset", "smoke", "--json"])
        first = capsys.readouterr().out
        main(["profile", "--preset", "smoke", "--json"])
        assert capsys.readouterr().out == first


class TestSample:
    def test_smoke_preset_report(self, capsys):
        code = main(
            ["sample", "--preset", "smoke", "--fraction", "0.2",
             "--boot", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out
        assert "client sample" in out

    def test_json_output(self, capsys):
        code = main(
            ["sample", "--preset", "smoke", "--fraction", "0.2",
             "--boot", "50", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["estimates"]) == {
            "bandwidth", "server_load", "service_time", "miss_rate"
        }
        for estimate in payload["estimates"].values():
            assert estimate["low"] <= estimate["value"] <= estimate["high"]

    def test_bad_fraction_errors(self, capsys):
        code = main(["sample", "--preset", "smoke", "--fraction", "1.5"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_boot_errors(self, capsys):
        code = main(["sample", "--preset", "smoke", "--boot", "0"])
        assert code == 2

    def test_unknown_preset_errors(self, capsys):
        code = main(["sample", "--preset", "galactic"])
        assert code == 2

    def test_check_gate_wiring(self, capsys, monkeypatch):
        # The full gate runs in test_sampling_estimation; here we only
        # check the CLI plumbing and exit codes around it.
        import repro.core.sampling as sampling_module

        canned = {
            "seed": 0,
            "exact": {"bandwidth": 1.0},
            "sampled": {
                "estimates": {
                    "bandwidth": {"value": 1.0, "low": 0.9, "high": 1.1}
                }
            },
            "coverage": {"bandwidth": True},
        }
        monkeypatch.setattr(
            sampling_module,
            "execute_sample_check",
            lambda seed, **kwargs: canned,
        )
        code = main(["sample", "--check", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == canned

    def test_check_gate_miss_exits_3(self, monkeypatch, capsys):
        import repro.core.sampling as sampling_module
        from repro.errors import RuntimeProtocolError

        def boom(seed, **kwargs):
            raise RuntimeProtocolError("interval missed bandwidth")

        monkeypatch.setattr(
            sampling_module, "execute_sample_check", boom
        )
        code = main(["sample", "--check"])
        assert code == 3
