"""Tier-1 self-check: the repository satisfies its own lint invariants.

This is the regression gate the ISSUE asks for: any PR that introduces
unseeded randomness, an upward import, an unguarded ratio or a
swallowed exception fails here, in plain pytest, before review.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import load_config, run_lint
from repro.analysis.checkers import registered_checkers

REPO = Path(__file__).parent.parent
LINTED_DIRS = [REPO / "src", REPO / "benchmarks", REPO / "examples"]


class TestRepoIsClean:
    @pytest.fixture(scope="class")
    def result(self):
        return run_lint(
            LINTED_DIRS,
            config=load_config(REPO / "pyproject.toml"),
            base_dir=REPO,
        )

    def test_no_findings_anywhere(self, result):
        formatted = "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}"
            for f in result.findings
        )
        assert result.findings == [], f"repo lint regressions:\n{formatted}"

    def test_exit_code_is_zero(self, result):
        assert result.exit_code == 0

    def test_sources_actually_got_checked(self, result):
        # Guards against the self-check silently passing because path
        # resolution broke and nothing was linted.
        assert result.files_checked > 100


class TestFrameworkWiring:
    def test_all_seven_checker_families_registered(self):
        assert set(registered_checkers()) == {
            "determinism",
            "layering",
            "numeric",
            "hygiene",
            "rngflow",
            "units",
            "concurrency",
        }

    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "clean" in completed.stdout
