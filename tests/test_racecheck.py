"""The schedule-perturbation race gate: clock ties, sweep, CLI."""

import asyncio
import json

import pytest

from repro.analysis.schedules import (
    RaceCheckReport,
    ScheduleRun,
    canonical_payload,
    run_schedule_sweep,
)
from repro.cli import main
from repro.errors import RuntimeProtocolError
from repro.runtime.clock import run_virtual


class TestTieShuffle:
    """Seeded tie-breaking of same-deadline timers in the virtual clock."""

    @staticmethod
    async def _race(order):
        async def touch(tag):
            order.append(tag)

        loop = asyncio.get_running_loop()
        # Five callbacks at the *same* virtual deadline: only their
        # tie-break order distinguishes schedules.
        when = loop.time() + 1.0
        for tag in range(5):
            loop.call_at(when, order.append, tag)
        await asyncio.sleep(2.0)

    def run_order(self, schedule_seed):
        order = []
        run_virtual(self._race(order), schedule_seed=schedule_seed)
        return order

    def test_unperturbed_order_is_deterministic(self):
        # The stock heap's tie order is an accident (not insertion
        # order!), but it is at least reproducible run to run.
        reference = self.run_order(None)
        assert sorted(reference) == [0, 1, 2, 3, 4]
        assert self.run_order(None) == reference

    def test_same_seed_reproduces_the_same_order(self):
        assert self.run_order(7) == self.run_order(7)

    def test_some_seed_produces_a_different_order(self):
        orders = {tuple(self.run_order(seed)) for seed in range(1, 9)}
        assert len(orders) > 1  # the shuffle actually perturbs

    def test_all_orders_are_permutations(self):
        for seed in range(1, 9):
            assert sorted(self.run_order(seed)) == [0, 1, 2, 3, 4]

    def test_distinct_deadlines_keep_their_order(self):
        async def staggered(order):
            loop = asyncio.get_running_loop()
            now = loop.time()
            for tag in range(5):
                loop.call_at(now + 1.0 + tag * 0.5, order.append, tag)
            await asyncio.sleep(5.0)

        for seed in range(1, 6):
            order = []
            run_virtual(staggered(order), schedule_seed=seed)
            assert order == [0, 1, 2, 3, 4]

    def test_cancelled_ranked_timer_does_not_fire(self):
        async def cancel_one(order):
            loop = asyncio.get_running_loop()
            when = loop.time() + 1.0
            handles = [
                loop.call_at(when, order.append, tag) for tag in range(3)
            ]
            handles[1].cancel()
            await asyncio.sleep(2.0)

        order = []
        run_virtual(cancel_one(order), schedule_seed=3)
        assert sorted(order) == [0, 2]


class TestScheduleSweep:
    def test_identical_payloads_pass(self):
        report = run_schedule_sweep(
            lambda seed: {"value": 42}, perturbations=3
        )
        assert report.passed
        assert report.divergent == ()
        report.require_schedule_independence()  # no raise

    def test_divergent_payload_is_detected_and_raises(self):
        report = run_schedule_sweep(
            lambda seed: {"value": 0 if seed is None else seed},
            perturbations=3,
            base_seed=5,
        )
        assert not report.passed
        assert [run.schedule_seed for run in report.divergent] == [5, 6, 7]
        with pytest.raises(RuntimeProtocolError, match="tie seeds 5, 6, 7"):
            report.require_schedule_independence()

    def test_seeds_are_contiguous_from_base(self):
        report = run_schedule_sweep(
            lambda seed: {}, perturbations=4, base_seed=10
        )
        assert [run.schedule_seed for run in report.runs] == [10, 11, 12, 13]
        assert report.reference.schedule_seed is None

    def test_canonical_payload_is_order_insensitive(self):
        assert canonical_payload({"b": 1, "a": 2}) == canonical_payload(
            {"a": 2, "b": 1}
        )

    def test_as_dict_shape(self):
        report = run_schedule_sweep(
            lambda seed: {"ok": True}, perturbations=2
        )
        document = report.as_dict()
        assert document["version"] == 1
        assert document["perturbations"] == 2
        assert document["passed"] is True
        assert document["divergent_seeds"] == []
        assert document["reference"] == {"ok": True}

    def test_zero_perturbations_rejected(self):
        with pytest.raises(ValueError):
            run_schedule_sweep(lambda seed: {}, perturbations=0)

    def test_report_is_json_serialisable(self):
        report = RaceCheckReport(
            reference=ScheduleRun(None, {"x": 1}, canonical_payload({"x": 1}))
        )
        json.dumps(report.as_dict())


class TestRacecheckCli:
    def test_smoke_gate_passes(self, capsys):
        # Two perturbations keep the unit test fast; CI runs the
        # default eight.
        assert main(
            ["racecheck", "--smoke", "--perturbations", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 perturbed schedules" in out
        assert "bit-identical" in out

    def test_json_report(self, capsys, tmp_path):
        out_path = tmp_path / "racecheck.json"
        assert main(
            [
                "racecheck",
                "--smoke",
                "--perturbations",
                "2",
                "--json",
                "--out",
                str(out_path),
            ]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["perturbations"] == 2
        assert set(data["reference"]["ratios"]) == {
            "bandwidth",
            "server_load",
            "service_time",
            "miss_rate",
        }
        assert json.loads(out_path.read_text())["passed"] is True

    def test_divergence_exits_3(self, capsys, monkeypatch):
        from repro.analysis import schedules

        def rigged(run_arm, *, perturbations, base_seed):
            reference = ScheduleRun(None, {"v": 0}, canonical_payload({"v": 0}))
            bad = ScheduleRun(1, {"v": 1}, canonical_payload({"v": 1}))
            return RaceCheckReport(reference=reference, runs=(bad,))

        monkeypatch.setattr(schedules, "run_schedule_sweep", rigged)
        code = main(["racecheck", "--smoke", "--perturbations", "1", "--json"])
        assert code == 3
        captured = capsys.readouterr()
        assert json.loads(captured.out)["passed"] is False
        assert "protocol error:" in captured.err

    def test_bad_perturbation_count_is_usage_error(self, capsys):
        assert main(["racecheck", "--perturbations", "0"]) == 2
        assert "error:" in capsys.readouterr().err
