"""Layering checker: the architectural DAG, cycles, unranked packages."""

from pathlib import Path

import pytest

from repro.analysis import DEFAULT_LAYER_RANKS, LintConfig, run_lint
from repro.analysis.checkers.layering import resolve_relative

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "layering"
REPO = Path(__file__).parent.parent


def lint_tree(tree):
    # The fixture trees use the real package name (`repro`) so the same
    # default configuration the CLI applies also governs the fixtures.
    return run_lint(
        [FIXTURES / tree],
        config=LintConfig(),
        checker_names=["layering"],
        base_dir=FIXTURES / tree,
    )


class TestResolveRelative:
    def test_single_dot_sibling(self):
        assert (
            resolve_relative("fakepkg.core.engine", 1, "records")
            == "fakepkg.core.records"
        )

    def test_double_dot_other_package(self):
        assert (
            resolve_relative("fakepkg.core.engine", 2, "trace")
            == "fakepkg.trace"
        )

    def test_absolute_passthrough(self):
        assert resolve_relative("fakepkg.core.engine", 0, "os.path") == "os.path"

    def test_escaping_the_root_returns_none(self):
        assert resolve_relative("fakepkg.core", 5, "x") is None


class TestBrokenTree:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_tree("broken").findings

    def test_upward_import_rejected(self, findings):
        upward = [
            f
            for f in findings
            if f.rule_id == "L001" and f.path.endswith("trace/bad.py")
        ]
        assert len(upward) == 1
        assert "`trace` (rank 2) imports `core` (rank 8)" in upward[0].message
        assert "upward" in upward[0].message

    def test_sideways_peer_import_rejected(self, findings):
        sideways = [
            f
            for f in findings
            if f.rule_id == "L001" and f.path.endswith("speculation/peer.py")
        ]
        assert len(sideways) == 1
        assert "sideways" in sideways[0].message

    def test_cycle_detected(self, findings):
        cycles = [f for f in findings if f.rule_id == "L002"]
        assert len(cycles) == 1
        assert "cycle_a" in cycles[0].message and "cycle_b" in cycles[0].message

    def test_unranked_package_reported(self, findings):
        unranked = [f for f in findings if f.rule_id == "L003"]
        assert len(unranked) == 1
        assert "`mystery`" in unranked[0].message

    def test_nothing_else_fires(self, findings):
        assert {f.rule_id for f in findings} == {"L001", "L002", "L003"}


class TestCleanTree:
    def test_downward_imports_pass(self):
        assert lint_tree("clean").findings == []


class TestRepoDag:
    """The acceptance property: the repo's own layering DAG holds."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_lint(
            [REPO / "src"], checker_names=["layering"], base_dir=REPO
        )

    def test_paper_dag_holds(self, result):
        """trace -> workload -> popularity -> {dissemination, speculation}
        -> core -> cli, with no cycles and no upward imports."""
        assert result.findings == []

    def test_dag_covers_every_package(self):
        src = REPO / "src" / "repro"
        packages = {
            child.name
            for child in src.iterdir()
            if child.is_dir() and (child / "__init__.py").is_file()
        }
        top_modules = {
            child.stem
            for child in src.glob("*.py")
            if child.stem not in ("__init__", "__main__")
        }
        assert packages | top_modules <= set(DEFAULT_LAYER_RANKS)

    def test_ranks_encode_the_paper_pipeline(self):
        ranks = DEFAULT_LAYER_RANKS
        assert ranks["trace"] < ranks["workload"] < ranks["popularity"]
        assert ranks["popularity"] < ranks["speculation"] == ranks["dissemination"]
        assert ranks["speculation"] < ranks["core"] < ranks["cli"]

    def test_synthetic_violation_in_repo_layout_is_caught(self, tmp_path):
        """Copy the real package layout shape and inject one upward import."""
        pkg = tmp_path / "repro"
        (pkg / "trace").mkdir(parents=True)
        (pkg / "core").mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "trace" / "__init__.py").write_text("")
        (pkg / "core" / "__init__.py").write_text("")
        (pkg / "core" / "engine.py").write_text("VALUE = 1\n")
        (pkg / "trace" / "records.py").write_text(
            "from ..core import engine\n"
        )
        result = run_lint(
            [tmp_path], checker_names=["layering"], base_dir=tmp_path
        )
        assert [f.rule_id for f in result.findings] == ["L001"]
        assert result.exit_code == 1
