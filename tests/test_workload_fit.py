"""Tests for fitting a generator configuration from a trace."""

import dataclasses

import pytest

from repro.errors import CalibrationError
from repro.trace import Request, Trace, summarize
from repro.workload import (
    SyntheticTraceGenerator,
    fit_generator_config,
    preset,
)


@pytest.fixture(scope="module")
def source():
    generator = SyntheticTraceGenerator(preset("small", 4))
    return generator.generate()


@pytest.fixture(scope="module")
def fitted(source):
    return fit_generator_config(source)


class TestParameterRecovery:
    def test_population_counts(self, source, fitted):
        assert fitted.config.n_clients == len(source.clients())
        assert fitted.config.n_sessions > 0

    def test_alpha_near_truth(self, fitted):
        # True popularity_alpha of the small preset is 1.05.
        assert 0.6 < fitted.config.popularity_alpha < 1.6

    def test_continue_probability_near_truth(self, fitted):
        # True q is 0.72.
        assert 0.5 < fitted.config.continue_probability < 0.9

    def test_embed_density_near_truth(self, fitted):
        # True mean_embedded is 1.7.
        assert 1.0 < fitted.config.mean_embedded < 3.0

    def test_local_fraction_near_truth(self, fitted):
        # True local_fraction is 0.15.
        assert 0.05 < fitted.config.local_fraction < 0.3

    def test_duration_matches(self, source, fitted):
        assert fitted.config.duration_days == pytest.approx(
            source.duration / 86_400.0
        )

    def test_flat_arrivals_detected_as_low_amplitude(self, fitted):
        assert fitted.config.diurnal_amplitude < 0.6

    def test_diurnal_workload_detected(self):
        trace = SyntheticTraceGenerator(preset("diurnal", 6)).generate()
        config = fit_generator_config(trace).config
        assert config.diurnal_amplitude > 0.3


class TestRoundTrip:
    def test_regenerated_statistics_close(self, source, fitted):
        twin = SyntheticTraceGenerator(fitted.config).generate()
        original = summarize(source)
        regenerated = summarize(twin)
        assert regenerated.num_requests == pytest.approx(
            original.num_requests, rel=0.3
        )
        assert regenerated.mean_session_length == pytest.approx(
            original.mean_session_length, rel=0.3
        )
        assert regenerated.top_ten_percent_share == pytest.approx(
            original.top_ten_percent_share, abs=0.15
        )


class TestProvenance:
    def test_measured_parameters_documented(self, fitted):
        for key in (
            "n_clients",
            "continue_probability",
            "popularity_alpha",
            "mean_embedded",
        ):
            assert key in fitted.measured

    def test_assumed_parameters_listed(self, fitted):
        assert "mean_links" in fitted.assumed
        assert "region_affinity" in fitted.assumed

    def test_seed_applied(self, source):
        assert fit_generator_config(source, seed=42).config.seed == 42


class TestValidation:
    def test_too_few_requests(self):
        trace = Trace(
            [Request(timestamp=0.0, client="a", doc_id="/x", size=1)]
        )
        with pytest.raises(CalibrationError):
            fit_generator_config(trace)

    def test_single_client_rejected(self):
        requests = [
            Request(timestamp=float(i), client="only", doc_id=f"/d{i}", size=1)
            for i in range(20)
        ]
        with pytest.raises(CalibrationError):
            fit_generator_config(Trace(requests))

    def test_two_clients_always_fit(self):
        # Two clients guarantee two sessions; fitting must succeed.
        requests = [
            Request(
                timestamp=float(i * 10), client=f"c{i % 2}", doc_id=f"/d{i}", size=1
            )
            for i in range(20)
        ]
        fitted = fit_generator_config(Trace(requests))
        assert fitted.config.n_clients == 2
