"""Tests for server-assisted prefetching and the hybrid protocol."""

import pytest

from repro.config import BaselineConfig
from repro.errors import PolicyError
from repro.speculation import (
    ClientPrefetcher,
    DependencyModel,
    HybridProtocol,
    PrefetchHints,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
)
from repro.trace import Document, Request, Trace

CONFIG = BaselineConfig(comm_cost=1.0, serv_cost=100.0)

SIZES = {"/page": 1000, "/inline": 200, "/next": 500, "/huge": 90_000}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]


def req(t, doc, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=SIZES[doc])


@pytest.fixture
def model():
    # /page -> /inline (1.0), /page -> /next (0.4), /page -> /huge (0.6)
    return DependencyModel.from_counts(
        {"/page": {"/inline": 10.0, "/next": 4.0, "/huge": 6.0}},
        {"/page": 10.0, "/inline": 10.0, "/next": 10.0, "/huge": 10.0},
    )


@pytest.fixture
def catalog():
    return {d.doc_id: d for d in DOCS}


class TestPrefetchHints:
    def test_sorted_and_capped(self, model, catalog):
        hints = PrefetchHints(max_hints=2).hints("/page", model, catalog)
        assert [h.doc_id for h in hints] == ["/inline", "/huge"]

    def test_floor(self, model, catalog):
        hints = PrefetchHints(min_probability=0.5).hints("/page", model, catalog)
        assert {h.doc_id for h in hints} == {"/inline", "/huge"}

    def test_unknown_source(self, model, catalog):
        assert PrefetchHints().hints("/nope", model, catalog) == []

    def test_targets_must_be_in_catalog(self, model):
        hints = PrefetchHints().hints("/page", model, {})
        assert hints == []

    def test_invalid(self):
        with pytest.raises(PolicyError):
            PrefetchHints(max_hints=0)
        with pytest.raises(PolicyError):
            PrefetchHints(min_probability=0.0)


class TestClientPrefetcher:
    def test_threshold_cuts(self, model, catalog):
        prefetcher = ClientPrefetcher(threshold=0.5)
        assert prefetcher.choose("/page", model, catalog) == ["/inline", "/huge"]

    def test_max_size_skips(self, model, catalog):
        prefetcher = ClientPrefetcher(threshold=0.5, max_size=10_000)
        assert prefetcher.choose("/page", model, catalog) == ["/inline"]

    def test_invalid(self):
        with pytest.raises(PolicyError):
            ClientPrefetcher(threshold=0.0)
        with pytest.raises(PolicyError):
            ClientPrefetcher(max_size=0)


class TestPrefetchSimulation:
    def test_prefetch_costs_server_requests(self, model):
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
        prefetcher = ClientPrefetcher(threshold=0.9)
        run = sim.run(None, prefetcher=prefetcher)
        # The prefetch of /inline is its own server request...
        assert run.prefetch_requests == 1
        assert run.metrics.server_requests == 2
        # ...but the later demand access becomes a cache hit.
        assert run.cache_hits == 1

    def test_speculation_vs_prefetch_server_load(self, model):
        """The paper's distinction: speculation piggybacks (no extra
        requests) while prefetching pays one request per document."""
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
        speculation = sim.run(ThresholdPolicy(threshold=0.9))
        prefetch = sim.run(None, prefetcher=ClientPrefetcher(threshold=0.9))
        assert speculation.metrics.server_requests < prefetch.metrics.server_requests
        # Both eliminate the demand miss.
        assert speculation.cache_hits == prefetch.cache_hits == 1

    def test_prefetch_skips_cached_documents(self, model):
        trace = Trace([req(0, "/inline"), req(1, "/page")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
        run = sim.run(None, prefetcher=ClientPrefetcher(threshold=0.9))
        assert run.prefetch_requests == 0


class TestHybridProtocol:
    def test_components(self):
        hybrid = HybridProtocol.with_thresholds(
            embedding_tolerance=0.1, prefetch_threshold=0.3, max_size=50_000
        )
        assert hybrid.policy.tolerance == 0.1
        assert hybrid.prefetcher.threshold == 0.3
        assert hybrid.policy.max_size == 50_000

    def test_hybrid_run(self, model):
        """Hybrid: /inline (embedding) is pushed; /huge (p=0.6) is
        prefetched by the client; /next (p=0.4) is left alone."""
        trace = Trace(
            [req(0, "/page"), req(1, "/inline"), req(2, "/huge"), req(3, "/next")],
            DOCS,
        )
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
        hybrid = HybridProtocol.with_thresholds(prefetch_threshold=0.5)
        run = sim.run(hybrid.policy, prefetcher=hybrid.prefetcher)
        assert run.metrics.speculated_documents == 1  # /inline push
        assert run.prefetch_requests == 1  # /huge prefetch
        assert run.cache_hits == 2  # /inline and /huge
        # /next was a plain demand miss.
        assert run.metrics.server_requests == 1 + 1 + 1  # page, prefetch, next

    def test_hybrid_no_double_delivery(self, model):
        """A document pushed as an embedding is not prefetched again."""
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
        hybrid = HybridProtocol.with_thresholds(prefetch_threshold=0.9)
        run = sim.run(hybrid.policy, prefetcher=hybrid.prefetcher)
        assert run.metrics.speculated_documents == 1
        assert run.prefetch_requests == 0
