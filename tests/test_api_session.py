"""The ``repro.api`` front door and the deprecated entry-point shims."""

import warnings

import pytest

from repro.api import RunReport, RunSpec, Session
from repro.core import SweepPoint, evaluate_thresholds
from repro.core.experiment import Experiment, sweep_thresholds
from repro.core.sensitivity import SensitivityPoint, workload_sensitivity
from repro.fleet import FleetSettings, fleet_smoke_settings
from repro.obs import ObsConfig
from repro.runtime import (
    ChaosSettings,
    LiveSettings,
    chaos_smoke_settings,
    execute_smoke,
    run_chaos,
    run_chaos_smoke,
    run_loadtest,
    run_smoke,
    smoke_workload,
)
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

TINY = GeneratorConfig(
    seed=0, n_pages=60, n_clients=40, n_sessions=300, duration_days=8
)


class TestRunSpec:
    def test_defaults_resolve_to_the_smoke_setup(self):
        spec = RunSpec(seed=3)
        assert spec.resolved_workload() == smoke_workload(3)
        assert spec.resolved_settings() == LiveSettings(seed=3)
        assert spec.resolved_chaos() == chaos_smoke_settings(3)
        assert spec.resolved_fleet() == fleet_smoke_settings(3)

    def test_explicit_fields_win(self):
        settings = LiveSettings(seed=2, concurrency=8)
        spec = RunSpec(seed=2, workload=TINY, settings=settings)
        assert spec.resolved_workload() is TINY
        assert spec.resolved_settings() is settings
        # Chaos knobs derive from the explicit live settings.
        assert spec.resolved_chaos() == ChaosSettings(live=settings)
        fleet = FleetSettings(seed=2, probe_siblings=1)
        assert RunSpec(fleet=fleet).resolved_fleet() is fleet

    def test_session_overrides_replace_spec_fields(self):
        session = Session(RunSpec(seed=0), seed=5)
        assert session.spec.seed == 5
        assert Session(seed=4).spec == RunSpec(seed=4)


class TestSessionRuns:
    def test_loadtest_smoke_matches_the_engine(self):
        report = Session(seed=0).loadtest(smoke=True)
        assert isinstance(report, RunReport)
        assert report.kind == "loadtest"
        assert report.ratios == execute_smoke(0).ratios
        assert report.detail.batch_ratios is not None

    def test_observability_threads_through(self):
        report = Session(seed=0, obs=ObsConfig.full()).loadtest()
        assert report.observed is not None
        assert report.trace_jsonl()
        assert report.ratio_curve()
        assert report.manifest["seed"] == 0
        assert report.format().startswith("loadtest: ")

    def test_unobserved_report_helpers_are_empty(self):
        report = Session(seed=0).loadtest()
        assert report.observed is None
        assert report.trace_jsonl() == ""
        assert report.ratio_curve() == []
        assert report.manifest == {}

    def test_chaos_smoke_reports_faulted_ratios(self):
        report = Session(seed=0).chaos(smoke=True)
        assert report.kind == "chaos"
        assert report.ratios == report.detail.faulted.ratios
        assert report.detail.fault_events

    def test_sweep_uses_the_spec_workload(self):
        session = Session(workload=TINY)
        report = session.sweep([0.5, 0.1])
        assert report.kind == "sweep"
        assert [point.parameter for point in report.detail] == [0.5, 0.1]
        assert all(isinstance(p, SweepPoint) for p in report.detail)

    def test_sweep_matches_the_engine_exactly(self):
        trace = SyntheticTraceGenerator(TINY).generate()
        experiment = Experiment(trace, train_days=trace.duration / 86_400 / 2)
        expected = evaluate_thresholds(experiment, [0.25])
        report = Session(workload=TINY).sweep([0.25])
        assert report.detail[0].ratios == expected[0].ratios

    def test_sensitivity_sweeps_the_named_knob(self):
        report = Session(workload=TINY).sensitivity("n_pages", [40, 80])
        assert report.kind == "sensitivity"
        assert [point.value for point in report.detail] == [40, 80]
        assert all(isinstance(p, SensitivityPoint) for p in report.detail)

    def test_fleet_reports_the_three_arm_comparison(self):
        report = Session(seed=0).fleet()
        assert report.kind == "fleet"
        assert report.ratios == report.detail.ratios
        assert report.detail.improvement()
        for fleet_value, single_value in report.detail.improvement().values():
            assert fleet_value < single_value
        assert report.detail.plan["policy"] == "hierarchical"

    def test_fleet_smoke_runs_the_determinism_gate(self):
        report = Session(seed=0).fleet(smoke=True)
        assert report.kind == "fleet"
        assert report.ratios is not None

    def test_bench_wraps_the_perf_harness(self, monkeypatch):
        from repro.api import session as session_module

        calls = {}

        def fake_run_scale(name, *, repeats=None):
            calls["scale"] = (name, repeats)
            return {"medians_seconds": {}}

        monkeypatch.setattr(session_module, "run_scale", fake_run_scale)
        monkeypatch.setattr(
            session_module, "build_report", lambda sections: sections
        )
        report = Session().bench(smoke=True, repeats=2)
        assert report.kind == "bench"
        assert calls["scale"] == ("smoke", 2)
        assert "smoke" in report.detail


class TestDeprecatedShims:
    """Every legacy entry point warns once and delegates unchanged."""

    def test_run_loadtest_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="Session.loadtest"):
            report = run_loadtest(smoke_workload(0), LiveSettings(seed=0))
        assert report.ratios == Session(seed=0).loadtest().ratios

    def test_run_smoke_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            report = run_smoke(0)
        assert report.batch_ratios is not None

    def test_run_chaos_warns(self):
        with pytest.warns(DeprecationWarning, match="Session.chaos"):
            report = run_chaos(smoke_workload(0), chaos_smoke_settings(0))
        assert report.fault_events

    def test_run_chaos_smoke_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            run_chaos_smoke(0)

    def test_sweep_thresholds_warns_and_delegates(self):
        trace = SyntheticTraceGenerator(TINY).generate()
        experiment = Experiment(trace, train_days=trace.duration / 86_400 / 2)
        with pytest.warns(DeprecationWarning, match="Session.sweep"):
            points = sweep_thresholds(experiment, [0.25])
        assert points[0].ratios == evaluate_thresholds(experiment, [0.25])[0].ratios

    def test_workload_sensitivity_warns(self):
        with pytest.warns(DeprecationWarning, match="Session.sensitivity"):
            points = workload_sensitivity("n_pages", [40], base_config=TINY)
        assert len(points) == 1

    def test_the_facade_itself_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(seed=0).loadtest()
            Session(workload=TINY).sensitivity("n_pages", [40])
