"""Binary wire codec: JSON equivalence, negotiation, hostile peers.

The binary codec must be observationally equivalent to the JSON debug
codec over the whole JSON value domain: for any message, encoding with
either codec and decoding the result reconstructs the identical
:class:`~repro.runtime.messages.Message`.  Equality here is exact
``==`` — the codecs carry floats as IEEE doubles and ints as ints, so
no tolerance is ever needed.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeProtocolError
from repro.runtime import InMemoryNetwork, Message, TcpServer, run_virtual, tcp_call
from repro.runtime.messages import (
    BINARY_CODEC,
    CODECS,
    HEADER_BYTES,
    JSON_CODEC,
    KINDS,
    MAX_FRAME_BYTES,
    frame,
    make_error,
    make_request,
    make_response,
    resolve_codec,
    sniff_codec,
)

# The full JSON value domain, including non-ASCII text, big integers
# (beyond i64, forcing the codec's arbitrary-precision path), and
# finite floats.  NaN/inf are excluded: canonical JSON rejects them.
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**80), max_value=2**80)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=24)
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
_messages = st.builds(
    Message,
    kind=st.sampled_from(sorted(KINDS)),
    sender=st.text(max_size=16),
    request_id=st.text(max_size=16),
    payload=st.dictionaries(st.text(max_size=12), _json_values, max_size=5),
    body_bytes=st.integers(min_value=0, max_value=2**62),
)


class TestCodecEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(message=_messages)
    def test_roundtrip_equivalence(self, message):
        via_binary = BINARY_CODEC.decode(BINARY_CODEC.encode(message))
        via_json = JSON_CODEC.decode(JSON_CODEC.encode(message))
        assert via_binary == message
        assert via_json == message
        assert via_binary == via_json

    @settings(max_examples=100, deadline=None)
    @given(message=_messages)
    def test_decode_sniffs_either_encoding(self, message):
        assert Message.decode(BINARY_CODEC.encode(message)) == message
        assert Message.decode(JSON_CODEC.encode(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(
        doc_id=st.text(min_size=1, max_size=32),
        client=st.text(min_size=1, max_size=24),
        timestamp=st.floats(
            min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False
        ),
        digest=st.lists(st.text(max_size=20), max_size=12),
        demand=st.text(max_size=16),
    )
    def test_request_packed_path(self, doc_id, client, timestamp, digest, demand):
        message = make_request(
            client,
            f"{client}#1",
            doc_id,
            timestamp,
            digest=tuple(digest),
            demand=demand,
        )
        assert BINARY_CODEC.decode(BINARY_CODEC.encode(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(
        doc_id=st.text(min_size=1, max_size=32),
        size=st.integers(min_value=0, max_value=2**40),
        riders=st.lists(
            st.tuples(
                st.text(max_size=20), st.integers(min_value=0, max_value=2**40)
            ),
            max_size=8,
        ),
    )
    def test_response_packed_path(self, doc_id, size, riders):
        message = make_response(
            "origin", "c#1", doc_id, size, "origin", speculated=riders
        )
        assert BINARY_CODEC.decode(BINARY_CODEC.encode(message)) == message

    def test_non_ascii_and_empty_fields(self):
        cases = [
            make_request(
                "клиент-1", "клиент-1#9", "/日本語/ü.html", 12.5,
                digest=("/ö.html", "", "/🌐.html"),
            ),
            Message(kind="stats", sender="", request_id="", payload={}),
            make_error("origin", "c#1", "protocol", "naïve—reason"),
        ]
        for message in cases:
            assert BINARY_CODEC.decode(BINARY_CODEC.encode(message)) == message
            assert JSON_CODEC.decode(JSON_CODEC.encode(message)) == message

    def test_huge_counter_payload(self):
        message = Message(
            kind="stats-reply",
            sender="origin",
            request_id="c#1",
            payload={"served": 2**80, "debt": -(2**80), "load": 0.125},
        )
        decoded = BINARY_CODEC.decode(BINARY_CODEC.encode(message))
        assert decoded == message
        assert decoded.payload["served"] == 2**80

    def test_ineligible_payload_falls_back_to_generic(self):
        # An int timestamp is outside the packed request layout; the
        # codec must still round-trip it via the generic encoding.
        message = Message(
            kind="request",
            sender="c",
            request_id="c#1",
            payload={"doc_id": "/a", "client": "c", "timestamp": 3,
                     "digest": []},
            body_bytes=64,
        )
        assert BINARY_CODEC.decode(BINARY_CODEC.encode(message)) == message

    def test_binary_frames_are_smaller_on_live_shapes(self):
        message = make_request(
            "client-7", "client-7#42", "/docs/a.html", 1234.5,
            digest=tuple(f"/docs/{i}.html" for i in range(12)),
        )
        assert len(BINARY_CODEC.encode(message)) < len(JSON_CODEC.encode(message))


class TestCodecSelection:
    def test_resolve_codec(self):
        assert resolve_codec(None) is BINARY_CODEC
        assert resolve_codec("binary") is BINARY_CODEC
        assert resolve_codec("json") is JSON_CODEC
        assert resolve_codec(JSON_CODEC) is JSON_CODEC
        with pytest.raises(RuntimeProtocolError, match="unknown codec"):
            resolve_codec("msgpack")

    def test_sniff_codec(self):
        message = make_request("c", "c#1", "/a", 0.0)
        assert sniff_codec(BINARY_CODEC.encode(message)) is BINARY_CODEC
        assert sniff_codec(JSON_CODEC.encode(message)) is JSON_CODEC

    def test_codec_names(self):
        assert CODECS["binary"].name == "binary"
        assert CODECS["json"].name == "json"

    def test_decode_rejects_truncated_binary(self):
        raw = BINARY_CODEC.encode(make_request("c", "c#1", "/a", 0.0))
        for cut in (1, 3, len(raw) // 2, len(raw) - 1):
            with pytest.raises(RuntimeProtocolError):
                BINARY_CODEC.decode(raw[:cut])
        with pytest.raises(RuntimeProtocolError):
            BINARY_CODEC.decode(raw + b"\x00")

    def test_frame_respects_custom_limit(self):
        message = make_request("c", "c#1", "/a", 0.0)
        framed = frame(message, "binary", max_frame_bytes=MAX_FRAME_BYTES)
        assert len(framed) > HEADER_BYTES
        with pytest.raises(RuntimeProtocolError, match="frame"):
            frame(message, "binary", max_frame_bytes=8)


class TestInMemoryCodec:
    def test_network_defaults_to_binary(self):
        assert InMemoryNetwork().codec is BINARY_CODEC
        assert InMemoryNetwork(codec="json").codec is JSON_CODEC

    def test_codec_errors_surface_at_sender(self):
        async def scenario():
            network = InMemoryNetwork(seed=0)
            network.endpoint("rx")
            sender = network.endpoint("tx")
            poisoned = Message(
                kind="stats",
                sender="tx",
                payload={"bad": {1: "non-string key"}},
            )
            with pytest.raises(RuntimeProtocolError):
                sender.cast("rx", poisoned)

        run_virtual(scenario())


async def _echo_handler(message):
    return make_response(
        "server", message.request_id, message.payload["doc_id"], 10, "server"
    )


def _sans_service(message):
    """A reply with the wall-clock ``service_seconds`` stamp removed."""
    payload = {
        key: value
        for key, value in message.payload.items()
        if key != "service_seconds"
    }
    return (message.kind, message.sender, message.request_id, payload)


class TestTcpNegotiation:
    def _serve(self, coro_factory, **server_kwargs):
        async def scenario():
            server = TcpServer(_echo_handler, **server_kwargs)
            await server.start()
            try:
                return await coro_factory(server)
            finally:
                await server.close()

        return asyncio.run(scenario())

    async def _raw_exchange(self, port, body, *, expect_close=False):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(len(body).to_bytes(HEADER_BYTES, "big") + body)
            await writer.drain()
            header = await reader.readexactly(HEADER_BYTES)
            reply = await reader.readexactly(int.from_bytes(header, "big"))
            # After a protocol error the server hangs up; after a good
            # exchange it keeps the connection open for more frames.
            trailer = await reader.read(1) if expect_close else None
            return reply, trailer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def test_server_mirrors_client_codec(self):
        request = make_request("probe", "probe#1", "/a", 0.0)

        async def probe(server):
            json_reply, _ = await self._raw_exchange(
                server.port, JSON_CODEC.encode(request)
            )
            binary_reply, _ = await self._raw_exchange(
                server.port, BINARY_CODEC.encode(request)
            )
            return json_reply, binary_reply

        json_reply, binary_reply = self._serve(probe)
        assert json_reply[:1] == b"{"
        assert binary_reply[:1] == b"\xab"
        assert _sans_service(Message.decode(json_reply)) == _sans_service(
            Message.decode(binary_reply)
        )

    def test_forced_json_server_replies_json_to_binary_client(self):
        request = make_request("probe", "probe#1", "/a", 0.0)

        async def probe(server):
            reply, _ = await self._raw_exchange(
                server.port, BINARY_CODEC.encode(request)
            )
            return reply

        reply = self._serve(probe, codec="json")
        assert reply[:1] == b"{"
        assert Message.decode(reply).kind == "response"

    def test_tcp_call_works_on_both_codecs(self):
        request = make_request("probe", "probe#1", "/a", 0.0)

        async def probe(server):
            results = []
            for codec in ("json", "binary"):
                reply = await tcp_call(
                    "127.0.0.1", server.port, request, codec=codec
                )
                results.append(reply)
            return results

        json_reply, binary_reply = self._serve(probe)
        assert _sans_service(json_reply) == _sans_service(binary_reply)
        assert json_reply.payload["size"] == 10

    def test_oversize_frame_from_hostile_peer(self):
        async def probe(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                # Declare a body far beyond the server's limit; the
                # server must refuse before reading it and hang up.
                writer.write((64 * 1024).to_bytes(HEADER_BYTES, "big"))
                await writer.drain()
                header = await reader.readexactly(HEADER_BYTES)
                reply = await reader.readexactly(int.from_bytes(header, "big"))
                trailer = await reader.read(1)
                return reply, trailer, server.protocol_errors
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        reply, trailer, errors = self._serve(probe, max_frame_bytes=1024)
        decoded = Message.decode(reply)
        assert decoded.kind == "error"
        assert decoded.payload["error_kind"] == "protocol"
        assert trailer == b""  # connection closed after the error reply
        assert errors == 1

    def test_undecodable_body_from_hostile_peer(self):
        async def probe(server):
            reply, trailer = await self._raw_exchange(
                server.port, b"\xabR\xff garbage frame", expect_close=True
            )
            return reply, trailer, server.protocol_errors

        reply, trailer, errors = self._serve(probe)
        decoded = Message.decode(reply)
        assert decoded.kind == "error"
        assert decoded.payload["error_kind"] == "protocol"
        assert trailer == b""
        assert errors == 1
