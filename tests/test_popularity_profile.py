"""Tests for popularity profiles and coverage curves."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.popularity import PopularityProfile
from repro.trace import Document, Request, Trace


def req(t, doc, size=10, remote=True, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=size, remote=remote)


@pytest.fixture
def trace():
    return Trace(
        [
            req(0, "/hot", size=100),
            req(1, "/hot", size=100),
            req(2, "/hot", size=100, remote=False),
            req(3, "/warm", size=200),
            req(4, "/cold", size=50, remote=False),
        ],
        [Document(doc_id="/never", size=999)],
    )


class TestStats:
    def test_counts(self, trace):
        profile = PopularityProfile.from_trace(trace)
        hot = profile.get("/hot")
        assert hot.requests == 3
        assert hot.remote_requests == 2
        assert hot.local_requests == 1
        assert hot.bytes_served == 300
        assert hot.remote_bytes == 200
        assert hot.remote_ratio == pytest.approx(2 / 3)

    def test_unaccessed_document_zeroes(self, trace):
        profile = PopularityProfile.from_trace(trace)
        never = profile.get("/never")
        assert never.requests == 0
        assert never.remote_ratio == 0.0
        assert never.size == 999

    def test_accessed_count(self, trace):
        profile = PopularityProfile.from_trace(trace)
        assert profile.accessed_count() == 3
        assert profile.accessed_count(remote_only=True) == 2

    def test_totals(self, trace):
        profile = PopularityProfile.from_trace(trace)
        assert profile.total_requests() == 5
        assert profile.total_requests(remote_only=True) == 3
        assert profile.total_bytes_served() == 550
        assert profile.total_bytes_served(remote_only=True) == 400

    def test_unknown_doc(self, trace):
        with pytest.raises(ReproError):
            PopularityProfile.from_trace(trace).get("/nope")

    def test_empty_profile_rejected(self):
        with pytest.raises(ReproError):
            PopularityProfile({})

    def test_len_contains(self, trace):
        profile = PopularityProfile.from_trace(trace)
        assert len(profile) == 4
        assert "/hot" in profile
        assert "/nope" not in profile


class TestRanking:
    def test_remote_ranking(self, trace):
        ranked = PopularityProfile.from_trace(trace).ranked(remote_only=True)
        assert ranked[0].doc_id == "/hot"
        assert ranked[1].doc_id == "/warm"

    def test_total_ranking_differs(self):
        t = Trace(
            [req(0, "/a", remote=False), req(1, "/a", remote=False), req(2, "/b")]
        )
        profile = PopularityProfile.from_trace(t)
        assert profile.ranked(remote_only=False)[0].doc_id == "/a"
        assert profile.ranked(remote_only=True)[0].doc_id == "/b"

    def test_tie_break_by_doc_id(self):
        t = Trace([req(0, "/b"), req(1, "/a")])
        ranked = PopularityProfile.from_trace(t).ranked()
        assert [s.doc_id for s in ranked[:2]] == ["/a", "/b"]


class TestCoverageCurve:
    def test_monotone_and_normalized(self, trace):
        b, h = PopularityProfile.from_trace(trace).coverage_curve()
        assert np.all(np.diff(b) > 0)
        assert np.all(np.diff(h) >= 0)
        assert h[-1] == pytest.approx(1.0)

    def test_only_accessed_docs_on_curve(self, trace):
        b, h = PopularityProfile.from_trace(trace).coverage_curve()
        # /hot and /warm have remote hits; /cold and /never do not.
        assert len(b) == 2

    def test_empty_curve_when_no_remote(self):
        t = Trace([req(0, "/a", remote=False)])
        b, h = PopularityProfile.from_trace(t).coverage_curve()
        assert b.size == 0 and h.size == 0

    def test_first_point(self, trace):
        b, h = PopularityProfile.from_trace(trace).coverage_curve()
        assert b[0] == 100  # /hot's size
        assert h[0] == pytest.approx(2 / 3)  # 2 of 3 remote requests


class TestHitFraction:
    def test_zero_budget(self, trace):
        assert PopularityProfile.from_trace(trace).hit_fraction(0) == 0.0

    def test_full_budget(self, trace):
        profile = PopularityProfile.from_trace(trace)
        assert profile.hit_fraction(10_000) == pytest.approx(1.0)

    def test_partial_budget(self, trace):
        profile = PopularityProfile.from_trace(trace)
        # Budget fits only /hot (100 bytes): 2 of 3 remote hits covered.
        assert profile.hit_fraction(150) == pytest.approx(2 / 3)

    def test_skip_too_big_take_smaller(self):
        t = Trace(
            [
                req(0, "/big", size=1000),
                req(1, "/big", size=1000),
                req(2, "/small", size=10),
            ]
        )
        profile = PopularityProfile.from_trace(t)
        # /big (most popular) doesn't fit in 100; /small does.
        assert profile.hit_fraction(100) == pytest.approx(1 / 3)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["/a", "/b", "/c", "/d"]),
            st.integers(min_value=1, max_value=500),
            st.booleans(),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_hit_fraction_monotone_in_budget(entries):
    requests = [
        Request(timestamp=float(i), client="c", doc_id=d, size=s, remote=r)
        for i, (d, s, r) in enumerate(entries)
    ]
    profile = PopularityProfile.from_trace(Trace(requests))
    budgets = [0, 100, 500, 2000, 10**6]
    fractions = [profile.hit_fraction(b) for b in budgets]
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert fractions == sorted(fractions)
