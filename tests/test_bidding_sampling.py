"""Tests for proxy bidding and client-level trace sampling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError, TraceFormatError
from repro.dissemination import BiddingOutcome, ProxyOffer, select_offers
from repro.topology import RoutingTree
from repro.trace import Request, Trace, sample_clients, split_strides
from repro.workload import SyntheticTraceGenerator, preset


@pytest.fixture
def tree():
    return RoutingTree(
        "root",
        {
            "r0": "root",
            "r1": "root",
            "s0": "r0",
            "s1": "r1",
            "c1": "s0",
            "c2": "s0",
            "c3": "s1",
        },
    )


DEMAND = {"c1": 100.0, "c2": 100.0, "c3": 50.0}


class TestProxyOffer:
    def test_validation(self):
        with pytest.raises(TopologyError):
            ProxyOffer(name="", node="r0", capacity_bytes=1.0, price=1.0)
        with pytest.raises(TopologyError):
            ProxyOffer(name="x", node="r0", capacity_bytes=0.0, price=1.0)
        with pytest.raises(TopologyError):
            ProxyOffer(name="x", node="r0", capacity_bytes=1.0, price=-1.0)


class TestSelectOffers:
    def _offers(self):
        return [
            ProxyOffer(name="deep-busy", node="s0", capacity_bytes=1e6, price=10.0),
            ProxyOffer(name="deep-idle", node="s1", capacity_bytes=1e6, price=10.0),
            ProxyOffer(name="shallow", node="r0", capacity_bytes=1e6, price=1.0),
        ]

    def test_prefers_value_per_money(self, tree):
        outcome = select_offers(tree, DEMAND, self._offers(), budget=1.0)
        # Only "shallow" is affordable; it still adds savings.
        assert [o.name for o in outcome.accepted] == ["shallow"]

    def test_spends_within_budget(self, tree):
        outcome = select_offers(tree, DEMAND, self._offers(), budget=11.5)
        assert outcome.total_price <= 11.5

    def test_big_budget_takes_all_useful_offers(self, tree):
        outcome = select_offers(tree, DEMAND, self._offers(), budget=100.0)
        names = {o.name for o in outcome.accepted}
        assert {"deep-busy", "deep-idle"} <= names
        # shallow adds nothing once deep-busy shields its subtree.
        assert "shallow" not in names or outcome.expected_savings > 0

    def test_zero_budget_free_offers_only(self, tree):
        offers = [
            ProxyOffer(name="free", node="s0", capacity_bytes=1e6, price=0.0),
            ProxyOffer(name="paid", node="s1", capacity_bytes=1e6, price=5.0),
        ]
        outcome = select_offers(tree, DEMAND, offers, budget=0.0)
        assert [o.name for o in outcome.accepted] == ["free"]
        assert outcome.total_price == 0.0

    def test_useless_offers_rejected(self, tree):
        # No demand under r1: its offer adds no savings.
        demand = {"c1": 100.0}
        offers = [ProxyOffer(name="idle", node="s1", capacity_bytes=1e6, price=1.0)]
        outcome = select_offers(tree, demand, offers, budget=10.0)
        assert outcome.accepted == ()
        assert outcome.expected_savings == 0.0

    def test_savings_value(self, tree):
        offers = [ProxyOffer(name="o", node="s0", capacity_bytes=1e6, price=1.0)]
        outcome = select_offers(tree, DEMAND, offers, budget=10.0)
        # s0 is at depth 2; shields c1+c2 (200 bytes of demand).
        assert outcome.expected_savings == pytest.approx(400.0)

    def test_invalid_inputs(self, tree):
        with pytest.raises(TopologyError):
            select_offers(tree, DEMAND, [], budget=-1.0)
        with pytest.raises(TopologyError):
            select_offers(
                tree,
                DEMAND,
                [ProxyOffer(name="leaf", node="c1", capacity_bytes=1.0, price=1.0)],
                budget=1.0,
            )
        with pytest.raises(TopologyError):
            select_offers(tree, {"r0": 1.0}, [], budget=1.0)

    def test_empty_offers(self, tree):
        outcome = select_offers(tree, DEMAND, [], budget=10.0)
        assert outcome == BiddingOutcome(
            accepted=(), total_price=0.0, expected_savings=0.0
        )


class TestSampleClients:
    @pytest.fixture(scope="class")
    def trace(self):
        return SyntheticTraceGenerator(preset("small", 5)).generate()

    def test_full_fraction_identity(self, trace):
        assert sample_clients(trace, 1.0) is trace

    def test_streams_intact(self, trace):
        sampled = sample_clients(trace, 0.3, seed=1)
        full_streams = trace.by_client()
        for client, stream in sampled.by_client().items():
            assert [r.timestamp for r in stream] == [
                r.timestamp for r in full_streams[client]
            ]

    def test_fraction_approximate(self, trace):
        sampled = sample_clients(trace, 0.3, seed=1)
        ratio = len(sampled.clients()) / len(trace.clients())
        assert 0.1 < ratio < 0.55

    def test_deterministic(self, trace):
        a = sample_clients(trace, 0.4, seed=7)
        b = sample_clients(trace, 0.4, seed=7)
        assert a.clients() == b.clients()

    def test_seed_changes_selection(self, trace):
        a = sample_clients(trace, 0.4, seed=1)
        b = sample_clients(trace, 0.4, seed=2)
        assert a.clients() != b.clients()

    def test_consistent_across_windows(self, trace):
        half = trace.window(trace.start_time, trace.start_time + trace.duration / 2)
        sampled_full = sample_clients(trace, 0.4, seed=3)
        sampled_half = sample_clients(half, 0.4, seed=3)
        assert sampled_half.clients() <= sampled_full.clients()

    def test_stride_structure_preserved(self, trace):
        sampled = sample_clients(trace, 0.3, seed=1)
        full_strides = {
            (s.client, s.start_time, len(s))
            for s in split_strides(trace, 5.0)
            if s.client in sampled.clients()
        }
        sampled_strides = {
            (s.client, s.start_time, len(s)) for s in split_strides(sampled, 5.0)
        }
        assert sampled_strides == full_strides

    def test_never_empty(self, trace):
        sampled = sample_clients(trace, 1e-9, seed=1)
        assert len(sampled.clients()) >= 1

    def test_invalid_fraction(self, trace):
        with pytest.raises(TraceFormatError):
            sample_clients(trace, 0.0)
        with pytest.raises(TraceFormatError):
            sample_clients(trace, 1.5)

    @given(st.floats(min_value=0.05, max_value=1.0), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_subset_property(self, fraction, seed):
        requests = [
            Request(timestamp=float(i), client=f"c{i % 7}", doc_id="/d", size=1)
            for i in range(30)
        ]
        trace = Trace(requests)
        sampled = sample_clients(trace, fraction, seed=seed)
        assert sampled.clients() <= trace.clients()
        assert len(sampled) <= len(trace)


class TestBiddingOptimality:
    """Greedy selection against brute force on small instances."""

    def _tree_and_demand(self, rng):
        import itertools

        from repro.topology import RoutingTree

        parents = {}
        demand = {}
        for region in range(3):
            region_node = f"g{region}"
            parents[region_node] = "root"
            sub = f"g{region}s"
            parents[sub] = region_node
            leaf = f"g{region}c"
            parents[leaf] = sub
            demand[leaf] = float(rng.integers(0, 100))
        return RoutingTree("root", parents), demand

    def test_greedy_within_submodular_bound(self):
        import itertools
        import math

        import numpy as np

        from repro.dissemination.bidding import _selection_savings

        rng = np.random.default_rng(0)
        for trial in range(20):
            tree, demand = self._tree_and_demand(rng)
            offers = []
            for index, node in enumerate(sorted(tree.internal_nodes())):
                offers.append(
                    ProxyOffer(
                        name=f"o{index}",
                        node=node,
                        capacity_bytes=1e6,
                        price=float(rng.integers(1, 10)),
                    )
                )
            budget = float(rng.integers(5, 25))
            outcome = select_offers(tree, demand, offers, budget)

            best = 0.0
            for size in range(len(offers) + 1):
                for subset in itertools.combinations(offers, size):
                    if sum(o.price for o in subset) > budget:
                        continue
                    best = max(
                        best,
                        _selection_savings(
                            tree, demand, {o.node for o in subset}
                        ),
                    )
            # Cost-greedy on a budgeted submodular objective: accept the
            # classical 1/2(1-1/e) bound with slack for ties.
            assert outcome.expected_savings >= 0.3 * best - 1e-9
