"""Bit-identity of the sparse engine, the fast replay path, and the
parallel sweep executor — plus the ``repro bench`` gate logic.

The sparse backend's whole contract is *exact* equality with the dict
backend: same pair counts, same closure rows, same replay metrics, same
four ratios, down to the last float bit.  Every test here asserts with
``==``, never ``pytest.approx``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BASELINE
from repro.core import Experiment, interpolate_at_traffic, evaluate_thresholds
from repro.errors import DependencyModelError, PerfRegressionError
from repro.perf import (
    enforce_gate,
    find_regressions,
    merge_reports,
    parallel_map,
    spawn_seeds,
    time_wall,
)
from repro.speculation.caches import make_cache_factory
from repro.speculation.dependency import DependencyModel
from repro.speculation.policies import ThresholdPolicy, TopKPolicy
from repro.speculation.simulator import SpeculativeServiceSimulator
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


@pytest.fixture(scope="module")
def small_trace():
    config = GeneratorConfig(
        seed=11, n_pages=60, n_clients=50, n_sessions=400, duration_days=10
    )
    return SyntheticTraceGenerator(config).generate()


@pytest.fixture(scope="module")
def reference_trace():
    # The reference configuration `repro bench` times and gates.
    config = GeneratorConfig(
        seed=77, n_pages=120, n_clients=150, n_sessions=1500, duration_days=30
    )
    return SyntheticTraceGenerator(config).generate()


# -- estimation and closure parity --------------------------------------------


@pytest.mark.parametrize(
    ("window", "stride_timeout"),
    [(5.0, None), (5.0, 5.0), (2.0, 10.0), (30.0, math.inf), (5.0, 0.0)],
)
def test_estimation_parity_exact(small_trace, window, stride_timeout):
    dict_model = DependencyModel.estimate(
        small_trace, window=window, stride_timeout=stride_timeout, backend="dict"
    )
    sparse_model = DependencyModel.estimate(
        small_trace, window=window, stride_timeout=stride_timeout, backend="sparse"
    )
    assert dict_model.pair_counts == sparse_model.pair_counts
    assert dict_model.occurrence_counts == sparse_model.occurrence_counts


def test_closure_parity_exact_at_reference_scale(reference_trace):
    dict_model = DependencyModel.estimate(
        reference_trace, window=5.0, backend="dict"
    )
    sparse_model = DependencyModel.estimate(
        reference_trace, window=5.0, backend="sparse"
    )
    documents = sorted(dict_model.occurrence_counts)
    assert dict_model.closure_rows(documents) == sparse_model.closure_rows(documents)


def test_unknown_backend_rejected(small_trace):
    with pytest.raises(DependencyModelError):
        DependencyModel.estimate(small_trace, backend="csr")


# -- the headline pipeline: identical sweeps and interpolated numbers ---------


def test_headline_pipeline_parity(small_trace):
    grid = [0.95, 0.5, 0.25, 0.1]
    dict_points = evaluate_thresholds(
        Experiment(small_trace, BASELINE, train_days=5.0, backend="dict"), grid
    )
    sparse_points = evaluate_thresholds(
        Experiment(small_trace, BASELINE, train_days=5.0, backend="sparse"), grid
    )
    assert dict_points == sparse_points
    for level in (0.05, 0.10, 0.50, 1.00):
        assert interpolate_at_traffic(
            dict_points, level
        ) == interpolate_at_traffic(sparse_points, level)


# -- the simulator fast path vs the general loop ------------------------------


def _general_loop(simulator, policy, config):
    # An explicit cache_factory forces the general loop even when the
    # fast-path preconditions hold.
    return simulator.run(
        policy, cache_factory=make_cache_factory(config.session_timeout)
    )


@pytest.mark.parametrize("session_timeout", [math.inf, 1800.0, 0.0])
def test_fast_path_matches_general_loop(small_trace, session_timeout):
    config = BASELINE.with_updates(session_timeout=session_timeout)
    model = DependencyModel.estimate(
        small_trace, window=config.stride_timeout, backend="sparse"
    )
    simulator = SpeculativeServiceSimulator(small_trace, config, model=model)
    for policy in (None, ThresholdPolicy(threshold=0.25), TopKPolicy(k=3)):
        fast = simulator.run(policy)
        reference = _general_loop(simulator, policy, config)
        assert fast.metrics == reference.metrics
        assert fast.cache_hits == reference.cache_hits
        assert fast.accesses == reference.accesses


def test_fast_path_four_ratio_parity(reference_trace):
    dict_exp = Experiment(reference_trace, BASELINE, train_days=15.0, backend="dict")
    sparse_exp = Experiment(
        reference_trace, BASELINE, train_days=15.0, backend="sparse"
    )
    policy = ThresholdPolicy(threshold=0.25)
    dict_ratios, dict_run = dict_exp.evaluate(policy)
    sparse_ratios, sparse_run = sparse_exp.evaluate(policy)
    assert dict_ratios == sparse_ratios
    assert dict_run == sparse_run


# -- incremental estimation: random observe/refresh interleavings -------------

_GAPS = [0.5, 2.0, 6.0, 12.0]


@settings(max_examples=25, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.integers(0, 4), st.integers(0, 9), st.integers(0, len(_GAPS) - 1)
        ),
        min_size=1,
        max_size=60,
    ),
    refresh_after=st.sets(st.integers(0, 59), max_size=5),
)
def test_incremental_parity_random(events, refresh_after):
    dict_model = DependencyModel.incremental(
        window=5.0, stride_timeout=8.0, backend="dict"
    )
    sparse_model = DependencyModel.incremental(
        window=5.0, stride_timeout=8.0, backend="sparse"
    )
    now = 0.0
    for index, (client, doc, gap) in enumerate(events):
        now += _GAPS[gap]
        dict_model.observe(f"c{client}", f"d{doc}", now)
        sparse_model.observe(f"c{client}", f"d{doc}", now)
        if index in refresh_after:
            dict_model.refresh_closure()
            sparse_model.refresh_closure()
            documents = sorted(dict_model.occurrence_counts)
            assert dict_model.closure_rows(documents) == sparse_model.closure_rows(
                documents
            )
    assert dict_model.pair_counts == sparse_model.pair_counts
    assert dict_model.occurrence_counts == sparse_model.occurrence_counts
    documents = sorted(dict_model.occurrence_counts)
    assert dict_model.closure_rows(documents) == sparse_model.closure_rows(documents)


@pytest.mark.parametrize("backend", ["dict", "sparse"])
def test_dirty_row_refresh_equals_full_recompute(backend):
    model = DependencyModel.incremental(
        window=5.0, stride_timeout=8.0, backend=backend
    )
    now = 0.0
    for step in range(80):
        now += 1.5
        model.observe(f"c{step % 5}", f"d{step % 11}", now)
    # Populate the closure cache for the full universe, then dirty a
    # few source rows with more observations.
    model.refresh_closure()
    model.closure_rows(sorted(model.occurrence_counts))
    for step in range(20):
        now += 1.5
        model.observe(f"c{step % 3}", f"d{(step * 3) % 7}", now)
    model.refresh_closure()

    fresh = DependencyModel.from_counts(
        model.pair_counts, model.occurrence_counts, backend=backend
    )
    for doc in sorted(model.occurrence_counts):
        assert model.closure_row(doc) == fresh.closure_row(doc)


# -- the parallel sweep executor ----------------------------------------------


def _cube(value):
    return value**3


def test_parallel_map_is_ordered_and_identical():
    items = list(range(20))
    serial = parallel_map(_cube, items, workers=1)
    assert serial == [_cube(item) for item in items]
    assert parallel_map(_cube, items, workers=4) == serial


def test_parallel_map_accepts_closures():
    offset = 7
    assert parallel_map(lambda v: v + offset, [1, 2, 3], workers=2) == [8, 9, 10]


def test_spawn_seeds_deterministic():
    seeds = spawn_seeds(123, 6)
    assert seeds == spawn_seeds(123, 6)
    assert len(set(seeds)) == 6
    assert all(seed >= 0 for seed in seeds)
    assert spawn_seeds(124, 6) != seeds
    with pytest.raises(ValueError):
        spawn_seeds(123, -1)


def test_parallel_threshold_sweep_byte_identical(small_trace):
    experiment = Experiment(small_trace, BASELINE, train_days=5.0)
    grid = [0.9, 0.5, 0.25, 0.1]
    serial = evaluate_thresholds(experiment, grid)
    parallel = evaluate_thresholds(experiment, grid, workers=4)
    assert parallel == serial


# -- the bench gate -----------------------------------------------------------


def _section(speedups, medians):
    return {
        "repeats": 3,
        "medians_seconds": medians,
        "speedups": speedups,
    }


def _report(machine, **scales):
    return {"machine": machine, "git_sha": "deadbeef", "scales": scales}


_MACHINE = {"system": "Linux", "machine": "x86_64", "python": "3.12", "cpus": "8"}
_OTHER = {"system": "Linux", "machine": "aarch64", "python": "3.12", "cpus": "4"}
_GOOD = {"estimation": 3.5, "closure": 5.0, "replay": 4.0, "replay_columnar": 3.0}


def test_gate_passes_clean_report():
    report = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.010}))
    baseline = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.010}))
    assert find_regressions(report, baseline) == []
    enforce_gate(report, baseline)


def test_gate_enforces_speedup_floors():
    slow = dict(_GOOD, estimation=2.0)
    report = _report(_MACHINE, full=_section(slow, {"replay_sparse": 0.010}))
    findings = find_regressions(report, None)
    assert any("estimation" in finding and "floor" in finding for finding in findings)
    with pytest.raises(PerfRegressionError):
        enforce_gate(report, None)


def test_gate_flags_same_machine_median_regression():
    report = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.020}))
    baseline = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.010}))
    findings = find_regressions(report, baseline)
    assert any("replay_sparse" in finding for finding in findings)
    # A 25%-or-less drift is within the gate's tolerance.
    mild = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.012}))
    assert find_regressions(mild, baseline) == []


def test_gate_normalizes_uniform_machine_load_drift():
    # Every stage — including the untouched dict reference — slowed by
    # the same 60%: that is a busier machine, not a code regression.
    committed = {"estimation_dict": 0.010, "estimation_sparse": 0.003}
    drifted = {"estimation_dict": 0.016, "estimation_sparse": 0.0048}
    report = _report(_MACHINE, full=_section(_GOOD, drifted))
    baseline = _report(_MACHINE, full=_section(_GOOD, committed))
    assert find_regressions(report, baseline) == []


def test_gate_still_flags_differential_regression():
    # The dict reference held steady, so a 60% sparse slow-down is real.
    committed = {"estimation_dict": 0.010, "estimation_sparse": 0.003}
    drifted = {"estimation_dict": 0.010, "estimation_sparse": 0.0048}
    report = _report(_MACHINE, full=_section(_GOOD, drifted))
    baseline = _report(_MACHINE, full=_section(_GOOD, committed))
    findings = find_regressions(report, baseline)
    assert any("estimation_sparse" in finding for finding in findings)


def test_gate_exempts_dict_reference_medians():
    # Dict stages are the load reference; their drift is machine
    # weather, not a regression — only sparse medians are gated.
    committed = {"replay_dict": 0.010, "replay_sparse": 0.003}
    drifted = {"replay_dict": 0.020, "replay_sparse": 0.003}
    report = _report(_MACHINE, full=_section(_GOOD, drifted))
    baseline = _report(_MACHINE, full=_section(_GOOD, committed))
    assert find_regressions(report, baseline) == []


def test_gate_skips_absolute_comparison_across_machines():
    report = _report(_OTHER, full=_section(_GOOD, {"replay_sparse": 0.050}))
    baseline = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.010}))
    assert find_regressions(report, baseline) == []


def test_time_wall_builds_a_gateable_section():
    calls = []
    section = time_wall("fleet_smoke", lambda: calls.append(1), repeats=3)
    assert len(calls) == 3
    assert section["repeats"] == 3
    assert set(section["medians_seconds"]) == {"fleet_smoke_wall"}
    assert section["medians_seconds"]["fleet_smoke_wall"] >= 0.0


def test_gate_flags_wall_median_regression():
    # Injected wall sections have no dict partner: strict comparison,
    # but at the wider 50% tolerance.
    wall = {"fleet_smoke_wall": 2.0}
    report = _report(_MACHINE, **{"fleet-smoke": _section(_GOOD, wall)})
    baseline = _report(
        _MACHINE, **{"fleet-smoke": _section(_GOOD, {"fleet_smoke_wall": 1.0})}
    )
    findings = find_regressions(report, baseline)
    assert any("fleet_smoke_wall" in finding for finding in findings)
    mild = _report(
        _MACHINE, **{"fleet-smoke": _section(_GOOD, {"fleet_smoke_wall": 1.4})}
    )
    assert find_regressions(mild, baseline) == []


def test_merge_reports_keeps_untouched_scales():
    baseline = _report(_MACHINE, full=_section(_GOOD, {"replay_sparse": 0.010}))
    smoke_only = _report(_MACHINE, smoke=_section(_GOOD, {"replay_sparse": 0.002}))
    merged = merge_reports(baseline, smoke_only)
    assert set(merged["scales"]) == {"full", "smoke"}
    assert merged["scales"]["full"] == baseline["scales"]["full"]
    assert merge_reports(None, smoke_only) == smoke_only
