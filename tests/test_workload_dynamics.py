"""Tests for workload evolution: link churn, page birth, region affinity."""

import dataclasses

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.speculation import DependencyModel
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

BASE = GeneratorConfig(
    seed=17, n_pages=80, n_clients=60, n_sessions=600, duration_days=30
)


def variant(**kw):
    return dataclasses.replace(BASE, **kw)


class TestLinkChurn:
    def test_zero_churn_stationary(self):
        gen = SyntheticTraceGenerator(variant(link_churn_per_day=0.0))
        gen.generate()
        assert gen._links == [p.links for p in gen.site.pages]

    def test_churn_rewires_links(self):
        gen = SyntheticTraceGenerator(variant(link_churn_per_day=0.2))
        gen.generate()
        original = [p.links for p in gen.site.pages]
        changed = sum(1 for a, b in zip(original, gen._links) if a != b)
        assert changed > 10

    def test_churn_preserves_out_degree_floor(self):
        gen = SyntheticTraceGenerator(variant(link_churn_per_day=0.5))
        gen.generate()
        assert all(len(links) >= 1 for links in gen._links)

    def test_churned_dependencies_drift(self):
        """The P matrix learned early must differ from the one learned
        late when links churn — the property E1 depends on."""
        gen = SyntheticTraceGenerator(
            variant(link_churn_per_day=0.15, n_sessions=2000)
        )
        trace = gen.generate()
        third = trace.duration / 3
        early = DependencyModel.estimate(
            trace.window(trace.start_time, trace.start_time + third), window=5.0
        )
        late = DependencyModel.estimate(
            trace.window(trace.end_time - third, trace.end_time + 1), window=5.0
        )

        def edges(model):
            return {
                (s, t)
                for s, row in model.pair_counts.items()
                for t in row
            }

        early_edges, late_edges = edges(early), edges(late)
        overlap = len(early_edges & late_edges)
        assert overlap < min(len(early_edges), len(late_edges))

    def test_invalid_churn(self):
        with pytest.raises(CalibrationError):
            variant(link_churn_per_day=1.5)


class TestPageBirth:
    def test_newborn_pages_absent_early(self):
        gen = SyntheticTraceGenerator(variant(new_page_fraction=0.4))
        trace = gen.generate()
        newborn_ids = {
            gen.site.pages[i].doc_id
            for i in np.nonzero(gen._birth_day > 0)[0]
        }
        first_day = trace.window(trace.start_time, trace.start_time + 86_400)
        assert not ({r.doc_id for r in first_day} & newborn_ids)

    def test_newborn_pages_eventually_requested(self):
        gen = SyntheticTraceGenerator(
            variant(new_page_fraction=0.4, n_sessions=2000)
        )
        trace = gen.generate()
        newborn_ids = {
            gen.site.pages[i].doc_id
            for i in np.nonzero(gen._birth_day > 0)[0]
        }
        assert {r.doc_id for r in trace} & newborn_ids

    def test_zero_fraction_all_born(self):
        gen = SyntheticTraceGenerator(variant(new_page_fraction=0.0))
        assert gen._born.all()

    def test_at_least_one_initial_page(self):
        gen = SyntheticTraceGenerator(variant(new_page_fraction=0.99))
        assert gen._born.any()

    def test_invalid_fraction(self):
        with pytest.raises(CalibrationError):
            variant(new_page_fraction=1.0)


class TestRegionAffinity:
    def _region_top_docs(self, trace, gen, region, top=10):
        from collections import Counter

        counts = Counter(
            r.doc_id
            for r in trace
            if not r.client.startswith("local-")
            and r.client.endswith(f"region-{region:02d}")
            and gen.site.document(r.doc_id).kind == "page"
        )
        return {doc for doc, __ in counts.most_common(top)}

    def test_affinity_differentiates_regions(self):
        gen = SyntheticTraceGenerator(
            variant(
                region_affinity=0.8,
                n_regions=4,
                n_sessions=3000,
                n_clients=300,
            )
        )
        trace = gen.generate()
        tops = [
            self._region_top_docs(trace, gen, region) for region in (1, 2, 3)
        ]
        populated = [t for t in tops if t]
        assert len(populated) >= 2
        # With strong affinity, regional top sets must not coincide.
        assert populated[0] != populated[1]

    def test_no_affinity_regions_agree(self):
        gen = SyntheticTraceGenerator(
            variant(
                region_affinity=0.0, n_regions=4, n_sessions=3000, n_clients=300
            )
        )
        trace = gen.generate()
        tops = [
            self._region_top_docs(trace, gen, region, top=5)
            for region in (1, 2, 3)
        ]
        populated = [t for t in tops if len(t) == 5]
        assert len(populated) >= 2
        # Shared global ranking: top sets overlap heavily.
        assert len(populated[0] & populated[1]) >= 3

    def test_invalid_affinity(self):
        with pytest.raises(CalibrationError):
            variant(region_affinity=-0.1)

    def test_determinism_with_all_dynamics(self):
        config = variant(
            link_churn_per_day=0.1,
            new_page_fraction=0.3,
            region_affinity=0.5,
        )
        a = SyntheticTraceGenerator(config).generate()
        b = SyntheticTraceGenerator(config).generate()
        assert [(r.timestamp, r.doc_id) for r in a] == [
            (r.timestamp, r.doc_id) for r in b
        ]
