"""Tests for cost-weighted allocation and hierarchical shielding."""

import pytest

from repro.errors import AllocationError, TopologyError
from repro.dissemination import (
    HierarchicalShielding,
    ProxyLevel,
    ServerModel,
    exponential_allocation,
    hop_weights_from_tree,
    weighted_exponential_allocation,
)
from repro.topology import RoutingTree


class TestWeightedAllocation:
    def _servers(self):
        return [ServerModel("near", 100, 1e-6), ServerModel("far", 100, 1e-6)]

    def test_uniform_weights_match_unweighted(self):
        servers = self._servers()
        weighted = weighted_exponential_allocation(
            servers, {"near": 1.0, "far": 1.0}, 4e6
        )
        plain = exponential_allocation(servers, 4e6)
        assert weighted.allocations == pytest.approx(plain.allocations)

    def test_expensive_server_favoured(self):
        servers = self._servers()
        result = weighted_exponential_allocation(
            servers, {"near": 1.0, "far": 5.0}, 4e6
        )
        assert result.allocations["far"] > result.allocations["near"]

    def test_zero_weight_starves_server(self):
        servers = self._servers()
        result = weighted_exponential_allocation(
            servers, {"near": 1.0, "far": 0.0}, 1e6
        )
        assert result.allocations["far"] == 0.0
        assert result.allocations["near"] == pytest.approx(1e6)

    def test_budget_conserved(self):
        result = weighted_exponential_allocation(
            self._servers(), {"near": 2.0, "far": 3.0}, 5e6
        )
        assert result.used == pytest.approx(5e6)

    def test_missing_weight_rejected(self):
        with pytest.raises(AllocationError):
            weighted_exponential_allocation(self._servers(), {"near": 1.0}, 1e6)

    def test_negative_weight_rejected(self):
        with pytest.raises(AllocationError):
            weighted_exponential_allocation(
                self._servers(), {"near": 1.0, "far": -1.0}, 1e6
            )


class TestHopWeights:
    def test_depth_difference(self):
        tree = RoutingTree(
            "root", {"proxy": "root", "s1": "proxy", "deep": "s1", "s2": "deep"}
        )
        weights = hop_weights_from_tree(
            tree, "proxy", {"near": "s1", "far": "s2"}
        )
        assert weights["near"] == 1.0
        assert weights["far"] == 3.0

    def test_minimum_one(self):
        tree = RoutingTree("root", {"proxy": "root"})
        weights = hop_weights_from_tree(tree, "proxy", {"self": "proxy"})
        assert weights["self"] == 1.0


class TestHierarchicalShielding:
    def test_fractions_sum_to_one(self):
        shielding = HierarchicalShielding(
            [ProxyLevel(4, 10e6, 10), ProxyLevel(2, 20e6, 10)],
            lam=6.247e-7,
            n_home_servers=10,
        )
        outcomes = shielding.distribute(1000.0)
        assert sum(o.absorbed_fraction for o in outcomes) == pytest.approx(1.0)

    def test_outer_level_absorbs_first(self):
        shielding = HierarchicalShielding(
            [ProxyLevel(1, 50e6, 10)], lam=6.247e-7, n_home_servers=10
        )
        outcomes = shielding.distribute(1000.0)
        assert outcomes[0].label == "level-0"
        assert outcomes[-1].label == "home-servers"
        assert outcomes[0].absorbed_fraction > outcomes[-1].absorbed_fraction

    def test_zero_storage_absorbs_nothing(self):
        shielding = HierarchicalShielding(
            [ProxyLevel(1, 0.0, 10)], lam=1e-6, n_home_servers=5
        )
        outcomes = shielding.distribute(100.0)
        assert outcomes[0].absorbed_fraction == 0.0
        assert outcomes[-1].absorbed_fraction == pytest.approx(1.0)

    def test_extra_level_relieves_bottleneck(self):
        """The paper's §2.3 argument: one proxy absorbing 96% is a
        bottleneck; adding a wider level closer to clients cuts the
        busiest machine's load."""
        lam = 6.247e-7
        single = HierarchicalShielding(
            [ProxyLevel(1, 500e6, 100)], lam=lam, n_home_servers=100
        )
        # Same inner proxy, plus 10 smaller outer proxies absorbing first.
        layered = HierarchicalShielding(
            [ProxyLevel(10, 50e6, 100), ProxyLevel(1, 500e6, 100)],
            lam=lam,
            n_home_servers=100,
        )
        offered = 1_000_000.0
        assert layered.peak_node_load(offered) < single.peak_node_load(offered)

    def test_load_per_node_division(self):
        shielding = HierarchicalShielding(
            [ProxyLevel(4, 50e6, 10)], lam=6.247e-7, n_home_servers=10
        )
        outcomes = shielding.distribute(1000.0)
        level = outcomes[0]
        assert level.load_per_node == pytest.approx(
            level.absorbed_fraction * 1000.0 / 4
        )

    def test_validation(self):
        with pytest.raises(TopologyError):
            HierarchicalShielding([], lam=1e-6, n_home_servers=1)
        with pytest.raises(TopologyError):
            HierarchicalShielding(
                [ProxyLevel(1, 1.0, 1)], lam=0.0, n_home_servers=1
            )
        with pytest.raises(TopologyError):
            ProxyLevel(0, 1.0, 1)
        with pytest.raises(TopologyError):
            ProxyLevel(1, -1.0, 1)
        shielding = HierarchicalShielding(
            [ProxyLevel(1, 1.0, 1)], lam=1e-6, n_home_servers=1
        )
        with pytest.raises(TopologyError):
            shielding.distribute(-1.0)
