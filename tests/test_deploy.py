"""The deployment layer: hash ring, event bus, fault plans, processes.

The distributed integration tests fork real OS processes and talk over
real sockets; they use the tiny smoke workload so the whole module
stays in CI-friendly territory.
"""

import argparse
import asyncio
import time
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunSpec, Session
from repro.cli.commands import _legacy_loadtest_deploy
from repro.config import LOCAL_DEPLOY, DeploySpec
from repro.deploy import (
    DeployFaultPlan,
    EventBus,
    HashRing,
    execute_deploy,
    shard_name,
)
from repro.deploy.workers import ProxyFault
from repro.errors import SimulationError, TransportError
from repro.runtime import (
    LiveSettings,
    TcpServer,
    execute_loadtest,
    smoke_workload,
    tcp_call,
)
from repro.runtime.messages import make_request, make_response

DOC_IDS = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-", min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=120,
    unique=True,
)


class TestHashRing:
    @given(docs=DOC_IDS, shards=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_every_doc_has_exactly_one_stable_owner(self, docs, shards):
        ring = HashRing(shards)
        rebuilt = HashRing(shards)
        names = {shard_name(index) for index in range(shards)}
        for doc in docs:
            owner = ring.owner(doc)
            assert owner in names
            # Ownership is a pure function of (doc, ring state): an
            # independently constructed ring in another process agrees.
            assert rebuilt.owner(doc) == owner
            assert ring.owners(doc, 1) == (owner,)

    @given(docs=DOC_IDS, shards=st.integers(2, 6), replicas=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_owners_are_distinct_and_led_by_the_primary(
        self, docs, shards, replicas
    ):
        replicas = min(replicas, shards)
        ring = HashRing(shards)
        for doc in docs:
            owners = ring.owners(doc, replicas)
            assert len(owners) == replicas
            assert len(set(owners)) == replicas
            assert owners[0] == ring.owner(doc)

    @given(
        docs=st.lists(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-",
                min_size=1,
                max_size=24,
            ),
            min_size=100,
            max_size=300,
            unique=True,
        ),
        shards=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_adding_a_shard_moves_a_bounded_key_fraction(self, docs, shards):
        before = HashRing(shards)
        after = HashRing(shards + 1)
        moved = sum(
            1 for doc in docs if before.owner(doc) != after.owner(doc)
        )
        # Consistent hashing's headline property: growing the ring from
        # n to n+1 shards reassigns about 1/(n+1) of the keys.  The
        # epsilon absorbs vnode arc-length variance on small samples.
        assert moved / len(docs) <= 1 / (shards + 1) + 0.25

    def test_resolver_fails_over_across_the_replica_set(self):
        ring = HashRing(3)
        resolve = ring.resolver(2)
        owners = ring.owners("/page.html", 2)
        assert resolve("/page.html", 0) == owners[0]
        assert resolve("/page.html", 1) == owners[1]
        assert resolve("/page.html", 2) == owners[0]

    def test_validation(self):
        with pytest.raises(SimulationError):
            HashRing(0)
        with pytest.raises(SimulationError):
            HashRing(2, vnodes=0)
        with pytest.raises(SimulationError):
            HashRing(2).owners("/a", 3)


class TestEventBus:
    def test_round_trip_preserves_publish_order(self, tmp_path):
        bus = EventBus(tmp_path / "bus")
        bus.publish("control", "start", {"n": 1}, event_id="e1")
        bus.publish("control", "stop", {"n": 2}, event_id="e2")
        events = bus.consumer("control").drain()
        assert [(e.event_id, e.kind, e.payload) for e in events] == [
            ("e1", "start", {"n": 1}),
            ("e2", "stop", {"n": 2}),
        ]

    def test_at_least_once_duplicates_are_absorbed(self, tmp_path):
        bus = EventBus(tmp_path / "bus")
        for _ in range(3):
            bus.publish("placement", "placement", {"p": 1}, event_id="p:0")
        consumer = bus.consumer("placement")
        assert [e.event_id for e in consumer.drain()] == ["p:0"]
        assert consumer.duplicates == 2

    def test_torn_line_is_never_consumed(self, tmp_path):
        bus = EventBus(tmp_path / "bus")
        bus.publish("control", "start", {}, event_id="e1")
        path = tmp_path / "bus" / "control.jsonl"
        with path.open("ab") as handle:
            handle.write(b'{"event_id": "e2", "kind": "stop", "payl')
        consumer = bus.consumer("control")
        assert [e.event_id for e in consumer.drain()] == ["e1"]
        with path.open("ab") as handle:
            handle.write(b'oad": {}}\n')
        assert [e.event_id for e in consumer.drain()] == ["e2"]

    def test_offset_checkpoint_resumes_without_replay(self, tmp_path):
        bus = EventBus(tmp_path / "bus")
        bus.publish("control", "a", {}, event_id="e1")
        bus.publish("control", "b", {}, event_id="e2")
        consumer = bus.consumer("control")
        assert consumer.poll_one().event_id == "e1"
        resumed = bus.consumer("control", offset=consumer.offset)
        assert [e.event_id for e in resumed.drain()] == ["e2"]

    def test_replay_is_the_recovery_path(self, tmp_path):
        bus = EventBus(tmp_path / "bus")
        bus.publish("placement", "placement", {"v": 1}, event_id="p:0")
        bus.publish("placement", "placement", {"v": 1}, event_id="p:0")
        bus.publish("placement", "placement", {"v": 2}, event_id="p:1")
        assert [e.payload["v"] for e in bus.replay("placement")] == [1, 2]

    def test_invalid_topics_are_rejected(self, tmp_path):
        bus = EventBus(tmp_path / "bus")
        for topic in ("", "../escape", ".hidden"):
            with pytest.raises(SimulationError):
                bus.publish(topic, "k", {}, event_id="x")

    def test_await_event_times_out(self, tmp_path):
        bus = EventBus(tmp_path / "bus")

        async def wait():
            await bus.consumer("empty").await_event(
                lambda event: True, timeout=0.05
            )

        with pytest.raises(SimulationError):
            asyncio.run(wait())


class TestDeploySpec:
    def test_local_default(self):
        assert LOCAL_DEPLOY.local
        assert LOCAL_DEPLOY.proxy_hosts == 0
        assert DeploySpec(processes=1) == LOCAL_DEPLOY

    def test_distributed_topology_split(self):
        spec = DeploySpec(processes=5, shards=2, replicas=2)
        assert not spec.local
        assert spec.proxy_hosts == 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            DeploySpec(processes=0)
        with pytest.raises(SimulationError):
            DeploySpec(shards=0)
        with pytest.raises(SimulationError):
            DeploySpec(shards=2, replicas=3)
        with pytest.raises(SimulationError):
            DeploySpec(codec="morse")
        with pytest.raises(SimulationError):
            # 3 shards need at least 4 processes (one proxy host).
            DeploySpec(processes=3, shards=3)

    def test_with_updates(self):
        spec = DeploySpec(processes=4, shards=2)
        assert spec.with_updates(replicas=2).replicas == 2
        assert spec.with_updates(replicas=2) != spec


class TestDeployFaultPlan:
    def test_resolves_indexes_to_sorted_proxy_names(self):
        plan = DeployFaultPlan(
            crash_proxy=0, crash_after=5, restart_after=9,
            partition_proxy=1, partition_from=3, partition_until=7,
        )
        faults = plan.resolve(["region-01", "region-02"])
        assert faults["region-01"] == ProxyFault(crash_after=5, restart_after=9)
        assert faults["region-02"] == ProxyFault(
            partition_from=3, partition_until=7
        )

    def test_crash_and_partition_merge_on_one_target(self):
        plan = DeployFaultPlan(
            crash_proxy=0, crash_after=5, partition_proxy=0, partition_from=8
        )
        faults = plan.resolve(["region-01"])
        assert faults["region-01"].crash_after == 5
        assert faults["region-01"].partition_from == 8

    def test_out_of_range_index_is_rejected(self):
        with pytest.raises(SimulationError):
            DeployFaultPlan(crash_proxy=2).resolve(["region-01"])


class TestTcpServerClose:
    """Regression: ``close()`` must flush in-flight replies first."""

    def test_close_drains_the_reply_a_slow_handler_owes(self):
        async def scenario():
            release = asyncio.Event()

            async def slow_handler(message):
                await release.wait()
                return make_response(
                    "origin", message.request_id, "/a", 64, "origin"
                )

            server = TcpServer(slow_handler, drain_timeout=5.0)
            await server.start()
            call = asyncio.create_task(
                tcp_call(
                    "127.0.0.1",
                    server.port,
                    make_request("c", "c#1", "/a", 0.0),
                    timeout=5.0,
                )
            )
            await asyncio.sleep(0.05)  # request is now inside the handler
            closer = asyncio.create_task(server.close())
            await asyncio.sleep(0.05)  # close() is now draining, not killing
            assert not call.done()
            release.set()
            reply = await call
            await closer
            return reply

        reply = asyncio.run(scenario())
        assert reply.kind == "response"
        assert reply.payload["served_by"] == "origin"

    def test_close_still_cancels_after_the_drain_timeout(self):
        async def scenario():
            async def stuck_handler(message):
                await asyncio.sleep(30.0)
                return None

            server = TcpServer(stuck_handler, drain_timeout=0.1)
            await server.start()
            call = asyncio.create_task(
                tcp_call(
                    "127.0.0.1",
                    server.port,
                    make_request("c", "c#1", "/a", 0.0),
                    timeout=5.0,
                )
            )
            await asyncio.sleep(0.05)
            started = time.perf_counter()
            await server.close()
            assert time.perf_counter() - started < 5.0
            with pytest.raises(TransportError):
                await call

        asyncio.run(scenario())


class TestExecuteDeploy:
    def test_local_spec_is_the_single_loop_mode(self):
        report = execute_deploy(smoke_workload(0), LiveSettings(seed=0))
        local = execute_loadtest(smoke_workload(0), LiveSettings(seed=0))
        assert report.processes == 1
        assert report.bus_path is None
        assert report.spec == LOCAL_DEPLOY
        assert report.ratios == local.ratios

    def test_fault_plan_requires_a_distributed_spec(self):
        with pytest.raises(SimulationError):
            execute_deploy(
                smoke_workload(0),
                LiveSettings(seed=0),
                fault_plan=DeployFaultPlan(crash_proxy=0),
            )

    def test_loadtest_rejects_distributed_specs(self):
        with pytest.raises(SimulationError):
            execute_loadtest(
                smoke_workload(0),
                LiveSettings(seed=0),
                deploy=DeploySpec(processes=4, shards=2),
            )

    def test_distributed_ratios_are_bit_identical_to_single_loop(
        self, tmp_path
    ):
        spec = DeploySpec(
            processes=4, shards=2, replicas=2, bus_path=str(tmp_path / "bus")
        )
        report = execute_deploy(smoke_workload(0), LiveSettings(seed=0), spec=spec)
        local = execute_loadtest(smoke_workload(0), LiveSettings(seed=0))
        # The cross-process correctness gate: merged ratios equal the
        # single-loop reference exactly, not within a tolerance.
        assert report.ratios == local.ratios
        assert report.processes == 4
        assert report.bus_path == str(tmp_path / "bus")
        # The coordinator double-publishes placements, so the duplicate
        # filters must have absorbed at least one event per proxy per arm.
        assert report.bus_duplicates >= 2 * len(report.anti_entropy)
        assert report.anti_entropy  # every proxy reported a digest
        assert (tmp_path / "bus" / "baseline" / "placement.jsonl").exists()


class TestSessionDeploy:
    def test_runspec_threads_the_deploy_spec(self):
        spec = DeploySpec(processes=4, shards=2)
        assert RunSpec(deploy=spec).resolved_deploy() is spec
        assert RunSpec().resolved_deploy() == LOCAL_DEPLOY

    def test_facade_returns_the_one_report_shape(self):
        report = Session(seed=0).deploy()
        assert report.kind == "deploy"
        assert report.detail.processes == 1
        assert report.ratios == report.detail.ratios


class TestLegacyFlagShims:
    def test_explicit_flags_warn_and_build_the_equivalent_spec(self):
        args = argparse.Namespace(codec="json", workers=2)
        with pytest.warns(DeprecationWarning, match="DeploySpec"):
            spec = _legacy_loadtest_deploy(args)
        assert spec == DeploySpec(workers=2, codec="json")

    def test_defaults_stay_silent_and_specless(self):
        args = argparse.Namespace(codec=None, workers=None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _legacy_loadtest_deploy(args) is None
