"""The ``repro lint`` front-end: flags, exit codes, reports, baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis import runner
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO = Path(__file__).parent.parent


def run(args, capsys):
    code = runner.main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_repo_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        code, out, _ = run(["src", "benchmarks", "examples"], capsys)
        assert code == 0
        assert "clean" in out

    def test_each_checker_family_fails_its_fixture(self, capsys):
        fixtures = {
            "determinism_violations.py",
            "numeric_violations.py",
            "hygiene_violations.py",
        }
        for fixture in fixtures:
            code, out, _ = run(
                ["--no-baseline", str(FIXTURES / fixture)], capsys
            )
            assert code == 1, fixture
        code, out, _ = run(
            ["--no-baseline", str(FIXTURES / "layering" / "broken")], capsys
        )
        assert code == 1
        assert "L00" in out

    def test_missing_path_is_usage_error(self, capsys, tmp_path):
        code, _, err = run([str(tmp_path / "missing")], capsys)
        assert code == 2
        assert "error" in err

    def test_unknown_rule_is_usage_error(self, capsys):
        code, _, err = run(["--select", "Z999", str(FIXTURES)], capsys)
        assert code == 2
        assert "Z999" in err

    def test_unknown_checker_is_usage_error(self, capsys):
        code, _, err = run(["--checker", "nope", str(FIXTURES)], capsys)
        assert code == 2


class TestFlags:
    def test_list_rules(self, capsys):
        code, out, _ = run(["--list-rules"], capsys)
        assert code == 0
        for rule_id in ("D001", "L001", "N001", "H001"):
            assert rule_id in out

    def test_select_narrows_to_one_rule(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--select",
                "D001",
                str(FIXTURES / "determinism_violations.py"),
            ],
            capsys,
        )
        assert code == 1
        assert "D001" in out
        assert "D002" not in out

    def test_disable_silences_a_rule(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--disable",
                "N001,N002,N003",
                str(FIXTURES / "numeric_violations.py"),
            ],
            capsys,
        )
        assert code == 0

    def test_json_format_round_trips(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--format",
                "json",
                str(FIXTURES / "hygiene_violations.py"),
            ],
            capsys,
        )
        document = json.loads(out)
        assert code == 1
        assert document["exit_code"] == 1
        assert document["summary"]["total"] == len(document["findings"])
        rules = {f["rule"] for f in document["findings"]}
        assert rules == {"H001", "H002", "H003"}


class TestBaselineWorkflow:
    def test_write_then_pass_then_stale(self, capsys, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(xs=[]):\n    return xs\n")
        baseline = tmp_path / "baseline.json"

        code, _, err = run(
            ["--baseline", str(baseline), "--write-baseline", str(target)],
            capsys,
        )
        assert code == 0
        assert "wrote 1 finding" in err

        code, out, _ = run(
            ["--baseline", str(baseline), str(target)], capsys
        )
        assert code == 0
        assert "suppressed by baseline" in out

        target.write_text("def f(xs=None):\n    return xs\n")
        code, out, _ = run(
            ["--baseline", str(baseline), str(target)], capsys
        )
        assert code == 0
        assert "stale baseline entry" in out


class TestReproCliIntegration:
    def test_lint_subcommand_dispatches(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert repro_main(["lint", "src"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_lint_subcommand_propagates_failure(self, capsys):
        code = repro_main(
            ["lint", "--no-baseline", str(FIXTURES / "numeric_violations.py")]
        )
        assert code == 1

    def test_lint_appears_in_help(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "lint" in capsys.readouterr().out

    def test_other_subcommands_still_parse(self, tmp_path, capsys):
        path = tmp_path / "t.log"
        assert (
            repro_main(
                ["generate", str(path), "--sessions", "50", "--days", "2",
                 "--pages", "20", "--clients", "10"]
            )
            == 0
        )
