"""API-hygiene checker: mutable defaults, swallowed errors, shadowing."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name):
    return run_lint(
        [FIXTURES / name],
        config=LintConfig(),
        checker_names=["hygiene"],
        base_dir=FIXTURES,
    )


class TestViolations:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_fixture("hygiene_violations.py").findings

    def test_every_rule_fires(self, findings):
        assert {f.rule_id for f in findings} == {"H001", "H002", "H003"}

    def test_all_four_mutable_default_forms(self, findings):
        flagged = [f for f in findings if f.rule_id == "H001"]
        assert len(flagged) == 4  # [], {}, set(), list()
        assert {"history", "cache", "seen", "order"} == {
            f.message.split("`")[1] for f in flagged
        }

    def test_swallowing_handlers(self, findings):
        flagged = [f for f in findings if f.rule_id == "H002"]
        assert len(flagged) == 2
        assert any("bare" in f.message for f in flagged)
        assert any("Exception" in f.message for f in flagged)

    def test_shadowed_builtins(self, findings):
        names = {
            f.message.split("`")[1]
            for f in findings
            if f.rule_id == "H003"
        }
        assert names == {"list", "sum", "id"}


class TestCleanCode:
    def test_hygienic_fixture_passes(self):
        assert lint_fixture("hygiene_clean.py").findings == []

    def test_reraising_broad_handler_is_accepted(self, tmp_path):
        path = tmp_path / "handler.py"
        path.write_text(
            "def f(g):\n"
            "    try:\n"
            "        return g()\n"
            "    except Exception as error:\n"
            "        raise RuntimeError('context') from error\n"
        )
        result = run_lint([path], checker_names=["hygiene"], base_dir=tmp_path)
        assert result.findings == []

    def test_immutable_call_default_is_accepted(self, tmp_path):
        path = tmp_path / "defaults.py"
        path.write_text(
            "def f(size=tuple(), label=frozenset({1})):\n"
            "    return size, label\n"
        )
        result = run_lint([path], checker_names=["hygiene"], base_dir=tmp_path)
        assert result.findings == []


class TestRepoHygiene:
    def test_repo_sources_are_hygienic(self):
        repo = Path(__file__).parent.parent
        result = run_lint(
            [repo / "src", repo / "benchmarks", repo / "examples"],
            checker_names=["hygiene"],
            base_dir=repo,
        )
        assert result.findings == []


class TestLegacyEntryPoints:
    def test_importing_a_shim_is_flagged(self, tmp_path):
        path = tmp_path / "legacy_import.py"
        path.write_text(
            "from repro.runtime import run_loadtest\n"
            "from repro.core import sweep_thresholds\n"
        )
        result = run_lint([path], checker_names=["hygiene"], base_dir=tmp_path)
        assert [f.rule_id for f in result.findings] == ["H004", "H004"]
        assert all("deprecated shim" in f.message for f in result.findings)

    def test_calling_a_shim_is_flagged(self, tmp_path):
        path = tmp_path / "legacy_call.py"
        path.write_text(
            "import repro.runtime\n"
            "def direct(run_chaos_smoke):\n"
            "    run_chaos_smoke(0)\n"
            "def attribute():\n"
            "    repro.runtime.run_smoke(0)\n"
        )
        result = run_lint([path], checker_names=["hygiene"], base_dir=tmp_path)
        messages = [f.message for f in result.findings]
        assert len(messages) == 2
        assert any("run_chaos_smoke" in m for m in messages)
        assert any("run_smoke" in m for m in messages)
        assert all("repro.api.Session" in m for m in messages)

    def test_the_facade_and_engines_are_clean(self, tmp_path):
        path = tmp_path / "modern.py"
        path.write_text(
            "from repro.api import Session\n"
            "from repro.runtime import execute_loadtest\n"
            "def run():\n"
            "    return Session(seed=0).loadtest()\n"
        )
        result = run_lint([path], checker_names=["hygiene"], base_dir=tmp_path)
        assert result.findings == []
