"""Tests for the synthetic site graph."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.workload import SiteGraph


def build(seed=0, n_pages=50, **kw):
    return SiteGraph(n_pages, np.random.default_rng(seed), **kw)


class TestStructure:
    def test_page_count(self):
        site = build(n_pages=30)
        assert len(site.pages) == 30

    def test_every_page_in_catalog(self):
        site = build()
        doc_ids = {d.doc_id for d in site.documents()}
        for page in site.pages:
            assert page.doc_id in doc_ids
            for embedded in page.embedded:
                assert embedded in doc_ids

    def test_links_valid_indices(self):
        site = build()
        for page in site.pages:
            for target in page.links:
                assert 0 <= target < site.n_pages

    def test_no_self_links(self):
        site = build()
        for index, page in enumerate(site.pages):
            assert index not in page.links

    def test_no_duplicate_links(self):
        site = build()
        for page in site.pages:
            assert len(page.links) == len(set(page.links))

    def test_kinds(self):
        site = build()
        kinds = {d.kind for d in site.documents()}
        assert "page" in kinds
        assert "embedded" in kinds

    def test_shared_pool_reused(self):
        site = build(
            n_pages=200, shared_pool_size=3, shared_embed_probability=0.9,
            mean_embedded=2.0,
        )
        shared_refs = [
            e for p in site.pages for e in p.embedded if e.startswith("/shared/")
        ]
        # With 200 pages at high share probability, the 3 shared objects
        # must be referenced many times.
        assert len(shared_refs) > len(set(shared_refs))

    def test_shared_pool_disabled(self):
        site = build(shared_pool_size=0)
        assert all(
            not e.startswith("/shared/") for p in site.pages for e in p.embedded
        )

    def test_home_server_label(self):
        site = build(home_server="srv-9")
        assert all(d.home_server == "srv-9" for d in site.documents())


class TestSizes:
    def test_total_bytes_positive(self):
        assert build().total_bytes() > 0

    def test_page_and_embedded_bytes(self):
        site = build()
        page = site.pages[0]
        expected = site.document(page.doc_id).size + sum(
            site.document(e).size for e in page.embedded
        )
        assert site.page_and_embedded_bytes(0) == expected

    def test_embedded_objects_capped(self):
        site = build(n_pages=300)
        for doc in site.documents():
            if doc.kind == "embedded":
                assert doc.size <= 65_536


class TestDeterminism:
    def test_same_seed_same_site(self):
        a, b = build(seed=5), build(seed=5)
        assert [p.links for p in a.pages] == [p.links for p in b.pages]
        assert [p.embedded for p in a.pages] == [p.embedded for p in b.pages]

    def test_different_seed_differs(self):
        a, b = build(seed=1, n_pages=100), build(seed=2, n_pages=100)
        assert [p.links for p in a.pages] != [p.links for p in b.pages]


class TestValidation:
    def test_too_few_pages(self):
        with pytest.raises(CalibrationError):
            build(n_pages=1)

    def test_bad_probability(self):
        with pytest.raises(CalibrationError):
            build(shared_embed_probability=1.5)

    def test_bad_bias(self):
        with pytest.raises(CalibrationError):
            build(popular_link_bias=-0.1)
