"""Tests for workload sampling distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError
from repro.workload import BoundedZipf, HeavyTailedSizes, exponential_gap


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBoundedZipf:
    def test_pmf_sums_to_one(self):
        z = BoundedZipf(100, 1.0, rng())
        assert z.pmf.sum() == pytest.approx(1.0)

    def test_pmf_decreasing(self):
        z = BoundedZipf(50, 1.2, rng())
        assert all(a >= b for a, b in zip(z.pmf, z.pmf[1:]))

    def test_alpha_zero_uniform(self):
        z = BoundedZipf(10, 0.0, rng())
        assert np.allclose(z.pmf, 0.1)

    def test_samples_in_range(self):
        z = BoundedZipf(20, 1.0, rng())
        samples = z.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 20

    def test_scalar_sample(self):
        z = BoundedZipf(5, 1.0, rng())
        s = z.sample()
        assert isinstance(s, int)
        assert 0 <= s < 5

    def test_empirical_matches_pmf(self):
        z = BoundedZipf(10, 1.0, rng(42))
        samples = z.sample(200_000)
        observed = np.bincount(samples, minlength=10) / len(samples)
        assert np.allclose(observed, z.pmf, atol=0.01)

    def test_head_mass_monotone(self):
        z = BoundedZipf(100, 1.3, rng())
        assert z.head_mass(0.1) < z.head_mass(0.5) <= z.head_mass(1.0)

    def test_head_mass_full_is_one(self):
        z = BoundedZipf(100, 1.3, rng())
        assert z.head_mass(1.0) == pytest.approx(1.0)

    def test_skew_concentrates_head(self):
        flat = BoundedZipf(100, 0.5, rng())
        skewed = BoundedZipf(100, 2.0, rng())
        assert skewed.head_mass(0.1) > flat.head_mass(0.1)

    def test_invalid_n(self):
        with pytest.raises(CalibrationError):
            BoundedZipf(0, 1.0, rng())

    def test_invalid_alpha(self):
        with pytest.raises(CalibrationError):
            BoundedZipf(10, -1.0, rng())

    def test_invalid_head_fraction(self):
        z = BoundedZipf(10, 1.0, rng())
        with pytest.raises(CalibrationError):
            z.head_mass(0.0)

    @given(st.integers(min_value=1, max_value=500), st.floats(0, 3))
    @settings(max_examples=30)
    def test_determinism_per_seed(self, n, alpha):
        a = BoundedZipf(n, alpha, rng(7)).sample(20)
        b = BoundedZipf(n, alpha, rng(7)).sample(20)
        assert np.array_equal(a, b)


class TestHeavyTailedSizes:
    def test_within_bounds(self):
        sizes = HeavyTailedSizes(rng(), min_size=100, max_size=10_000).sample(5000)
        assert sizes.min() >= 100
        assert sizes.max() <= 10_000

    def test_integer_bytes(self):
        sizes = HeavyTailedSizes(rng()).sample(100)
        assert sizes.dtype == np.int64

    def test_heavy_tail_present(self):
        sizes = HeavyTailedSizes(rng(3)).sample(50_000)
        # Mean well above median is the signature of a heavy tail.
        assert sizes.mean() > 2 * np.median(sizes)

    def test_no_tail_when_probability_zero(self):
        sizes = HeavyTailedSizes(
            rng(), tail_probability=0.0, body_median=1000, body_sigma=0.1
        ).sample(10_000)
        # Pure tight lognormal: no sample an order of magnitude off.
        assert sizes.max() < 10_000

    def test_invalid_parameters(self):
        with pytest.raises(CalibrationError):
            HeavyTailedSizes(rng(), body_median=-1)
        with pytest.raises(CalibrationError):
            HeavyTailedSizes(rng(), tail_probability=1.5)
        with pytest.raises(CalibrationError):
            HeavyTailedSizes(rng(), min_size=100, max_size=10)


class TestExponentialGap:
    def test_positive(self):
        assert exponential_gap(rng(), 10.0) > 0

    def test_mean_close(self):
        r = rng(1)
        samples = [exponential_gap(r, 5.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(5.0, rel=0.05)

    def test_invalid_mean(self):
        with pytest.raises(CalibrationError):
            exponential_gap(rng(), 0.0)
