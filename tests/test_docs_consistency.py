"""Keep the documentation honest: files, benches and APIs it names exist."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDocument:
    def test_every_named_bench_file_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_every_bench_file_is_in_design(self):
        design = read("DESIGN.md")
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_paper_identity_confirmed(self):
        design = read("DESIGN.md")
        assert "Bestavros" in design
        assert "No title collision" in design

    def test_inventory_covers_all_subpackages(self):
        design = read("DESIGN.md")
        src = REPO / "src" / "repro"
        for package in src.iterdir():
            if package.is_dir() and (package / "__init__.py").exists():
                assert f"repro.{package.name}" in design, package.name


class TestExperimentsDocument:
    def test_all_figures_and_tables_covered(self):
        experiments = read("EXPERIMENTS.md")
        for marker in ("F1", "F2", "F3", "F4", "T1", "F5", "F6"):
            assert f"## {marker}" in experiments, marker

    def test_textual_experiments_covered(self):
        experiments = read("EXPERIMENTS.md")
        for marker in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"):
            assert f"## {marker}" in experiments, marker

    def test_ablations_listed(self):
        experiments = read("EXPERIMENTS.md")
        for ablation in ("A1", "A2", "A3", "A4", "A5", "A6", "A7"):
            assert ablation in experiments


class TestReadme:
    def test_examples_exist(self):
        readme = read("README.md")
        assert "examples/quickstart.py" in readme
        assert (REPO / "examples" / "quickstart.py").exists()

    def test_cli_commands_real(self):
        from repro.cli import build_parser

        readme = read("README.md")
        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands |= set(action.choices)
        for command in ("generate", "analyze", "simulate", "sweep", "plan", "report"):
            assert command in subcommands
            assert f"repro {command}" in readme

    def test_docs_files_exist(self):
        for path in ("docs/protocols.md", "docs/workload.md", "docs/api.md"):
            assert (REPO / path).exists(), path


class TestApiIndex:
    def test_listed_names_are_importable(self):
        """Every backticked identifier in docs/api.md that looks like a
        public name must exist in the corresponding subpackage."""
        import importlib

        api = read("docs/api.md")
        section = None
        missing = []
        for line in api.splitlines():
            header = re.match(r"## `(repro[\w.]*)`", line)
            if header:
                section = header.group(1)
                continue
            if section is None or not line.startswith("|"):
                continue
            cell = line.split("|")[1]
            for name in re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", cell):
                module = importlib.import_module(section)
                if not hasattr(module, name):
                    missing.append(f"{section}.{name}")
        assert not missing, missing


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "example", sorted(p.name for p in (REPO / "examples").glob("*.py"))
    )
    def test_example_compiles(self, example):
        source = (REPO / "examples" / example).read_text()
        compile(source, example, "exec")

    def test_at_least_three_examples(self):
        assert len(list((REPO / "examples").glob("*.py"))) >= 3
