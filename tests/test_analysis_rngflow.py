"""RNG stream-separation checker: flow-based R001-R003."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name):
    return run_lint(
        [FIXTURES / name],
        config=LintConfig(),
        checker_names=["rngflow"],
        base_dir=FIXTURES,
    )


class TestViolations:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_fixture("rngflow_violations.py").findings

    def test_every_rule_fires(self, findings):
        assert {f.rule_id for f in findings} == {"R001", "R002", "R003"}

    def test_sink_violation_names_both_streams(self, findings):
        messages = [f.message for f in findings if f.rule_id == "R001"]
        assert len(messages) == 1
        assert "retry-stream sink" in messages[0]
        assert "network" in messages[0]

    def test_alias_violation_names_role_and_stream(self, findings):
        messages = [f.message for f in findings if f.rule_id == "R002"]
        assert len(messages) == 1
        assert "`jitter_rng`" in messages[0]
        assert "faults" in messages[0]

    def test_cross_call_violation_names_callee_parameter(self, findings):
        messages = [f.message for f in findings if f.rule_id == "R003"]
        assert len(messages) == 1
        assert "argument `rng` of" in messages[0]
        assert "forward" in messages[0]
        assert "retry" in messages[0]
        assert "workload" in messages[0]


class TestCleanCode:
    def test_stream_respecting_plumbing_passes(self):
        assert lint_fixture("rngflow_clean.py").findings == []


class TestFlowSemantics:
    """Unit-level cases for the provenance rules."""

    def run_snippet(self, tmp_path, code):
        path = tmp_path / "snippet.py"
        path.write_text(code)
        return run_lint(
            [path], checker_names=["rngflow"], base_dir=tmp_path
        ).findings

    def test_factory_minted_stream_is_tracked(self, tmp_path):
        # `retry_rng(...)` is a declared retry-stream factory; binding
        # its result to a network role name is an alias violation.
        code = (
            "def wire(seed):\n"
            "    jitter_rng = retry_rng(seed)\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["R002"]

    def test_anonymous_generator_adopts_bound_role(self, tmp_path):
        code = (
            "import numpy as np\n"
            "def wire(seed):\n"
            "    fault_rng = np.random.default_rng(seed)\n"
            "    chaos_rng = fault_rng\n"  # same role: still faults
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_flow_through_conditional_join(self, tmp_path):
        code = (
            "def wire(fault_rng, jitter_rng, flip):\n"
            "    rng = fault_rng if flip else jitter_rng\n"
            "    retry_rng = rng\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["R002"]
        assert "faults" in findings[0].message
        assert "network" in findings[0].message

    def test_return_summary_crosses_functions(self, tmp_path):
        code = (
            "def mint(seed):\n"
            "    fault_rng = retry_rng(seed)  # repro-lint: disable=R002\n"
            "    return fault_rng\n"
            "def use(seed):\n"
            "    jitter_rng = mint(seed)\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["R002"]
        assert "`jitter_rng`" in findings[0].message

    def test_conflicting_expectations_stay_silent(self, tmp_path):
        # `shared` is called with two different streams; its parameter
        # gets no unambiguous expectation, so no R003 guesses.
        code = (
            "def shared(rng):\n"
            "    return rng.random()\n"
            "def a(fault_rng):\n"
            "    return shared(fault_rng)\n"
            "def b(jitter_rng):\n"
            "    return shared(jitter_rng)\n"
        )
        assert self.run_snippet(tmp_path, code) == []


class TestRepoRngFlow:
    def test_repo_sources_keep_streams_separate(self):
        repo = Path(__file__).parent.parent
        result = run_lint(
            [repo / "src"], checker_names=["rngflow"], base_dir=repo
        )
        assert result.findings == []
