"""Tests for session/stride segmentation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.trace import Request, Trace, split_sessions, split_strides


def trace_from_times(times_by_client):
    requests = []
    for client, times in times_by_client.items():
        for t in times:
            requests.append(
                Request(timestamp=float(t), client=client, doc_id="/d", size=1)
            )
    return Trace(requests, sort=True)


class TestStrides:
    def test_gap_splits(self):
        trace = trace_from_times({"a": [0, 1, 2, 10, 11]})
        strides = split_strides(trace, stride_timeout=5.0)
        assert [len(s) for s in strides] == [3, 2]

    def test_gap_equal_to_timeout_splits(self):
        # The paper defines a stride by gaps strictly less than the timeout.
        trace = trace_from_times({"a": [0, 5]})
        strides = split_strides(trace, stride_timeout=5.0)
        assert [len(s) for s in strides] == [1, 1]

    def test_gap_just_under_timeout_joins(self):
        trace = trace_from_times({"a": [0, 4.999]})
        strides = split_strides(trace, stride_timeout=5.0)
        assert [len(s) for s in strides] == [2]

    def test_zero_timeout_isolates_every_request(self):
        trace = trace_from_times({"a": [0, 0.1, 0.2]})
        strides = split_strides(trace, stride_timeout=0.0)
        assert [len(s) for s in strides] == [1, 1, 1]

    def test_infinite_timeout_one_stride_per_client(self):
        trace = trace_from_times({"a": [0, 100, 10_000], "b": [5]})
        strides = split_strides(trace, stride_timeout=math.inf)
        assert sorted((s.client, len(s)) for s in strides) == [("a", 3), ("b", 1)]

    def test_clients_never_mix(self):
        trace = trace_from_times({"a": [0, 1], "b": [0.5, 1.5]})
        strides = split_strides(trace, stride_timeout=5.0)
        for stride in strides:
            assert {r.client for r in stride.requests} == {stride.client}

    def test_time_bounds(self):
        trace = trace_from_times({"a": [3, 4, 5]})
        (stride,) = split_strides(trace, stride_timeout=5.0)
        assert stride.start_time == 3
        assert stride.end_time == 5

    def test_empty_trace(self):
        assert split_strides(Trace([]), 5.0) == []


class TestSessions:
    def test_session_and_stride_share_semantics(self):
        trace = trace_from_times({"a": [0, 1, 2, 3600, 3601]})
        sessions = split_sessions(trace, session_timeout=1800.0)
        assert [len(s) for s in sessions] == [3, 2]

    def test_zero_timeout_no_cache_case(self):
        trace = trace_from_times({"a": [0, 1]})
        sessions = split_sessions(trace, session_timeout=0.0)
        assert len(sessions) == 2


@given(
    st.lists(
        st.floats(min_value=0, max_value=10_000, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    st.floats(min_value=0.01, max_value=1_000),
)
def test_segmentation_partition_property(times, timeout):
    """Strides partition the client's requests: nothing lost, nothing reordered,
    gaps within a stride < timeout, gaps between consecutive strides >= timeout."""
    trace = trace_from_times({"a": sorted(times)})
    strides = split_strides(trace, stride_timeout=timeout)

    flattened = [r.timestamp for s in strides for r in s.requests]
    assert flattened == sorted(times)

    for stride in strides:
        gaps = [
            b.timestamp - a.timestamp
            for a, b in zip(stride.requests, stride.requests[1:])
        ]
        assert all(g < timeout for g in gaps)

    for first, second in zip(strides, strides[1:]):
        assert second.start_time - first.end_time >= timeout


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_infinite_timeout_never_splits(times):
    trace = trace_from_times({"a": sorted(times)})
    assert len(split_sessions(trace, math.inf)) == 1
