"""Tests for clusters, hierarchy, and the clientele tree builder."""

import pytest

from repro.errors import TopologyError
from repro.topology import Cluster, ClusterHierarchy, build_clientele_tree
from repro.trace import Request, Trace
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


class TestCluster:
    def test_basic(self):
        c = Cluster(proxy="p0", servers=("s1", "s2"), capacity_bytes=1e6)
        assert c.n_servers == 2

    def test_empty_servers_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(proxy="p0", servers=(), capacity_bytes=1.0)

    def test_duplicate_server_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(proxy="p0", servers=("s1", "s1"), capacity_bytes=1.0)

    def test_proxy_in_servers_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(proxy="p0", servers=("p0",), capacity_bytes=1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(proxy="p0", servers=("s1",), capacity_bytes=-1.0)


class TestClusterHierarchy:
    def _two_level(self):
        level0 = [
            Cluster(proxy="p0", servers=("s1", "s2"), capacity_bytes=1.0),
            Cluster(proxy="p1", servers=("s2", "s3"), capacity_bytes=1.0),
        ]
        level1 = [Cluster(proxy="q0", servers=("p0", "p1"), capacity_bytes=1.0)]
        return ClusterHierarchy([level0, level1])

    def test_levels(self):
        h = self._two_level()
        assert h.n_levels == 2
        assert {c.proxy for c in h.level(0)} == {"p0", "p1"}

    def test_many_to_many_server_mapping(self):
        h = self._two_level()
        assert {c.proxy for c in h.clusters_of_server("s2")} == {"p0", "p1"}

    def test_all_proxies(self):
        assert self._two_level().all_proxies() == {"p0", "p1", "q0"}

    def test_upper_level_must_front_lower_proxies(self):
        level0 = [Cluster(proxy="p0", servers=("s1",), capacity_bytes=1.0)]
        level1 = [Cluster(proxy="q0", servers=("stranger",), capacity_bytes=1.0)]
        with pytest.raises(TopologyError):
            ClusterHierarchy([level0, level1])

    def test_duplicate_proxy_rejected(self):
        level0 = [
            Cluster(proxy="p0", servers=("s1",), capacity_bytes=1.0),
            Cluster(proxy="p0", servers=("s2",), capacity_bytes=1.0),
        ]
        with pytest.raises(TopologyError):
            ClusterHierarchy([level0])

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(TopologyError):
            ClusterHierarchy([])

    def test_unknown_level(self):
        with pytest.raises(TopologyError):
            self._two_level().level(5)


class TestBuilder:
    def _trace(self):
        requests = [
            Request(timestamp=float(i), client=c, doc_id="/d", size=1)
            for i, c in enumerate(
                ["c001.region-03", "c002.region-03", "c003.region-07", "local-1.campus"]
            )
        ]
        return Trace(requests)

    def test_leaves_are_clients(self):
        tree = build_clientele_tree(self._trace())
        assert tree.leaves == self._trace().clients()

    def test_region_parsed_from_id(self):
        tree = build_clientele_tree(self._trace())
        path = tree.path_from_root("c003.region-07")
        assert "region-07" in path

    def test_local_clients_region_zero(self):
        tree = build_clientele_tree(self._trace())
        assert "region-00" in tree.path_from_root("local-1.campus")

    def test_backbone_depth(self):
        tree = build_clientele_tree(self._trace(), backbone_hops=3)
        # root -> bb1 -> bb2 -> bb3 -> region -> subnet -> client
        assert tree.depth("c001.region-03") == 6

    def test_no_backbone(self):
        tree = build_clientele_tree(self._trace(), backbone_hops=0)
        assert tree.depth("c001.region-03") == 3

    def test_same_region_shares_backbone(self):
        tree = build_clientele_tree(self._trace(), backbone_hops=2)
        p1 = tree.path_from_root("c001.region-03")
        p2 = tree.path_from_root("c002.region-03")
        assert p1[:4] == p2[:4]  # root + 2 backbone + region shared

    def test_foreign_ids_hash_deterministically(self):
        requests = [
            Request(timestamp=0.0, client="weird.example.org", doc_id="/d", size=1)
        ]
        t1 = build_clientele_tree(Trace(requests))
        t2 = build_clientele_tree(Trace(requests))
        assert t1.path_from_root("weird.example.org") == t2.path_from_root(
            "weird.example.org"
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(TopologyError):
            build_clientele_tree(Trace([]))

    def test_bad_subnets_rejected(self):
        with pytest.raises(TopologyError):
            build_clientele_tree(self._trace(), subnets_per_region=0)

    def test_bad_backbone_rejected(self):
        with pytest.raises(TopologyError):
            build_clientele_tree(self._trace(), backbone_hops=-1)

    def test_synthetic_trace_integration(self):
        gen = SyntheticTraceGenerator(
            GeneratorConfig(seed=4, n_pages=40, n_clients=60, n_sessions=150, duration_days=5)
        )
        trace = gen.generate()
        tree = build_clientele_tree(trace)
        assert trace.clients() <= tree.leaves
        # Every leaf reachable and correctly classified.
        for leaf in tree.leaves:
            assert tree.node_kind(leaf) == "leaf"
