"""Determinism checker: unseeded randomness and wall-clock leakage."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name, **kwargs):
    result = run_lint(
        [FIXTURES / name],
        config=LintConfig(),
        checker_names=["determinism"],
        base_dir=FIXTURES,
        **kwargs,
    )
    return result


class TestViolations:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_fixture("determinism_violations.py").findings

    def test_every_rule_fires(self, findings):
        assert {f.rule_id for f in findings} == {"D001", "D002", "D003", "D004"}

    def test_stdlib_random_both_import_forms(self, findings):
        d001_lines = [f.line for f in findings if f.rule_id == "D001"]
        assert len(d001_lines) == 2  # `import random` and `from random import`

    def test_legacy_np_random_calls(self, findings):
        messages = [f.message for f in findings if f.rule_id == "D002"]
        assert len(messages) == 2
        assert any("np.random.seed" in m for m in messages)
        assert any("np.random.rand" in m for m in messages)

    def test_unseeded_default_rng(self, findings):
        assert sum(f.rule_id == "D003" for f in findings) == 1

    def test_wall_clock_reads(self, findings):
        messages = [f.message for f in findings if f.rule_id == "D004"]
        assert len(messages) == 3
        assert any("time.time" in m for m in messages)
        assert any("datetime.now" in m for m in messages)
        # monotonic is wall-clock outside the sanctioned transport modules
        assert any("time.monotonic" in m for m in messages)

    def test_findings_carry_location_and_checker(self, findings):
        for finding in findings:
            assert finding.path == "determinism_violations.py"
            assert finding.line > 0
            assert finding.checker == "determinism"


class TestCleanCode:
    def test_seeded_generators_and_perf_counter_pass(self):
        assert lint_fixture("determinism_clean.py").findings == []

    def test_repo_simulation_sources_are_deterministic(self):
        repo = Path(__file__).parent.parent
        result = run_lint(
            [repo / "src", repo / "benchmarks", repo / "examples"],
            checker_names=["determinism"],
            base_dir=repo,
        )
        assert result.findings == []
