"""Tests for popularity-class and mutability classification."""

import pytest

from repro.errors import ReproError
from repro.popularity import (
    PopularityClass,
    PopularityProfile,
    classify_documents,
    count_classes,
    find_mutable_documents,
)
from repro.trace import Request, Trace
from repro.workload.updates import UpdateEvent


def trace_with_ratios():
    """/r: 9 remote of 10 (ratio .9); /l: 1 of 10 (.1); /g: 5 of 10 (.5)."""
    requests = []
    t = 0.0
    for doc, remote_count in (("/r", 9), ("/l", 1), ("/g", 5)):
        for i in range(10):
            requests.append(
                Request(
                    timestamp=t,
                    client="c",
                    doc_id=doc,
                    size=1,
                    remote=i < remote_count,
                )
            )
            t += 1.0
    return Trace(requests)


class TestClassify:
    def test_three_way_split(self):
        profile = PopularityProfile.from_trace(trace_with_ratios())
        classes = classify_documents(profile)
        assert classes["/r"] is PopularityClass.REMOTE
        assert classes["/l"] is PopularityClass.LOCAL
        assert classes["/g"] is PopularityClass.GLOBAL

    def test_boundaries_are_strict(self):
        # Exactly 85% remote -> global (paper: "larger than 85%").
        requests = [
            Request(timestamp=float(i), client="c", doc_id="/x", size=1, remote=i < 17)
            for i in range(20)
        ]
        classes = classify_documents(PopularityProfile.from_trace(Trace(requests)))
        assert classes["/x"] is PopularityClass.GLOBAL

    def test_unaccessed_excluded_by_default(self):
        from repro.trace import Document

        trace = Trace(
            [Request(timestamp=0, client="c", doc_id="/a", size=1)],
            [Document(doc_id="/ghost", size=5)],
        )
        classes = classify_documents(PopularityProfile.from_trace(trace))
        assert "/ghost" not in classes

    def test_unaccessed_included_when_asked(self):
        from repro.trace import Document

        trace = Trace(
            [Request(timestamp=0, client="c", doc_id="/a", size=1)],
            [Document(doc_id="/ghost", size=5)],
        )
        classes = classify_documents(
            PopularityProfile.from_trace(trace), include_unaccessed=True
        )
        assert classes["/ghost"] is PopularityClass.LOCAL

    def test_custom_thresholds(self):
        profile = PopularityProfile.from_trace(trace_with_ratios())
        classes = classify_documents(
            profile, remote_threshold=0.45, local_threshold=0.45
        )
        assert classes["/g"] is PopularityClass.REMOTE

    def test_invalid_thresholds(self):
        profile = PopularityProfile.from_trace(trace_with_ratios())
        with pytest.raises(ReproError):
            classify_documents(profile, remote_threshold=0.1, local_threshold=0.9)

    def test_count_classes(self):
        profile = PopularityProfile.from_trace(trace_with_ratios())
        counts = count_classes(classify_documents(profile))
        assert (counts.remote, counts.global_, counts.local) == (1, 1, 1)
        assert counts.total == 3


class TestMutable:
    def test_frequent_updater_flagged(self):
        events = [UpdateEvent(day=d, doc_id="/busy") for d in range(50)]
        events += [UpdateEvent(day=0, doc_id="/calm")]
        mutable = find_mutable_documents(events, observation_days=100)
        assert mutable == {"/busy"}

    def test_threshold_respected(self):
        events = [UpdateEvent(day=d, doc_id="/d") for d in range(10)]
        assert find_mutable_documents(events, 100, rate_threshold=0.05) == {"/d"}
        assert find_mutable_documents(events, 100, rate_threshold=0.2) == set()

    def test_no_events(self):
        assert find_mutable_documents([], 186) == set()

    def test_invalid_window(self):
        with pytest.raises(ReproError):
            find_mutable_documents([], 0)

    def test_paper_observation_window(self):
        """With the paper's rates, the mutable subset stays very small."""
        import numpy as np

        from repro.workload import UpdateProcess

        classes = {f"/d{i}": ("local" if i % 2 else "remote") for i in range(200)}
        process = UpdateProcess(
            classes, np.random.default_rng(0), mutable_fraction=0.02
        )
        events = process.events(186)
        mutable = find_mutable_documents(events, 186)
        # Mutables found should be (mostly) the process's fast subset.
        assert mutable
        assert len(mutable) <= 12
        assert mutable <= process.mutable_docs | set()
