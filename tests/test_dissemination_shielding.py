"""Tests for the dynamic shielding control loop."""

import pytest

from repro.errors import SimulationError
from repro.dissemination import DynamicShield


def shield(**kw):
    defaults = dict(n_servers=10, lam=1e-6, max_budget=50e6, capacity=1000.0)
    defaults.update(kw)
    return DynamicShield(**defaults)


class TestControlLoop:
    def test_underload_keeps_full_budget(self):
        snaps = shield().run([100.0, 100.0, 100.0])
        assert all(s.budget == 50e6 for s in snaps)

    def test_overload_shrinks_budget(self):
        snaps = shield(capacity=50.0).run([1000.0, 1000.0])
        assert snaps[0].budget == 50e6
        assert snaps[1].budget == 25e6

    def test_repeated_overload_keeps_shrinking(self):
        snaps = shield(capacity=10.0).run([10_000.0] * 5)
        budgets = [s.budget for s in snaps]
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[-1] < budgets[0]

    def test_recovery_grows_back_to_max(self):
        loads = [10_000.0] * 3 + [1.0] * 20
        snaps = shield(capacity=100.0).run(loads)
        assert snaps[-1].budget == pytest.approx(50e6)

    def test_budget_never_exceeds_max(self):
        snaps = shield(capacity=1e9).run([1.0] * 10)
        assert all(s.budget <= 50e6 for s in snaps)

    def test_conservation(self):
        """Proxy load + server load = offered load, every period."""
        snaps = shield(capacity=200.0).run([500.0, 1500.0, 50.0])
        for snap in snaps:
            assert snap.proxy_load + snap.server_load == pytest.approx(
                snap.offered_requests
            )

    def test_alpha_decreases_after_shrink(self):
        snaps = shield(capacity=10.0).run([10_000.0, 10_000.0])
        assert snaps[1].alpha < snaps[0].alpha

    def test_shrink_pushes_load_back_to_servers(self):
        snaps = shield(capacity=10.0).run([10_000.0, 10_000.0])
        assert snaps[1].server_load > snaps[0].server_load

    def test_empty_run(self):
        assert shield().run([]) == []

    def test_negative_load_rejected(self):
        with pytest.raises(SimulationError):
            shield().run([-1.0])


class TestValidation:
    def test_bad_servers(self):
        with pytest.raises(SimulationError):
            shield(n_servers=0)

    def test_bad_lambda(self):
        with pytest.raises(SimulationError):
            shield(lam=0.0)

    def test_bad_budget(self):
        with pytest.raises(SimulationError):
            shield(max_budget=0.0)

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            shield(capacity=0.0)

    def test_bad_shrink(self):
        with pytest.raises(SimulationError):
            shield(shrink_factor=1.0)

    def test_bad_grow(self):
        with pytest.raises(SimulationError):
            shield(grow_factor=1.0)
