"""Tests for per-user profiles and client-initiated prefetching."""

import pytest

from repro.config import BaselineConfig
from repro.errors import PolicyError
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    UserProfile,
    UserProfilePrefetcher,
)
from repro.trace import Document, Request, Trace

SIZES = {"/a": 1000, "/b": 200, "/c": 500}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]
CONFIG = BaselineConfig(comm_cost=1.0, serv_cost=100.0)


def req(t, doc, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=SIZES[doc])


class TestUserProfile:
    def test_transition_learned(self):
        profile = UserProfile(window=5.0)
        profile.observe("/a", 0.0)
        profile.observe("/b", 1.0)
        assert profile.transition_probability("/a", "/b") == 1.0

    def test_window_respected(self):
        profile = UserProfile(window=5.0)
        profile.observe("/a", 0.0)
        profile.observe("/b", 10.0)
        assert profile.transition_probability("/a", "/b") == 0.0

    def test_probability_fraction(self):
        profile = UserProfile(window=5.0)
        for visit in range(4):
            base = visit * 100.0
            profile.observe("/a", base)
            profile.observe("/b" if visit < 2 else "/c", base + 1.0)
        assert profile.transition_probability("/a", "/b") == pytest.approx(0.5)
        assert profile.transition_probability("/a", "/c") == pytest.approx(0.5)

    def test_self_transition_ignored(self):
        profile = UserProfile(window=5.0)
        profile.observe("/a", 0.0)
        profile.observe("/a", 1.0)
        assert profile.transition_probability("/a", "/a") == 0.0

    def test_support(self):
        profile = UserProfile()
        profile.observe("/a", 0.0)
        profile.observe("/a", 100.0)
        assert profile.support("/a") == 2.0
        assert profile.support("/b") == 0.0

    def test_followups(self):
        profile = UserProfile(window=5.0)
        profile.observe("/a", 0.0)
        profile.observe("/b", 1.0)
        assert profile.followups("/a") == {"/b": 1.0}
        assert profile.followups("/missing") == {}

    def test_as_model(self):
        profile = UserProfile(window=5.0)
        profile.observe("/a", 0.0)
        profile.observe("/b", 1.0)
        model = profile.as_model()
        assert model.p("/a", "/b") == 1.0

    def test_invalid_window(self):
        with pytest.raises(PolicyError):
            UserProfile(window=0.0)


class TestUserProfilePrefetcher:
    def _catalog(self):
        return {d.doc_id: d for d in DOCS}

    def _seed(self, prefetcher, repeats=3, client="u"):
        """Teach the prefetcher `/a -> /b` via `repeats` traversals."""
        for visit in range(repeats):
            base = visit * 1000.0
            prefetcher.observe(client, "/a", base)
            prefetcher.observe(client, "/b", base + 1.0)

    def test_frequently_traversed_predicted(self):
        prefetcher = UserProfilePrefetcher(threshold=0.5, min_support=2)
        self._seed(prefetcher)
        empty_model = DependencyModel.from_counts({}, {})
        chosen = prefetcher.choose("/a", empty_model, self._catalog(), client="u")
        assert chosen == ["/b"]

    def test_newly_traversed_not_predicted(self):
        """The paper's finding: a user profile says nothing about
        documents the user has never traversed."""
        prefetcher = UserProfilePrefetcher(threshold=0.5, min_support=2)
        self._seed(prefetcher, client="veteran")
        empty_model = DependencyModel.from_counts({}, {})
        # A brand-new user gets no prefetches, even for the same page.
        prefetcher.observe("newbie", "/a", 0.0)
        assert (
            prefetcher.choose("/a", empty_model, self._catalog(), client="newbie")
            == []
        )

    def test_min_support_gate(self):
        prefetcher = UserProfilePrefetcher(threshold=0.5, min_support=3)
        self._seed(prefetcher, repeats=2)  # support only 2
        empty_model = DependencyModel.from_counts({}, {})
        assert prefetcher.choose("/a", empty_model, self._catalog(), client="u") == []

    def test_max_size(self):
        prefetcher = UserProfilePrefetcher(threshold=0.5, min_support=2, max_size=100)
        self._seed(prefetcher)
        empty_model = DependencyModel.from_counts({}, {})
        assert prefetcher.choose("/a", empty_model, self._catalog(), client="u") == []

    def test_no_client_no_prefetch(self):
        prefetcher = UserProfilePrefetcher()
        empty_model = DependencyModel.from_counts({}, {})
        assert prefetcher.choose("/a", empty_model, self._catalog()) == []

    def test_wants_client_flag(self):
        assert UserProfilePrefetcher().wants_client is True

    def test_invalid_parameters(self):
        with pytest.raises(PolicyError):
            UserProfilePrefetcher(threshold=0.0)
        with pytest.raises(PolicyError):
            UserProfilePrefetcher(min_support=0)
        with pytest.raises(PolicyError):
            UserProfilePrefetcher(max_prefetches=0)


class TestSimulatorIntegration:
    def test_repeat_pattern_prefetched_online(self):
        """Third traversal of /a -> /b is prefetched (learned from the
        first two), turning the /b access into a cache hit; but the
        cache would already hold /b... so use a session cache that
        forgets between traversals."""
        requests = []
        for visit in range(3):
            base = visit * 10_000.0
            requests.append(req(base, "/a", "u"))
            requests.append(req(base + 1.0, "/b", "u"))
        trace = Trace(requests, DOCS, sort=True)

        from repro.speculation import make_cache_factory

        config = BaselineConfig(
            comm_cost=1.0, serv_cost=100.0, session_timeout=100.0
        )
        sim = SpeculativeServiceSimulator(
            trace, config, model=DependencyModel.from_counts({}, {})
        )
        prefetcher = UserProfilePrefetcher(threshold=0.5, min_support=2)
        run = sim.run(None, prefetcher=prefetcher)
        # Visit 3: /a's history (support >= 2) triggers a prefetch of /b.
        assert run.prefetch_requests >= 1
        assert run.cache_hits >= 1

    def test_single_session_users_gain_nothing(self):
        """Newly-traversed patterns: every client appears once, so the
        profile prefetcher never fires — the paper's negative result."""
        requests = []
        for index in range(20):
            base = index * 10_000.0
            client = f"c{index}"
            requests.append(req(base, "/a", client))
            requests.append(req(base + 1.0, "/b", client))
        trace = Trace(requests, DOCS, sort=True)
        sim = SpeculativeServiceSimulator(
            trace, CONFIG, model=DependencyModel.from_counts({}, {})
        )
        run = sim.run(None, prefetcher=UserProfilePrefetcher(min_support=2))
        assert run.prefetch_requests == 0
