"""Tests for proxy placement strategies."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    RoutingTree,
    geographic_placement,
    greedy_tree_placement,
)


@pytest.fixture
def tree():
    # root -> region-00 -> subnet-00 -> {c1, c2}
    #      -> region-01 -> subnet-01 -> {c3}
    return RoutingTree(
        "root",
        {
            "region-00": "root",
            "region-01": "root",
            "subnet-00": "region-00",
            "subnet-01": "region-01",
            "c1": "subnet-00",
            "c2": "subnet-00",
            "c3": "subnet-01",
        },
    )


class TestGreedy:
    def test_picks_highest_demand_subtree_first(self, tree):
        demand = {"c1": 100.0, "c2": 100.0, "c3": 10.0}
        chosen = greedy_tree_placement(tree, demand, 1)
        # subnet-00 is deeper than region-00 and covers the same demand.
        assert chosen == ["subnet-00"]

    def test_second_pick_covers_other_branch(self, tree):
        demand = {"c1": 100.0, "c2": 100.0, "c3": 10.0}
        chosen = greedy_tree_placement(tree, demand, 2)
        assert chosen[0] == "subnet-00"
        assert chosen[1] == "subnet-01"

    def test_stops_when_no_gain(self, tree):
        demand = {"c1": 100.0}
        chosen = greedy_tree_placement(tree, demand, 5)
        # After shielding c1 at its subnet, remaining nodes add nothing.
        assert len(chosen) <= 2

    def test_zero_proxies(self, tree):
        assert greedy_tree_placement(tree, {"c1": 1.0}, 0) == []

    def test_zero_demand(self, tree):
        assert greedy_tree_placement(tree, {"c1": 0.0}, 3) == []

    def test_negative_count_rejected(self, tree):
        with pytest.raises(TopologyError):
            greedy_tree_placement(tree, {}, -1)

    def test_non_leaf_demand_rejected(self, tree):
        with pytest.raises(TopologyError):
            greedy_tree_placement(tree, {"region-00": 5.0}, 1)

    def test_deterministic_tie_break(self, tree):
        demand = {"c1": 50.0, "c2": 50.0, "c3": 100.0}
        a = greedy_tree_placement(tree, demand, 2)
        b = greedy_tree_placement(tree, demand, 2)
        assert a == b

    def test_greedy_beats_or_ties_geographic(self, tree):
        """Log-driven placement never saves fewer byte-hops than the
        geography-only heuristic (on trees where both are feasible)."""
        demand = {"c1": 30.0, "c2": 40.0, "c3": 90.0}

        def savings(nodes):
            total = 0.0
            for client, d in demand.items():
                best = 0
                path = tree.path_from_root(client)
                for node in nodes:
                    if node in path:
                        best = max(best, tree.depth(node))
                total += d * best
            return total

        greedy = greedy_tree_placement(tree, demand, 1)
        geo = geographic_placement(tree, demand, 1)
        assert savings(greedy) >= savings(geo)


class TestBudgetExhaustion:
    def test_greedy_consumes_exact_budget_when_gains_remain(self, tree):
        demand = {"c1": 100.0, "c2": 90.0, "c3": 80.0}
        assert len(greedy_tree_placement(tree, demand, 1)) == 1
        assert len(greedy_tree_placement(tree, demand, 2)) == 2

    def test_greedy_budget_larger_than_useful_sites(self, tree):
        demand = {"c1": 100.0, "c2": 90.0, "c3": 80.0}
        chosen = greedy_tree_placement(tree, demand, 50)
        # Never more sites than internal nodes, never a repeat.
        assert len(chosen) == len(set(chosen))
        assert set(chosen) <= tree.internal_nodes()

    def test_geographic_budget_larger_than_regions(self, tree):
        demand = {"c1": 5.0, "c3": 5.0}
        chosen = geographic_placement(tree, demand, 50)
        assert sorted(chosen) == ["region-00", "region-01"]


class TestTieBreakDeterminism:
    @pytest.fixture
    def symmetric_tree(self):
        # Two identical branches: equal gains everywhere.
        return RoutingTree(
            "root",
            {
                "region-00": "root",
                "region-01": "root",
                "subnet-00": "region-00",
                "subnet-01": "region-01",
                "a1": "subnet-00",
                "b1": "subnet-01",
            },
        )

    def test_greedy_equal_gains_pick_is_stable(self, symmetric_tree):
        demand = {"a1": 10.0, "b1": 10.0}
        first = greedy_tree_placement(symmetric_tree, demand, 1)
        # Ties break on the node id, so the winner is a fixed name —
        # not whichever dict iteration order surfaced first.
        assert first == ["subnet-01"]
        for _ in range(5):
            assert greedy_tree_placement(symmetric_tree, demand, 1) == first

    def test_geographic_equal_demand_orders_by_name(self, symmetric_tree):
        demand = {"a1": 10.0, "b1": 10.0}
        chosen = geographic_placement(symmetric_tree, demand, 2)
        assert chosen == ["region-00", "region-01"]


class TestZeroSavings:
    def test_greedy_all_zero_demand(self, tree):
        demand = {"c1": 0.0, "c2": 0.0, "c3": 0.0}
        assert greedy_tree_placement(tree, demand, 3) == []

    def test_greedy_empty_demand_map(self, tree):
        assert greedy_tree_placement(tree, {}, 3) == []

    def test_geographic_zero_demand(self, tree):
        assert geographic_placement(tree, {"c1": 0.0}, 3) == []

    def test_root_only_tree_has_no_sites(self):
        lonely = RoutingTree("root", {})
        assert greedy_tree_placement(lonely, {}, 3) == []
        assert geographic_placement(lonely, {}, 3) == []


class TestGeographic:
    def test_orders_regions_by_demand(self, tree):
        demand = {"c1": 1.0, "c2": 1.0, "c3": 50.0}
        chosen = geographic_placement(tree, demand, 2)
        assert chosen == ["region-01", "region-00"]

    def test_skips_zero_demand_regions(self, tree):
        demand = {"c3": 50.0}
        chosen = geographic_placement(tree, demand, 2)
        assert chosen == ["region-01"]

    def test_negative_count_rejected(self, tree):
        with pytest.raises(TopologyError):
            geographic_placement(tree, {}, -1)

    def test_only_region_nodes_selected(self, tree):
        demand = {"c1": 5.0, "c3": 5.0}
        for node in geographic_placement(tree, demand, 5):
            assert node.startswith("region-")
