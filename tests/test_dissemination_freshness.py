"""Tests for the freshness/invalidation simulator."""

import pytest

from repro.config import SECONDS_PER_DAY
from repro.errors import SimulationError
from repro.dissemination import FreshnessSimulator
from repro.trace import Document, Request, Trace
from repro.workload.updates import UpdateEvent

SIZES = {"/stable": 1000, "/mutable": 2000, "/other": 500}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]


def req(day, doc, client="c"):
    return Request(
        timestamp=day * SECONDS_PER_DAY, client=client, doc_id=doc, size=SIZES[doc]
    )


@pytest.fixture
def trace():
    # Requests on days 0..9, alternating documents.
    requests = []
    for day in range(10):
        requests.append(req(day + 0.1, "/stable", f"c{day}"))
        requests.append(req(day + 0.2, "/mutable", f"c{day}"))
    return Trace(requests, DOCS, sort=True)


@pytest.fixture
def updates():
    # /mutable updates on days 2 and 6; /stable never.
    return [UpdateEvent(day=2, doc_id="/mutable"), UpdateEvent(day=6, doc_id="/mutable")]


class TestIgnorePolicy:
    def test_stable_doc_never_stale(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        result = sim.simulate({"/stable"}, policy="ignore")
        assert result.stale_hits == 0
        assert result.proxy_hits == 10

    def test_mutable_doc_goes_stale(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        result = sim.simulate({"/mutable"}, policy="ignore")
        # Stale from day 2 onward (after the first update): days 2..9 inclusive
        # except day-2 request at day+0.2 > update day 2 -> stale.
        assert result.stale_hits == 8
        assert result.stale_fraction == pytest.approx(0.8)

    def test_coverage(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        result = sim.simulate({"/stable", "/mutable"}, policy="ignore")
        assert result.coverage == 1.0
        result2 = sim.simulate({"/stable"}, policy="ignore")
        assert result2.coverage == 0.5

    def test_no_refresh_cost(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        assert sim.simulate({"/mutable"}, policy="ignore").refresh_bytes == 0.0


class TestExcludeMutable:
    def test_no_staleness_less_coverage(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        result = sim.simulate(
            {"/stable", "/mutable"},
            policy="exclude-mutable",
            mutable_docs={"/mutable"},
        )
        assert result.stale_hits == 0
        assert result.coverage == 0.5  # /mutable requests go to the server

    def test_requires_mutable_set(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        with pytest.raises(SimulationError):
            sim.simulate({"/stable"}, policy="exclude-mutable")


class TestPushUpdates:
    def test_never_stale(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        result = sim.simulate({"/mutable"}, policy="push-updates")
        assert result.stale_hits == 0
        assert result.coverage == 0.5

    def test_refresh_cost_per_update(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        result = sim.simulate({"/mutable"}, policy="push-updates")
        # Two updates x 2000 bytes.
        assert result.refresh_bytes == 4000.0

    def test_stable_doc_costs_nothing(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        assert sim.simulate({"/stable"}, policy="push-updates").refresh_bytes == 0.0


class TestPeriodicRefresh:
    def test_staleness_bounded_by_cycle(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        daily = sim.simulate(
            {"/mutable"}, policy="periodic-refresh", refresh_cycle_days=1.0
        )
        lazy = sim.simulate(
            {"/mutable"}, policy="periodic-refresh", refresh_cycle_days=100.0
        )
        assert daily.stale_hits <= lazy.stale_hits
        # Daily refresh: only the update-day requests can be stale.
        assert daily.stale_hits <= 2

    def test_refresh_cost_scales_with_frequency(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        daily = sim.simulate(
            {"/mutable"}, policy="periodic-refresh", refresh_cycle_days=1.0
        )
        weekly = sim.simulate(
            {"/mutable"}, policy="periodic-refresh", refresh_cycle_days=7.0
        )
        assert daily.refresh_bytes > weekly.refresh_bytes

    def test_invalid_cycle(self, trace, updates):
        sim = FreshnessSimulator(trace, updates)
        with pytest.raises(SimulationError):
            sim.simulate({"/stable"}, policy="periodic-refresh", refresh_cycle_days=0)


class TestValidation:
    def test_unknown_policy(self, trace, updates):
        with pytest.raises(SimulationError):
            FreshnessSimulator(trace, updates).simulate({"/stable"}, policy="magic")

    def test_remote_only_default(self, updates):
        requests = [
            Request(
                timestamp=0.0, client="c", doc_id="/stable", size=1000, remote=False
            )
        ]
        sim = FreshnessSimulator(Trace(requests, DOCS), updates)
        result = sim.simulate({"/stable"})
        assert result.requests == 0

    def test_empty_dissemination(self, trace, updates):
        result = FreshnessSimulator(trace, updates).simulate(set())
        assert result.proxy_hits == 0
        assert result.stale_fraction == 0.0
