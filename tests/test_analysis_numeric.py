"""Numeric-safety checker: guarded division, clamps, integer counters."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name):
    return run_lint(
        [FIXTURES / name],
        config=LintConfig(),
        checker_names=["numeric"],
        base_dir=FIXTURES,
    )


class TestViolations:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_fixture("numeric_violations.py").findings

    def test_every_rule_fires(self, findings):
        assert {f.rule_id for f in findings} == {"N001", "N002", "N003"}

    def test_unguarded_divisions(self, findings):
        messages = [f.message for f in findings if f.rule_id == "N001"]
        assert len(messages) == 2
        assert any("len(requests)" in m for m in messages)
        assert any("sum(weights)" in m for m in messages)

    def test_unclamped_probabilities(self, findings):
        names = [f.message for f in findings if f.rule_id == "N002"]
        assert len(names) == 2
        assert any("`probability`" in m for m in names)
        assert any("`hit_prob`" in m for m in names)

    def test_float_byte_counters(self, findings):
        flagged = [f for f in findings if f.rule_id == "N003"]
        assert len(flagged) == 2  # suffix (_bytes) and prefix (bytes_) forms


class TestCleanCode:
    def test_guarded_and_clamped_code_passes(self):
        assert lint_fixture("numeric_clean.py").findings == []

    def test_inline_suppression_counts_as_directive(self):
        result = lint_fixture("numeric_clean.py")
        assert result.suppression_directives >= 1


class TestGuardRecognition:
    """Unit-level cases for the denominator-guard heuristic."""

    def run_snippet(self, tmp_path, code):
        path = tmp_path / "snippet.py"
        path.write_text(code)
        return run_lint(
            [path], checker_names=["numeric"], base_dir=tmp_path
        ).findings

    def test_if_guard_is_recognised(self, tmp_path):
        code = (
            "def f(xs):\n"
            "    if len(xs):\n"
            "        return 1 / len(xs)\n"
            "    return 0.0\n"
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_truthiness_guard_on_argument_is_recognised(self, tmp_path):
        code = (
            "def f(xs):\n"
            "    if not xs:\n"
            "        return 0.0\n"
            "    return 1 / len(xs)\n"
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_ternary_guard_is_recognised(self, tmp_path):
        code = "def f(xs):\n    return 1 / len(xs) if xs else 0.0\n"
        assert self.run_snippet(tmp_path, code) == []

    def test_max_guard_is_recognised(self, tmp_path):
        code = "def f(xs):\n    return 1 / max(1, len(xs))\n"
        assert self.run_snippet(tmp_path, code) == []

    def test_unrelated_guard_does_not_count(self, tmp_path):
        code = (
            "def f(xs, ys):\n"
            "    if ys:\n"
            "        return 1 / len(xs)\n"
            "    return 0.0\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["N001"]

    def test_condition_itself_is_not_guarded(self, tmp_path):
        code = (
            "def f(xs):\n"
            "    if 1 / len(xs) > 0.5:\n"
            "        return True\n"
            "    return False\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["N001"]


class TestRepoNumerics:
    def test_repo_sources_are_numerically_safe(self):
        repo = Path(__file__).parent.parent
        result = run_lint(
            [repo / "src"], checker_names=["numeric"], base_dir=repo
        )
        assert result.findings == []
