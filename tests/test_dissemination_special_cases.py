"""Tests for the closed-form special cases (paper eqs. 6-10)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.dissemination import (
    ServerModel,
    equal_effectiveness_allocation,
    equal_popularity_allocation,
    exponential_allocation,
    symmetric_allocation,
    symmetric_alpha,
    symmetric_storage_for_reduction,
)
from repro.popularity.expmodel import PAPER_LAMBDA


class TestEqualEffectiveness:
    def test_budget_conserved(self):
        allocs = equal_effectiveness_allocation([10, 100, 1000], 1e-6, 9e6)
        assert sum(allocs) == pytest.approx(9e6)

    def test_equal_rates_even_split(self):
        allocs = equal_effectiveness_allocation([50, 50, 50], 1e-6, 3e6)
        assert allocs == pytest.approx([1e6, 1e6, 1e6])

    def test_popular_servers_get_extra(self):
        allocs = equal_effectiveness_allocation([10, 1000], 1e-6, 2e6)
        assert allocs[1] > allocs[0]

    def test_matches_general_solution(self):
        """Equation 6 agrees with the general eq. 4-5 allocator when all
        shares are positive."""
        rates = [100.0, 300.0, 200.0]
        lam = 1e-6
        budget = 30e6
        closed = equal_effectiveness_allocation(rates, lam, budget)
        servers = [ServerModel(f"s{i}", r, lam) for i, r in enumerate(rates)]
        general = exponential_allocation(servers, budget)
        for i, value in enumerate(closed):
            assert value == pytest.approx(general.allocations[f"s{i}"], rel=1e-9)

    def test_correction_term_shape(self):
        """Extra storage = (1/λ)·log(R_j / geometric mean)."""
        rates = [10.0, 1000.0]
        lam = 2e-6
        allocs = equal_effectiveness_allocation(rates, lam, 10e6)
        geo = math.sqrt(10.0 * 1000.0)
        assert allocs[1] - 10e6 / 2 == pytest.approx(math.log(1000 / geo) / lam)

    def test_invalid_inputs(self):
        with pytest.raises(AllocationError):
            equal_effectiveness_allocation([], 1e-6, 1.0)
        with pytest.raises(AllocationError):
            equal_effectiveness_allocation([1.0], 0.0, 1.0)
        with pytest.raises(AllocationError):
            equal_effectiveness_allocation([0.0], 1e-6, 1.0)


class TestEqualPopularity:
    def test_budget_conserved(self):
        allocs = equal_popularity_allocation([1e-6, 2e-6, 5e-7], 6e6)
        assert sum(allocs) == pytest.approx(6e6)

    def test_equal_lambdas_even_split(self):
        allocs = equal_popularity_allocation([1e-6] * 4, 4e6)
        assert allocs == pytest.approx([1e6] * 4)

    def test_lax_budget_favours_uniform_popularity(self):
        """With B0 >> 1/λ the smaller-λ server gets more storage."""
        lams = [5e-7, 5e-6]
        allocs = equal_popularity_allocation(lams, 100e6)
        assert allocs[0] > allocs[1]

    def test_figure2_hump_under_tight_budget(self):
        """Figure 2 (tight): the allocation to server j peaks at an
        intermediate λ_j rather than growing monotonically."""
        lam_others = 1e-6
        budget = 1.0 / lam_others  # the paper's "tight" B0 = 1/λ_i
        n_others = 9
        lams_j = [lam_others * m for m in (0.05, 0.3, 1.0, 3.0, 20.0)]
        shares = []
        for lam_j in lams_j:
            allocs = equal_popularity_allocation([lam_j] + [lam_others] * n_others, budget)
            shares.append(allocs[0])
        peak = max(range(len(shares)), key=shares.__getitem__)
        assert 0 < peak < len(shares) - 1, f"no interior hump: {shares}"

    def test_matches_general_solution(self):
        lams = [8e-7, 1.5e-6, 3e-6]
        budget = 60e6
        closed = equal_popularity_allocation(lams, budget)
        servers = [ServerModel(f"s{i}", 100.0, lam) for i, lam in enumerate(lams)]
        general = exponential_allocation(servers, budget)
        for i, value in enumerate(closed):
            assert value == pytest.approx(general.allocations[f"s{i}"], rel=1e-9)

    def test_invalid(self):
        with pytest.raises(AllocationError):
            equal_popularity_allocation([], 1.0)
        with pytest.raises(AllocationError):
            equal_popularity_allocation([0.0], 1.0)


class TestSymmetric:
    def test_even_split(self):
        assert symmetric_allocation(10, 100.0) == 10.0

    def test_alpha_formula(self):
        alpha = symmetric_alpha(10, PAPER_LAMBDA, 36.9e6)
        assert alpha == pytest.approx(0.90, abs=0.005)

    def test_paper_36mb_claim(self):
        """10 servers, 90% reduction -> ~36-37 MB (paper says 36 MB)."""
        budget = symmetric_storage_for_reduction(10, PAPER_LAMBDA, 0.90)
        assert 34e6 < budget < 38e6

    def test_paper_500mb_claim(self):
        """500 MB shields 100 servers from ~96% of remote bandwidth."""
        alpha = symmetric_alpha(100, PAPER_LAMBDA, 500e6)
        assert alpha == pytest.approx(0.96, abs=0.01)

    def test_round_trip(self):
        budget = symmetric_storage_for_reduction(7, 1e-6, 0.75)
        assert symmetric_alpha(7, 1e-6, budget) == pytest.approx(0.75)

    def test_zero_reduction_zero_storage(self):
        assert symmetric_storage_for_reduction(5, 1e-6, 0.0) == 0.0

    def test_invalid(self):
        with pytest.raises(AllocationError):
            symmetric_allocation(0, 1.0)
        with pytest.raises(AllocationError):
            symmetric_alpha(1, 0.0, 1.0)
        with pytest.raises(AllocationError):
            symmetric_storage_for_reduction(1, 1e-6, 1.0)
        with pytest.raises(AllocationError):
            symmetric_storage_for_reduction(1, 1e-6, -0.1)

    @given(
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=1e-8, max_value=1e-4),
        st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=50)
    def test_round_trip_property(self, n, lam, reduction):
        budget = symmetric_storage_for_reduction(n, lam, reduction)
        assert symmetric_alpha(n, lam, budget) == pytest.approx(reduction, abs=1e-9)
