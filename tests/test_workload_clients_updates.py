"""Tests for the client population and document update process."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.workload import ClientPopulation, UpdateProcess
from repro.workload.updates import CLASS_UPDATE_RATES, MUTABLE_UPDATE_RATE


def rng(seed=0):
    return np.random.default_rng(seed)


class TestClientPopulation:
    def test_count(self):
        assert len(ClientPopulation(100, rng())) == 100

    def test_local_fraction(self):
        pop = ClientPopulation(200, rng(), local_fraction=0.25)
        locals_ = [c for c in pop.clients if c.local]
        assert len(locals_) == 50

    def test_locals_in_region_zero(self):
        pop = ClientPopulation(100, rng(), local_fraction=0.2)
        assert all(c.region == 0 for c in pop.clients if c.local)

    def test_remote_regions_positive(self):
        pop = ClientPopulation(500, rng(), n_regions=8, local_fraction=0.1)
        remote_regions = {c.region for c in pop.clients if not c.local}
        assert remote_regions <= set(range(1, 8))
        assert len(remote_regions) > 1

    def test_unique_ids(self):
        pop = ClientPopulation(300, rng())
        ids = [c.client_id for c in pop.clients]
        assert len(set(ids)) == 300

    def test_sample_respects_population(self):
        pop = ClientPopulation(50, rng(1))
        for _ in range(100):
            assert pop.sample_client() in pop.clients

    def test_activity_skew(self):
        pop = ClientPopulation(100, rng(2), activity_alpha=1.2)
        counts: dict[str, int] = {}
        for _ in range(5000):
            c = pop.sample_client()
            counts[c.client_id] = counts.get(c.client_id, 0) + 1
        top = max(counts.values())
        # Heavy skew: the busiest client gets far more than the 50 of uniform.
        assert top > 150

    def test_region_of_known_client(self):
        pop = ClientPopulation(20, rng(), n_regions=4)
        client = pop.clients[-1]
        assert pop.region_of(client.client_id) == client.region

    def test_region_of_foreign_client_stable(self):
        pop = ClientPopulation(20, rng(), n_regions=4)
        a = pop.region_of("unknown.example.org")
        b = pop.region_of("unknown.example.org")
        assert a == b
        assert 0 <= a < 4

    def test_clients_by_region_partition(self):
        pop = ClientPopulation(150, rng(), n_regions=6)
        groups = pop.clients_by_region()
        total = sum(len(v) for v in groups.values())
        assert total == 150

    def test_all_local_rejected(self):
        with pytest.raises(CalibrationError):
            ClientPopulation(10, rng(), local_fraction=0.99)

    def test_zero_clients_rejected(self):
        with pytest.raises(CalibrationError):
            ClientPopulation(0, rng())


class TestUpdateProcess:
    def _classes(self, n=100):
        classes = {}
        for i in range(n):
            kind = ["remote", "global", "local"][i % 3]
            classes[f"/doc{i}"] = kind
        return classes

    def test_rates_by_class(self):
        proc = UpdateProcess(self._classes(), rng(), mutable_fraction=0.0)
        assert proc.daily_rate("/doc0") == CLASS_UPDATE_RATES["remote"]
        assert proc.daily_rate("/doc2") == CLASS_UPDATE_RATES["local"]

    def test_mutable_subset_size(self):
        proc = UpdateProcess(self._classes(200), rng(), mutable_fraction=0.05)
        assert len(proc.mutable_docs) == 10

    def test_mutable_rate(self):
        proc = UpdateProcess(self._classes(), rng(), mutable_fraction=0.1)
        doc = next(iter(proc.mutable_docs))
        assert proc.daily_rate(doc) == MUTABLE_UPDATE_RATE

    def test_events_at_most_one_per_doc_per_day(self):
        proc = UpdateProcess(self._classes(), rng(3), mutable_fraction=0.2)
        events = proc.events(30)
        assert len({(e.day, e.doc_id) for e in events}) == len(events)

    def test_events_ordered(self):
        proc = UpdateProcess(self._classes(), rng(3))
        events = proc.events(20)
        keys = [(e.day, e.doc_id) for e in events]
        assert keys == sorted(keys)

    def test_observed_rates_match_configured(self):
        classes = {f"/d{i}": "local" for i in range(50)}
        proc = UpdateProcess(classes, rng(7), mutable_fraction=0.0)
        events = proc.events(3000)
        observed = proc.observed_rates(events, 3000)
        mean_rate = np.mean(list(observed.values()))
        assert mean_rate == pytest.approx(0.02, rel=0.15)

    def test_paper_rate_ordering(self):
        # Locally popular documents update more often than remote/global.
        assert (
            CLASS_UPDATE_RATES["local"]
            > CLASS_UPDATE_RATES["remote"]
            == CLASS_UPDATE_RATES["global"]
        )

    def test_unknown_class_rejected(self):
        with pytest.raises(CalibrationError):
            UpdateProcess({"/x": "weird"}, rng())

    def test_unknown_doc_rejected(self):
        proc = UpdateProcess(self._classes(), rng())
        with pytest.raises(CalibrationError):
            proc.daily_rate("/nope")

    def test_zero_days(self):
        proc = UpdateProcess(self._classes(), rng())
        assert proc.events(0) == []
