"""Tests for the speculative-service trace simulator."""

import math

import pytest

from repro.config import BaselineConfig
from repro.errors import SimulationError
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
    compare,
    make_cache_factory,
)
from repro.trace import Document, Request, Trace

CONFIG = BaselineConfig(comm_cost=1.0, serv_cost=100.0)


def req(t, doc, client="c"):
    return Request(timestamp=t, client=client, doc_id=doc, size=SIZES[doc])


SIZES = {"/page": 1000, "/inline": 200, "/next": 500, "/other": 300}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]


def model_page_pushes_inline(probability=1.0):
    return DependencyModel.from_counts(
        {"/page": {"/inline": probability * 10.0}},
        {"/page": 10.0, "/inline": 10.0},
    )


class TestBaselineRun:
    def test_accounting_without_cache_hits(self):
        trace = Trace([req(0, "/page"), req(1, "/next")], DOCS)
        sim = SpeculativeServiceSimulator(
            trace, CONFIG, model=model_page_pushes_inline()
        )
        run = sim.run(None)
        m = run.metrics
        assert m.bytes_sent == 1500
        assert m.server_requests == 2
        assert m.service_time == 2 * 100 + 1500
        assert m.miss_bytes == 1500
        assert m.accessed_bytes == 1500
        assert run.cache_hits == 0

    def test_repeat_access_hits_cache(self):
        trace = Trace([req(0, "/page"), req(1, "/page")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(None)
        assert run.cache_hits == 1
        assert run.metrics.server_requests == 1
        assert run.metrics.accessed_bytes == 2000
        assert run.metrics.miss_bytes == 1000

    def test_no_cache_factory_all_misses(self):
        trace = Trace([req(0, "/page"), req(1, "/page")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(None, cache_factory=make_cache_factory(0.0))
        assert run.cache_hits == 0
        assert run.metrics.server_requests == 2

    def test_model_and_rolling_exclusive(self):
        trace = Trace([req(0, "/page")], DOCS)
        from repro.speculation import RollingEstimator

        with pytest.raises(SimulationError):
            SpeculativeServiceSimulator(
                trace,
                CONFIG,
                model=model_page_pushes_inline(),
                rolling=RollingEstimator(trace),
            )


class TestSpeculation:
    def test_pushed_document_becomes_hit(self):
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(ThresholdPolicy(threshold=0.9))
        m = run.metrics
        assert run.cache_hits == 1
        assert m.server_requests == 1
        assert m.bytes_sent == 1200  # page + pushed inline
        assert m.speculated_documents == 1
        assert m.speculated_bytes == 200
        assert m.wasted_bytes == 0.0  # push was used
        # Client-visible latency only for the demand fetch of /page.
        assert m.service_time == 100 + 1000

    def test_unused_push_counts_as_waste(self):
        trace = Trace([req(0, "/page"), req(1, "/other")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(ThresholdPolicy(threshold=0.9))
        assert run.metrics.speculated_bytes == 200
        assert run.metrics.wasted_bytes == 200

    def test_miss_rate_improves_with_speculation(self):
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        base = sim.run(None)
        spec = sim.run(ThresholdPolicy(threshold=0.9))
        ratios = compare(spec.metrics, base.metrics)
        assert ratios.miss_rate_ratio < 1.0
        assert ratios.server_load_ratio == 0.5
        assert ratios.service_time_ratio < 1.0

    def test_threshold_excludes_weak_dependencies(self):
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        model = model_page_pushes_inline(probability=0.3)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
        run = sim.run(ThresholdPolicy(threshold=0.9))
        assert run.metrics.speculated_documents == 0

    def test_max_size_respected(self):
        trace = Trace([req(0, "/page"), req(1, "/inline")], DOCS)
        config = BaselineConfig(comm_cost=1.0, serv_cost=100.0, max_size=100)
        sim = SpeculativeServiceSimulator(
            trace, config, model=model_page_pushes_inline()
        )
        run = sim.run(ThresholdPolicy(threshold=0.9))
        assert run.metrics.speculated_documents == 0

    def test_speculation_never_increases_server_load(self):
        trace = Trace(
            [req(float(i), d) for i, d in enumerate(["/page", "/inline", "/next"])],
            DOCS,
        )
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        base = sim.run(None)
        spec = sim.run(ThresholdPolicy(threshold=0.5))
        assert spec.metrics.server_requests <= base.metrics.server_requests

    def test_bytes_conservation(self):
        trace = Trace(
            [req(float(i), d) for i, d in enumerate(["/page", "/inline", "/next"])],
            DOCS,
        )
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(ThresholdPolicy(threshold=0.5))
        m = run.metrics
        # Everything sent is either a demand miss or a speculative push.
        assert m.bytes_sent == pytest.approx(m.miss_bytes + m.speculated_bytes)


class TestNonCooperativeWaste:
    def test_resend_of_cached_document_wastes_bytes(self):
        # /inline demanded first, then /page pushes it again (server
        # doesn't know the client has it).
        trace = Trace([req(0, "/inline"), req(1, "/page")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(ThresholdPolicy(threshold=0.9))
        assert run.metrics.speculated_documents == 1
        assert run.metrics.wasted_bytes == 200

    def test_cooperative_client_avoids_resend(self):
        trace = Trace([req(0, "/inline"), req(1, "/page")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(ThresholdPolicy(threshold=0.9), cooperative=True)
        assert run.metrics.speculated_documents == 0
        assert run.metrics.wasted_bytes == 0.0

    def test_cooperative_never_uses_more_bandwidth(self):
        trace = Trace(
            [req(float(i), d, client=f"c{i % 2}") for i, d in
             enumerate(["/inline", "/page", "/page", "/inline", "/next"])],
            DOCS,
        )
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        plain = sim.run(ThresholdPolicy(threshold=0.5))
        cooperative = sim.run(ThresholdPolicy(threshold=0.5), cooperative=True)
        assert (
            cooperative.metrics.bytes_sent <= plain.metrics.bytes_sent
        )
        # Gains must not shrink: same hits, fewer wasted bytes.
        assert cooperative.cache_hits == plain.cache_hits


class TestSessionSemantics:
    def test_session_purge_forgets_pushes(self):
        config = BaselineConfig(
            comm_cost=1.0, serv_cost=100.0, session_timeout=60.0
        )
        trace = Trace([req(0, "/page"), req(1000, "/inline")], DOCS)
        sim = SpeculativeServiceSimulator(
            trace, config, model=model_page_pushes_inline()
        )
        run = sim.run(ThresholdPolicy(threshold=0.9))
        # Push happened in session 1; purged before the session-2 access.
        assert run.cache_hits == 0
        assert run.metrics.server_requests == 2
        assert run.metrics.wasted_bytes == 200

    def test_clients_do_not_share_caches(self):
        trace = Trace([req(0, "/page", "a"), req(1, "/inline", "b")], DOCS)
        sim = SpeculativeServiceSimulator(trace, CONFIG, model=model_page_pushes_inline())
        run = sim.run(ThresholdPolicy(threshold=0.9))
        assert run.cache_hits == 0
        assert run.metrics.server_requests == 2


class TestRollingIntegration:
    def test_default_rolling_estimator_builds(self):
        requests = []
        for n in range(6):
            base = n * 86_400.0
            requests.append(req(base, "/page", client=f"c{n}"))
            requests.append(req(base + 1, "/inline", client=f"c{n}"))
        trace = Trace(requests, DOCS, sort=True)
        config = BaselineConfig(
            comm_cost=1.0,
            serv_cost=100.0,
            history_length_days=10,
            update_cycle_days=1,
        )
        sim = SpeculativeServiceSimulator(trace, config)
        run = sim.run(ThresholdPolicy(threshold=0.9))
        # Later days' speculation learned from earlier days.
        assert run.metrics.speculated_documents >= 1
