"""Tests for the footnote-6 trace cleaning."""

import pytest

from repro.trace import Request, Trace, TraceCleaner


def req(doc, t=0.0, status=200, method="GET", size=10):
    return Request(
        timestamp=t, client="c", doc_id=doc, size=size, status=status, method=method
    )


class TestDropping:
    def test_errors_dropped(self):
        trace = Trace([req("/a", 0), req("/missing", 1, status=404)])
        cleaned, report = TraceCleaner().clean(trace)
        assert len(cleaned) == 1
        assert report.dropped_errors == 1

    def test_scripts_dropped_by_prefix(self):
        trace = Trace([req("/cgi-bin/counter", 0), req("/a", 1)])
        cleaned, report = TraceCleaner().clean(trace)
        assert report.dropped_scripts == 1
        assert {r.doc_id for r in cleaned} == {"/a"}

    def test_scripts_dropped_by_suffix(self):
        trace = Trace([req("/tools/run.cgi", 0)])
        _, report = TraceCleaner().clean(trace)
        assert report.dropped_scripts == 1

    def test_live_documents_dropped(self):
        trace = Trace([req("/live/feed", 0), req("/a", 1)])
        cleaned, report = TraceCleaner(live_documents=["/live/feed"]).clean(trace)
        assert report.dropped_live == 1
        assert len(cleaned) == 1

    def test_non_get_dropped(self):
        trace = Trace([req("/a", 0, method="POST"), req("/a", 1)])
        _, report = TraceCleaner().clean(trace)
        assert report.dropped_methods == 1

    def test_dropped_total(self):
        trace = Trace(
            [
                req("/a", 0, status=500),
                req("/cgi-bin/x", 1),
                req("/b", 2, method="HEAD"),
                req("/ok", 3),
            ]
        )
        _, report = TraceCleaner().clean(trace)
        assert report.dropped == 3
        assert report.kept == 1


class TestAliases:
    def test_index_html_canonicalized(self):
        trace = Trace([req("/dir/index.html", 0), req("/dir/", 1), req("/dir", 2)])
        cleaned, report = TraceCleaner().clean(trace)
        assert {r.doc_id for r in cleaned} == {"/dir"}
        assert report.aliases_renamed == 2

    def test_root_preserved(self):
        trace = Trace([req("/index.html", 0), req("/", 1)])
        cleaned, __ = TraceCleaner().clean(trace)
        assert {r.doc_id for r in cleaned} == {"/"}

    def test_query_string_stripped(self):
        trace = Trace([req("/a?x=1", 0)])
        cleaned, __ = TraceCleaner().clean(trace)
        assert cleaned[0].doc_id == "/a"

    def test_fragment_stripped(self):
        trace = Trace([req("/a#sec", 0)])
        cleaned, __ = TraceCleaner().clean(trace)
        assert cleaned[0].doc_id == "/a"

    def test_explicit_alias_map(self):
        cleaner = TraceCleaner(alias_map={"/old": "/new"})
        cleaned, report = cleaner.clean(Trace([req("/old", 0)]))
        assert cleaned[0].doc_id == "/new"
        assert report.aliases_renamed == 1

    def test_canonicalize_disabled(self):
        cleaner = TraceCleaner(canonicalize=False)
        cleaned, report = cleaner.clean(Trace([req("/dir/index.html", 0)]))
        assert cleaned[0].doc_id == "/dir/index.html"
        assert report.aliases_renamed == 0

    def test_rename_preserves_other_fields(self):
        trace = Trace([req("/dir/", 0, size=77)])
        cleaned, __ = TraceCleaner().clean(trace)
        assert cleaned[0].size == 77
        assert cleaned[0].client == "c"


class TestIdempotence:
    def test_cleaning_twice_is_stable(self):
        trace = Trace(
            [req("/dir/index.html", 0), req("/a?q=2", 1), req("/bad", 2, status=404)]
        )
        once, __ = TraceCleaner().clean(trace)
        twice, report = TraceCleaner().clean(once)
        assert [r.doc_id for r in twice] == [r.doc_id for r in once]
        assert report.dropped == 0
        assert report.aliases_renamed == 0
