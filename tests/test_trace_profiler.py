"""Single-pass workload profiler."""

import pytest

from repro.errors import TraceFormatError
from repro.trace import (
    Request,
    Trace,
    TraceProfiler,
    WorkloadProfile,
    profile_trace,
    split_sessions,
    split_strides,
)
from repro.trace.records import Document
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

WORKLOAD = GeneratorConfig(
    seed=2, n_pages=60, n_clients=40, n_sessions=300, duration_days=10
)


@pytest.fixture(scope="module")
def trace():
    return SyntheticTraceGenerator(WORKLOAD).generate()


@pytest.fixture(scope="module")
def profile(trace):
    return TraceProfiler().profile(trace)


def _request(ts, client="c0", doc="d0", size=100):
    return Request(timestamp=ts, client=client, doc_id=doc, size=size)


class TestBasicCounts:
    def test_totals(self, trace, profile):
        assert profile.n_requests == len(trace)
        assert profile.n_clients == len(trace.clients())
        assert profile.n_documents == len(trace.documents)
        assert profile.total_bytes == sum(r.size for r in trace)
        assert profile.duration_seconds == pytest.approx(trace.duration)

    def test_session_count_matches_split_sessions(self, trace, profile):
        assert profile.n_sessions == len(split_sessions(trace, 1800.0))

    def test_session_bins_sum_to_sessions(self, profile):
        assert sum(profile.session_length_bins) == profile.n_sessions

    def test_intra_stride_fraction_matches_split_strides(
        self, trace, profile
    ):
        strides = split_strides(trace, 5.0)
        n_gaps = len(trace) - len(trace.clients())
        intra = sum(len(s.requests) - 1 for s in strides)
        assert profile.intra_stride_fraction == pytest.approx(
            intra / n_gaps
        )

    def test_gap_bins_sum_to_gaps(self, trace, profile):
        assert sum(profile.gap_bins) == len(trace) - len(trace.clients())


class TestStreamingInput:
    def test_trace_and_stream_agree(self, trace, profile):
        streamed = TraceProfiler().profile(iter(list(trace)))
        # Only the population differs: an iterable has no catalog, so
        # the population falls back to the distinct requested docs.
        assert streamed.n_requests == profile.n_requests
        assert streamed.n_clients == profile.n_clients
        assert streamed.session_length_bins == profile.session_length_bins
        assert streamed.gap_bins == profile.gap_bins
        assert streamed.n_documents <= profile.n_documents

    def test_profiles_generator_stream(self):
        generator = SyntheticTraceGenerator(WORKLOAD)
        streamed = profile_trace(generator.stream())
        batch = TraceProfiler().profile(
            SyntheticTraceGenerator(WORKLOAD).generate()
        )
        assert streamed.n_requests == batch.n_requests
        assert streamed.gap_bins == batch.gap_bins


class TestValidation:
    def test_empty_raises(self):
        with pytest.raises(TraceFormatError):
            TraceProfiler().profile(iter([]))

    def test_out_of_order_raises(self):
        requests = [_request(10.0), _request(5.0)]
        with pytest.raises(TraceFormatError):
            TraceProfiler().profile(iter(requests))

    def test_bad_thresholds_raise(self):
        with pytest.raises(TraceFormatError):
            TraceProfiler(window_seconds=0)
        with pytest.raises(TraceFormatError):
            TraceProfiler(session_timeout=-1.0)
        with pytest.raises(TraceFormatError):
            TraceProfiler(stride_timeout=0.0)


class TestArrivals:
    def test_burstiness_and_fano(self):
        # Two windows: 3 requests then 1 — mean 2, peak 3, variance 1.
        requests = [
            _request(0.0),
            _request(1.0),
            _request(2.0),
            _request(3_700.0),
        ]
        profile = TraceProfiler().profile(iter(requests))
        assert profile.window_mean == pytest.approx(2.0)
        assert profile.window_peak == 3
        assert profile.burstiness == pytest.approx(1.5)
        assert profile.fano == pytest.approx(0.5)

    def test_hour_histogram_sums_to_requests(self, profile):
        assert sum(profile.hour_of_day) == profile.n_requests


class TestPopularity:
    def test_population_prefers_catalog(self):
        documents = [Document(f"d{i}", 100) for i in range(50)]
        requests = [_request(float(i), doc="d0") for i in range(10)]
        trace = Trace(requests, documents)
        profile = TraceProfiler().profile(trace)
        assert profile.n_documents == 50
        # One doc takes all requests; top 10% of 50 docs covers it.
        assert profile.top_ten_percent_share == pytest.approx(1.0)


class TestReporting:
    def test_to_dict_round_trip(self, profile):
        payload = profile.to_dict()
        assert payload["n_requests"] == profile.n_requests
        assert payload["arrivals"]["burstiness"] == profile.burstiness
        assert payload["sessions"]["count"] == profile.n_sessions
        assert isinstance(profile, WorkloadProfile)

    def test_format_mentions_key_figures(self, profile):
        text = profile.format()
        assert "requests" in text
        assert "burstiness" in text
        assert "sessions" in text
