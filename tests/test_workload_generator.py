"""Tests for the synthetic trace generator and calibration checks."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.trace import Trace, split_strides, summarize
from repro.workload import (
    GeneratorConfig,
    SyntheticTraceGenerator,
    check_calibration,
    generate_trace,
)
from repro.workload.calibration import touched_bytes_fraction

SMALL = GeneratorConfig(seed=3, n_pages=60, n_clients=40, n_sessions=300, duration_days=10)


@pytest.fixture(scope="module")
def small_generator():
    return SyntheticTraceGenerator(SMALL)


@pytest.fixture(scope="module")
def small_trace(small_generator):
    return small_generator.generate()


class TestGeneration:
    def test_nonempty(self, small_trace):
        assert len(small_trace) >= SMALL.n_sessions

    def test_sorted(self, small_trace):
        times = [r.timestamp for r in small_trace]
        assert times == sorted(times)

    def test_within_duration(self, small_trace):
        # Sessions start within the window; tails may run slightly past.
        assert small_trace.start_time >= 0
        assert small_trace.end_time < SMALL.duration_days * 86_400 * 1.1

    def test_all_docs_cataloged(self, small_trace):
        for request in small_trace:
            assert request.doc_id in small_trace.documents

    def test_sizes_match_catalog(self, small_trace):
        for request in small_trace:
            assert request.size == small_trace.documents[request.doc_id].size

    def test_remote_flag_tracks_client(self, small_trace):
        for request in small_trace:
            assert request.remote == (not request.client.startswith("local-"))

    def test_deterministic(self):
        a = SyntheticTraceGenerator(SMALL).generate()
        b = SyntheticTraceGenerator(SMALL).generate()
        assert len(a) == len(b)
        assert [(r.timestamp, r.doc_id) for r in a] == [
            (r.timestamp, r.doc_id) for r in b
        ]

    def test_different_seeds_differ(self):
        a = generate_trace(1, n_pages=50, n_clients=20, n_sessions=100)
        b = generate_trace(2, n_pages=50, n_clients=20, n_sessions=100)
        assert [(r.timestamp, r.doc_id) for r in a] != [
            (r.timestamp, r.doc_id) for r in b
        ]

    def test_no_refetch_within_session(self, small_generator):
        """The per-session browser cache never refetches a document."""
        client = small_generator.population.clients[0]
        requests = small_generator._session_requests(client, 0.0)
        ids = [r.doc_id for r in requests]
        assert len(ids) == len(set(ids))

    def test_session_contains_embedded_objects(self, small_generator):
        # Over many sessions, at least some must fetch inline objects.
        saw_embedded = False
        for i in range(200):
            client = small_generator.population.clients[i % 10]
            for request in small_generator._session_requests(client, 0.0):
                if small_generator.site.document(request.doc_id).kind == "embedded":
                    saw_embedded = True
        assert saw_embedded


class TestStrideStructure:
    def test_embedded_objects_land_in_page_stride(self, small_trace):
        """Inline objects follow their page within the 5s stride window."""
        strides = split_strides(small_trace, stride_timeout=5.0)
        multi = [s for s in strides if len(s) > 1]
        assert multi, "expected multi-request strides from embedded objects"


class TestCalibration:
    def test_all_targets_pass_at_paper_scale(self):
        config = GeneratorConfig.paper_scale(seed=11)
        generator = SyntheticTraceGenerator(config)
        trace = generator.generate()
        checks = check_calibration(
            trace, site_total_bytes=generator.site.total_bytes()
        )
        failures = [c.format() for c in checks if not c.passed]
        assert not failures, f"calibration misses: {failures}"

    def test_paper_scale_request_volume(self):
        trace = SyntheticTraceGenerator(GeneratorConfig.paper_scale(seed=1)).generate()
        # Paper: 205,925 accesses. Accept a +-25% band.
        assert 150_000 <= len(trace) <= 260_000

    def test_paper_scale_concentration(self):
        trace = SyntheticTraceGenerator(GeneratorConfig.paper_scale(seed=1)).generate()
        stats = summarize(trace)
        # Paper: top 10% of blocks carried 91% of requests.
        assert stats.top_ten_percent_share > 0.85

    def test_touched_bytes_fraction_bounds(self, small_generator, small_trace):
        fraction = touched_bytes_fraction(
            small_trace, small_generator.site.total_bytes()
        )
        assert 0.0 < fraction <= 1.0

    def test_touched_bytes_zero_site(self):
        assert touched_bytes_fraction(Trace([]), 0) == 0.0

    def test_check_format(self, small_generator, small_trace):
        checks = check_calibration(small_trace)
        assert checks
        for check in checks:
            line = check.format()
            assert "paper=" in line and "observed=" in line


class TestConfigValidation:
    def test_zero_sessions(self):
        with pytest.raises(CalibrationError):
            GeneratorConfig(n_sessions=0)

    def test_bad_continue_probability(self):
        with pytest.raises(CalibrationError):
            GeneratorConfig(continue_probability=1.0)

    def test_bad_think_time(self):
        with pytest.raises(CalibrationError):
            GeneratorConfig(think_time_mean=0.0)
