"""Fleet subsystem: planning, lookup protocol, faults, and the gates."""

import asyncio
import json

import pytest

from repro.errors import RuntimeProtocolError, SimulationError
from repro.fleet import (
    FLEET_POLICIES,
    FleetNode,
    FleetNodeSpec,
    FleetSettings,
    build_fleet_plan,
    build_single_tier_plan,
    execute_fleet,
)
from repro.runtime import InMemoryNetwork, smoke_workload
from repro.runtime.clock import run_virtual
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.messages import make_request, make_response
from repro.runtime.metrics import MetricsRegistry, verify_conservation
from repro.topology import RoutingTree
from repro.trace.records import Document, Request, Trace


def _toy_tree() -> RoutingTree:
    return RoutingTree(
        "home-server",
        {
            "region-00": "home-server",
            "region-01": "home-server",
            "subnet-00": "region-00",
            "subnet-01": "region-00",
            "subnet-02": "region-01",
            "ca1": "subnet-00",
            "ca2": "subnet-00",
            "cb1": "subnet-01",
            "cb2": "subnet-01",
            "cc1": "subnet-02",
        },
    )


def _toy_trace() -> Trace:
    documents = [Document(f"/d{i}", 100 * (i + 1)) for i in range(8)]
    sizes = {doc.doc_id: doc.size for doc in documents}
    patterns = {
        "ca1": ["/d0", "/d1", "/d0"],
        "ca2": ["/d0", "/d2"],
        "cb1": ["/d2", "/d3", "/d2"],
        "cb2": ["/d3", "/d1"],
        "cc1": ["/d4", "/d5", "/d4", "/d6"],
    }
    requests = []
    when = 0.0
    for client, doc_ids in patterns.items():
        for doc_id in doc_ids:
            when += 1.0
            requests.append(
                Request(
                    timestamp=when,
                    client=client,
                    doc_id=doc_id,
                    size=sizes[doc_id],
                )
            )
    return Trace(requests, documents)


@pytest.fixture(scope="module")
def toy_tree():
    return _toy_tree()


@pytest.fixture(scope="module")
def toy_trace():
    return _toy_trace()


class TestFleetPlan:
    def test_every_policy_builds_within_budget(self, toy_tree, toy_trace):
        for policy in FLEET_POLICIES:
            plan = build_fleet_plan(
                toy_tree, toy_trace, budget_bytes=2000.0, policy=policy
            )
            assert plan.policy == policy
            assert plan.total_bytes() <= 2000.0
            for spec in plan.nodes:
                assert spec.name.startswith(("region-", "subnet-"))

    def test_plan_is_deterministic(self, toy_tree, toy_trace):
        first = build_fleet_plan(toy_tree, toy_trace, budget_bytes=2000.0)
        again = build_fleet_plan(toy_tree, toy_trace, budget_bytes=2000.0)
        assert first == again

    def test_nodes_sorted_shallowest_first(self, toy_tree, toy_trace):
        plan = build_fleet_plan(toy_tree, toy_trace, budget_bytes=2000.0)
        order = [(spec.depth, spec.name) for spec in plan.nodes]
        assert order == sorted(order)

    def test_upstream_chain_and_siblings(self, toy_tree, toy_trace):
        plan = build_fleet_plan(toy_tree, toy_trace, budget_bytes=2000.0)
        by_name = {spec.name: spec for spec in plan.nodes}
        assert by_name["subnet-00"].upstream == "region-00"
        assert by_name["subnet-00"].upstream_distance == 1
        assert by_name["subnet-00"].siblings == ("subnet-01",)
        assert by_name["region-00"].upstream == "home-server"
        # subnet-02 is an only child: nobody to probe.
        assert by_name["subnet-02"].siblings == ()

    def test_hierarchical_subnets_exclude_region_docs(
        self, toy_tree, toy_trace
    ):
        plan = build_fleet_plan(toy_tree, toy_trace, budget_bytes=2000.0)
        by_name = {spec.name: dict(spec.holdings) for spec in plan.nodes}
        for subnet, region in (
            ("subnet-00", "region-00"),
            ("subnet-01", "region-00"),
            ("subnet-02", "region-01"),
        ):
            overlap = set(by_name[subnet]) & set(by_name[region])
            assert overlap == set()

    def test_directory_points_at_actual_holders(self, toy_tree, toy_trace):
        plan = build_fleet_plan(
            toy_tree, toy_trace, budget_bytes=2000.0, policy="cooperative"
        )
        by_name = {spec.name: dict(spec.holdings) for spec in plan.nodes}
        for spec in plan.nodes:
            directory = plan.directory_for(spec.name)
            for doc_id, holders in directory.items():
                for holder in holders:
                    assert holder in spec.siblings
                    assert doc_id in by_name[holder]

    def test_power_of_d_probes_by_hash(self, toy_tree, toy_trace):
        plan = build_fleet_plan(
            toy_tree, toy_trace, budget_bytes=2000.0, policy="power-of-d"
        )
        assert plan.probe_mode == "hashed"

    def test_zero_budget_plan_is_empty_but_routable(
        self, toy_tree, toy_trace
    ):
        plan = build_fleet_plan(toy_tree, toy_trace, budget_bytes=0.0)
        assert plan.total_bytes() == 0
        assert plan.node_names()  # geometry survives an empty budget

    def test_without_holdings_keeps_geometry(self, toy_tree, toy_trace):
        plan = build_fleet_plan(toy_tree, toy_trace, budget_bytes=2000.0)
        bare = plan.without_holdings()
        assert bare.node_names() == plan.node_names()
        assert bare.total_bytes() == 0

    def test_unknown_policy_rejected(self, toy_tree, toy_trace):
        with pytest.raises(SimulationError):
            build_fleet_plan(
                toy_tree, toy_trace, budget_bytes=1.0, policy="magic"
            )

    def test_region_fraction_range_checked(self, toy_tree, toy_trace):
        with pytest.raises(SimulationError):
            build_fleet_plan(
                toy_tree, toy_trace, budget_bytes=1.0, region_fraction=1.5
            )

    def test_single_tier_replicates_everywhere(self, toy_tree, toy_trace):
        plan = build_single_tier_plan(
            toy_tree,
            toy_trace,
            budget_bytes=2000.0,
            regions=["region-00", "region-01"],
            holdings={"/d0": 100, "/d1": 200},
        )
        assert plan.policy == "single-tier"
        expected = (("/d0", 100), ("/d1", 200))
        for spec in plan.nodes:
            assert spec.holdings == expected
            assert spec.upstream == "home-server"


class _SiblingHarness:
    """Two sibling subnets and an origin, wired by hand."""

    DOC = "/doc/x"
    SIZE = 500

    def __init__(self, *, partition: bool):
        self.partition = partition
        self.metrics = MetricsRegistry()

    async def run(self) -> dict:
        network = InMemoryNetwork(seed=7)
        injector_task = None
        if self.partition:
            injector = FaultInjector(
                FaultPlan().partition("subnet-a", "subnet-b", at=0.0),
                seed=0,
                metrics=self.metrics,
            )
            network.attach_faults(injector)
            injector_task = asyncio.get_running_loop().create_task(
                injector.run()
            )

        origin_endpoint = network.endpoint("home-server")

        async def origin_handler(message):
            return make_response(
                "home-server",
                message.request_id,
                message.payload["doc_id"],
                self.SIZE,
                "home-server",
            )

        origin_endpoint.start(origin_handler)

        spec_a = FleetNodeSpec(
            name="subnet-a",
            depth=2,
            upstream="home-server",
            upstream_distance=2,
            siblings=("subnet-b",),
        )
        spec_b = FleetNodeSpec(
            name="subnet-b",
            depth=2,
            upstream="home-server",
            upstream_distance=2,
            siblings=("subnet-a",),
            holdings=((self.DOC, self.SIZE),),
        )
        endpoint_a = network.endpoint("subnet-a")
        endpoint_b = network.endpoint("subnet-b")
        node_a = FleetNode(
            spec_a,
            endpoint_a,
            metrics=self.metrics,
            directory={self.DOC: ("subnet-b",)},
            probe_timeout=0.5,
            upstream_timeout=5.0,
        )
        node_b = FleetNode(
            spec_b, endpoint_b, metrics=self.metrics, directory={}
        )
        endpoint_a.start(node_a.handle)
        endpoint_b.start(node_b.handle)

        client = network.endpoint("client-1")
        client.start()  # no handler: the client only pumps replies
        await asyncio.sleep(0.01)  # let the injector apply t=0 events
        request = make_request(
            "client-1", client.next_request_id(), self.DOC, 0.0
        )
        try:
            reply = await client.call("subnet-a", request, timeout=30.0)
        finally:
            if injector_task is not None and not injector_task.done():
                injector_task.cancel()
                await asyncio.gather(injector_task, return_exceptions=True)
            await node_a.close()
            await node_b.close()
            for endpoint in (endpoint_a, endpoint_b, origin_endpoint, client):
                await endpoint.close()
        return reply.payload


class TestSiblingProbe:
    def test_probe_serves_from_the_sibling(self):
        harness = _SiblingHarness(partition=False)
        payload = run_virtual(harness.run())
        counters = harness.metrics.snapshot()["counters"]
        assert payload["served_by"] == "subnet-b"
        assert payload["path_hops"] == 2  # up to the parent and back down
        assert counters["fleet.subnet-a.sibling_hits"] == 1
        assert counters["fleet.subnet-b.hits"] == 1
        assert "fleet.subnet-a.forwards" not in counters

    def test_partitioned_sibling_falls_back_to_upstream(self):
        # Regression: a partition between siblings must degrade the
        # probe into an upstream forward, not fail the request.
        harness = _SiblingHarness(partition=True)
        payload = run_virtual(harness.run())
        counters = harness.metrics.snapshot()["counters"]
        assert payload["served_by"] == "home-server"
        assert payload["path_hops"] == 2  # the upstream leg only
        assert counters["fleet.subnet-a.probe_failures"] == 1
        assert counters.get("fleet.subnet-a.sibling_hits", 0) == 0
        assert counters["fleet.subnet-a.forwards"] == 1

    def test_probe_miss_never_recurses(self):
        # A probed node without the document answers with a protocol
        # error instead of forwarding (loop prevention), and the prober
        # carries on upstream.
        async def scenario():
            metrics = MetricsRegistry()
            network = InMemoryNetwork(seed=3)
            origin_endpoint = network.endpoint("home-server")

            async def origin_handler(message):
                return make_response(
                    "home-server",
                    message.request_id,
                    message.payload["doc_id"],
                    64,
                    "home-server",
                )

            origin_endpoint.start(origin_handler)
            specs = {
                name: FleetNodeSpec(
                    name=name,
                    depth=2,
                    upstream="home-server",
                    upstream_distance=2,
                    siblings=(sibling,),
                )
                for name, sibling in (
                    ("subnet-a", "subnet-b"),
                    ("subnet-b", "subnet-a"),
                )
            }
            endpoints, nodes = [], []
            for name, spec in specs.items():
                endpoint = network.endpoint(name)
                node = FleetNode(
                    spec,
                    endpoint,
                    metrics=metrics,
                    directory={"/doc/y": (spec.siblings[0],)},
                    upstream_timeout=5.0,
                )
                endpoint.start(node.handle)
                endpoints.append(endpoint)
                nodes.append(node)
            client = network.endpoint("client-1")
            client.start()
            request = make_request(
                "client-1", client.next_request_id(), "/doc/y", 0.0
            )
            try:
                reply = await client.call("subnet-a", request, timeout=30.0)
            finally:
                for node in nodes:
                    await node.close()
                for endpoint in (*endpoints, origin_endpoint, client):
                    await endpoint.close()
            return reply.payload, metrics.snapshot()["counters"]

        payload, counters = run_virtual(scenario())
        assert payload["served_by"] == "home-server"
        assert counters["fleet.subnet-a.probe_misses"] == 1
        assert counters["fleet.subnet-b.probe_rejects"] == 1
        # The probed node never forwarded anything on the probe's behalf.
        assert counters.get("fleet.subnet-b.forwards", 0) == 0


WORKLOAD = smoke_workload(0)


@pytest.fixture(scope="module")
def fleet_report():
    return execute_fleet(WORKLOAD, FleetSettings())


class TestFleetRun:
    def test_all_four_ratios_beat_the_single_tier(self, fleet_report):
        # The headline acceptance gate: at equal total storage the fleet
        # must improve traffic, load, time and miss rate simultaneously.
        fleet_report.require_improvement()
        for name, (fleet, single) in fleet_report.improvement().items():
            assert fleet < single, name

    def test_fleet_and_single_both_beat_the_demand_baseline(
        self, fleet_report
    ):
        ratios = fleet_report.ratios
        assert ratios.server_load_ratio < 1.0
        assert ratios.service_time_ratio < 1.0
        assert ratios.miss_rate_ratio < 1.0

    def test_fleet_nodes_serve_and_probe(self, fleet_report):
        counters = fleet_report.fleet["counters"]
        assert counters["proxy_requests"] > 0
        hits = sum(
            amount
            for name, amount in counters.items()
            if name.startswith("fleet.") and name.endswith(".hits")
        )
        sibling_hits = sum(
            amount
            for name, amount in counters.items()
            if name.startswith("fleet.") and name.endswith(".sibling_hits")
        )
        assert hits > 0
        assert sibling_hits > 0

    def test_per_node_counters_do_not_collide(self, fleet_report):
        counters = fleet_report.fleet["counters"]
        serving_nodes = {
            name.split(".")[1]
            for name in counters
            if name.startswith("fleet.") and name.endswith(".bytes_served")
        }
        assert len(serving_nodes) > 1
        tiers = {node.split("-")[0] for node in serving_nodes}
        assert tiers == {"region", "subnet"}

    def test_conservation_holds_strictly(self, fleet_report):
        for snapshot in (
            fleet_report.demand,
            fleet_report.single,
            fleet_report.fleet,
        ):
            verify_conservation(snapshot, strict=True)

    def test_plan_summary_reports_both_tiers(self, fleet_report):
        summary = fleet_report.plan
        assert summary["policy"] == "hierarchical"
        assert set(summary["tiers"]) == {"region", "subnet"}
        assert 0 < summary["stored_bytes"] <= summary["budget_bytes"]

    def test_repeated_run_is_bit_identical(self, fleet_report):
        again = execute_fleet(WORKLOAD, FleetSettings())
        dump = lambda snap: json.dumps(snap, sort_keys=True)  # noqa: E731
        assert dump(again.fleet) == dump(fleet_report.fleet)
        assert dump(again.single) == dump(fleet_report.single)
        assert dump(again.demand) == dump(fleet_report.demand)

    def test_schedule_perturbation_keeps_decisions(self, fleet_report):
        perturbed = execute_fleet(
            WORKLOAD, FleetSettings(schedule_seed=11)
        )
        for key in ("bytes_hops", "origin_requests", "accessed_bytes"):
            assert (
                perturbed.fleet["counters"][key]
                == fleet_report.fleet["counters"][key]
            )


class TestFleetFaults:
    def test_fault_plan_scripts_apply_to_fleet_nodes(self):
        # The same FaultPlan vocabulary the chaos gate scripts — crash,
        # partition, brownout — drives fleet nodes unchanged.
        plan = (
            FaultPlan()
            .crash("subnet-01-0", at=0.3, restart_at=1.0)
            .partition("subnet-01-1", "subnet-01-2", at=0.2, heal_at=1.5)
            .latency_add(0.05, at=0.1, until=2.0, target=("home-server",))
        )
        report = execute_fleet(WORKLOAD, FleetSettings(), fault_plan=plan)
        counters = report.fleet["counters"]
        assert counters["fleet.subnet-01-0.crashes"] == 1
        assert counters["fleet.subnet-01-0.restarts"] == 1
        for action in ("crash", "restart", "partition", "heal"):
            assert counters[f"faults.{action}"] == 1
        # Every access was still answered despite the script.
        assert (
            counters["accesses"]
            == report.demand["counters"]["accesses"]
        )
        verify_conservation(report.fleet)  # non-strict under faults

    def test_faulted_run_raises_nothing_and_reports_ratios(self):
        plan = FaultPlan().crash("region-01", at=0.3, restart_at=1.2)
        report = execute_fleet(WORKLOAD, FleetSettings(), fault_plan=plan)
        assert report.ratios.service_time_ratio < 1.0
        assert report.fleet["counters"]["fleet.region-01.crashes"] == 1
