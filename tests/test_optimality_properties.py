"""Optimality guarantees checked against brute force on small instances."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dissemination import (
    ServerModel,
    alpha_for_allocation,
    exponential_allocation,
)
from repro.topology import RoutingTree, greedy_tree_placement


def _savings(tree, demand, nodes):
    total = 0.0
    for client, value in demand.items():
        best = 0
        path = tree.path_from_root(client)
        for node in nodes:
            if node in path:
                best = max(best, tree.depth(node))
        total += value * best
    return total


@st.composite
def small_tree_instances(draw):
    """A random 2-region tree with random leaf demand."""
    n_regions = draw(st.integers(min_value=2, max_value=3))
    leaves_per_subnet = draw(st.integers(min_value=1, max_value=2))
    parents = {}
    demand = {}
    for region in range(n_regions):
        region_node = f"r{region}"
        parents[region_node] = "root"
        for subnet in range(2):
            subnet_node = f"r{region}s{subnet}"
            parents[subnet_node] = region_node
            for leaf in range(leaves_per_subnet):
                leaf_node = f"r{region}s{subnet}c{leaf}"
                parents[leaf_node] = subnet_node
                demand[leaf_node] = draw(
                    st.floats(min_value=0.0, max_value=100.0)
                )
    return RoutingTree("root", parents), demand


class TestGreedyPlacementOptimality:
    @given(small_tree_instances())
    @settings(max_examples=40, deadline=None)
    def test_single_proxy_is_optimal(self, instance):
        tree, demand = instance
        chosen = greedy_tree_placement(tree, demand, 1)
        greedy_value = _savings(tree, demand, chosen)
        best = max(
            (_savings(tree, demand, [node]) for node in tree.internal_nodes()),
            default=0.0,
        )
        assert greedy_value == pytest.approx(best)

    @given(small_tree_instances())
    @settings(max_examples=25, deadline=None)
    def test_two_proxies_within_submodular_bound(self, instance):
        """Greedy on a monotone submodular objective is within (1-1/e)
        of the optimum; verify against exhaustive search."""
        tree, demand = instance
        chosen = greedy_tree_placement(tree, demand, 2)
        greedy_value = _savings(tree, demand, chosen)
        internal = sorted(tree.internal_nodes())
        best = 0.0
        for pair in itertools.combinations(internal, 2):
            best = max(best, _savings(tree, demand, list(pair)))
        assert greedy_value >= (1 - 1 / math.e) * best - 1e-9

    @given(small_tree_instances())
    @settings(max_examples=25, deadline=None)
    def test_more_proxies_never_decrease_savings(self, instance):
        tree, demand = instance
        values = []
        for k in range(0, 4):
            chosen = greedy_tree_placement(tree, demand, k)
            values.append(_savings(tree, demand, chosen))
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestAllocationOptimality:
    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1e-7, max_value=1e-5),
        st.floats(min_value=1e-7, max_value=1e-5),
        st.floats(min_value=0.0, max_value=5e6),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_server_closed_form_beats_grid(self, r1, r2, lam1, lam2, budget):
        servers = [ServerModel("a", r1, lam1), ServerModel("b", r2, lam2)]
        result = exponential_allocation(servers, budget)
        # Exhaustive grid over the budget split.
        best_grid = 0.0
        for fraction in np.linspace(0.0, 1.0, 201):
            allocation = {"a": budget * fraction, "b": budget * (1 - fraction)}
            best_grid = max(best_grid, alpha_for_allocation(servers, allocation))
        assert result.alpha >= best_grid - 1e-6

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e4),
                st.floats(min_value=1e-7, max_value=1e-5),
            ),
            min_size=2,
            max_size=5,
        ),
        st.floats(min_value=1e3, max_value=1e7),
    )
    @settings(max_examples=30, deadline=None)
    def test_kkt_stationarity_on_active_servers(self, params, budget):
        """At the optimum, all servers with positive allocation share
        the same marginal value λ_i R_i exp(−λ_i B_i)."""
        servers = [
            ServerModel(f"s{i}", rate, lam) for i, (rate, lam) in enumerate(params)
        ]
        result = exponential_allocation(servers, budget)
        marginals = [
            s.lam * s.rate * math.exp(-s.lam * result.allocations[s.name])
            for s in servers
            if result.allocations[s.name] > 1e-6
        ]
        if len(marginals) >= 2:
            assert max(marginals) == pytest.approx(min(marginals), rel=1e-6)
        # Servers pinned at zero have marginal value below the water level.
        if marginals:
            level = max(marginals)
            for s in servers:
                if result.allocations[s.name] <= 1e-6 and s.rate > 0:
                    assert s.lam * s.rate <= level * (1 + 1e-6)
