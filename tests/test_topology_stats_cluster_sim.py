"""Tests for tree statistics and the cluster-level simulator."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.dissemination import ClusterSimulator
from repro.topology import RoutingTree, tree_statistics
from repro.trace import Request, Trace


@pytest.fixture
def tree():
    return RoutingTree(
        "root",
        {
            "r0": "root",
            "r1": "root",
            "s0": "r0",
            "c1": "s0",
            "c2": "s0",
            "c3": "r1",
        },
    )


class TestTreeStatistics:
    def test_counts(self, tree):
        stats = tree_statistics(tree)
        assert stats.n_nodes == 7
        assert stats.n_leaves == 3
        assert stats.n_internal == 3

    def test_depths(self, tree):
        stats = tree_statistics(tree)
        assert stats.max_depth == 3
        assert stats.mean_leaf_depth == pytest.approx((3 + 3 + 2) / 3)

    def test_demand_weighted_depth(self, tree):
        stats = tree_statistics(tree, {"c1": 100.0, "c3": 100.0})
        assert stats.demand_weighted_depth == pytest.approx(2.5)

    def test_top_subtree_share(self, tree):
        stats = tree_statistics(tree, {"c1": 70.0, "c2": 10.0, "c3": 20.0})
        assert stats.top_subtree_demand_share == pytest.approx(0.8)

    def test_no_demand(self, tree):
        stats = tree_statistics(tree)
        assert stats.demand_weighted_depth == 0.0
        assert stats.top_subtree_demand_share == 0.0

    def test_non_leaf_demand_rejected(self, tree):
        with pytest.raises(TopologyError):
            tree_statistics(tree, {"r0": 10.0})

    def test_format(self, tree):
        text = tree_statistics(tree).format()
        assert "leaves" in text and "max depth" in text

    def test_single_node_tree(self):
        stats = tree_statistics(RoutingTree("r", {}))
        assert stats.n_leaves == 0
        assert stats.max_depth == 0


def make_trace(pairs):
    """pairs: list of (doc, size, n_requests)."""
    requests = []
    t = 0.0
    for doc, size, count in pairs:
        for i in range(count):
            requests.append(
                Request(timestamp=t, client=f"c{i}", doc_id=doc, size=size)
            )
            t += 1.0
    return Trace(requests, sort=True)


class TestClusterSimulator:
    def _simulator(self):
        return ClusterSimulator(
            {
                "hot": make_trace([("/h1", 100, 8), ("/h2", 100, 2)]),
                "cold": make_trace([("/c1", 100, 3)]),
            }
        )

    def test_materialize_respects_allocation(self):
        sim = self._simulator()
        holdings = sim.materialize({"hot": 100.0, "cold": 0.0})
        assert holdings["hot"] == {"/h1"}  # most popular first
        assert holdings["cold"] == set()

    def test_materialize_unknown_server(self):
        with pytest.raises(SimulationError):
            self._simulator().materialize({"ghost": 10.0})

    def test_replay_alpha(self):
        sim = self._simulator()
        result = sim.run_plan({"hot": 100.0, "cold": 100.0})
        # intercepted: /h1 (8 requests) + /c1 (3) of 13 total
        assert result.alpha == pytest.approx(11 / 13)
        assert result.per_server["hot"].request_alpha == pytest.approx(0.8)
        assert result.per_server["cold"].request_alpha == pytest.approx(1.0)

    def test_byte_alpha(self):
        sim = self._simulator()
        result = sim.run_plan({"hot": 100.0, "cold": 0.0})
        assert result.byte_alpha == pytest.approx(800 / 1300)

    def test_storage_used(self):
        sim = self._simulator()
        result = sim.run_plan({"hot": 200.0, "cold": 100.0})
        assert result.storage_used == 300.0

    def test_empty_allocation_zero_alpha(self):
        sim = self._simulator()
        result = sim.run_plan({"hot": 0.0, "cold": 0.0})
        assert result.alpha == 0.0

    def test_remote_only_filtering(self):
        local_trace = Trace(
            [
                Request(
                    timestamp=0.0, client="c", doc_id="/l", size=10, remote=False
                )
            ]
        )
        sim = ClusterSimulator({"s": local_trace})
        result = sim.run_plan({"s": 100.0})
        assert result.per_server["s"].requests == 0

    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator({})

    def test_planner_integration(self):
        """The planner's predicted alpha is close to the replayed alpha
        on the same (training) traces."""
        from repro.core import DisseminationPlanner
        from repro.workload import GeneratorConfig, SyntheticTraceGenerator

        traces = {}
        planner = DisseminationPlanner()
        for index in range(2):
            generator = SyntheticTraceGenerator(
                GeneratorConfig(
                    seed=60 + index,
                    n_pages=60,
                    n_clients=50,
                    n_sessions=400,
                    duration_days=10,
                )
            )
            trace = generator.generate()
            traces[f"s{index}"] = trace
            planner.add_server(f"s{index}", trace)
        plan = planner.plan(3e6)
        result = ClusterSimulator(traces).run_plan(plan.allocations)
        assert result.alpha == pytest.approx(plan.empirical_alpha, abs=0.15)
        assert result.storage_used <= plan.budget * 1.001
