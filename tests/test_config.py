"""Tests for repro.config (the paper's baseline parameter table)."""

import math

import pytest

from repro import BaselineConfig, SimulationError
from repro.config import BASELINE, SECONDS_PER_DAY


class TestBaselineValues:
    """The singleton must match the paper's Table 1 exactly."""

    def test_comm_cost(self):
        assert BASELINE.comm_cost == 1.0

    def test_serv_cost(self):
        assert BASELINE.serv_cost == 10_000.0

    def test_stride_timeout(self):
        assert BASELINE.stride_timeout == 5.0

    def test_session_timeout_infinite(self):
        assert math.isinf(BASELINE.session_timeout)

    def test_max_size_unlimited(self):
        assert math.isinf(BASELINE.max_size)

    def test_history_length_days(self):
        assert BASELINE.history_length_days == 60.0

    def test_update_cycle_days(self):
        assert BASELINE.update_cycle_days == 1.0

    def test_history_length_seconds(self):
        assert BASELINE.history_length == 60 * SECONDS_PER_DAY

    def test_update_cycle_seconds(self):
        assert BASELINE.update_cycle == SECONDS_PER_DAY


class TestValidation:
    def test_negative_comm_cost_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(comm_cost=-1.0)

    def test_negative_stride_timeout_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(stride_timeout=-0.1)

    def test_zero_max_size_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(max_size=0)

    def test_threshold_zero_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(threshold=0.0)

    def test_threshold_above_one_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(threshold=1.5)

    def test_threshold_one_allowed(self):
        assert BaselineConfig(threshold=1.0).threshold == 1.0

    def test_zero_history_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(history_length_days=0)

    def test_zero_update_cycle_rejected(self):
        with pytest.raises(SimulationError):
            BaselineConfig(update_cycle_days=0)

    def test_zero_session_timeout_allowed(self):
        # SessionTimeout = 0 emulates a client with no cache.
        assert BaselineConfig(session_timeout=0.0).session_timeout == 0.0


class TestWithUpdates:
    def test_returns_new_instance(self):
        updated = BASELINE.with_updates(threshold=0.5)
        assert updated is not BASELINE
        assert updated.threshold == 0.5
        assert BASELINE.threshold != 0.5 or True  # original untouched
        assert BASELINE.comm_cost == updated.comm_cost

    def test_invalid_update_rejected(self):
        with pytest.raises(SimulationError):
            BASELINE.with_updates(threshold=2.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            BASELINE.threshold = 0.9  # type: ignore[misc]


class TestTableRendering:
    def test_all_eight_parameters_present(self):
        rows = BASELINE.as_table_rows()
        names = [name for name, _ in rows]
        assert names == [
            "CommCost",
            "ServCost",
            "StrideTimeout",
            "SessionTimeout",
            "MaxSize",
            "Policy",
            "HistoryLength",
            "UpdateCycle",
        ]

    def test_infinity_rendered(self):
        rows = dict(BASELINE.as_table_rows())
        assert rows["SessionTimeout"] == "infinity"
        assert rows["MaxSize"] == "infinity"

    def test_serv_cost_formatting(self):
        rows = dict(BASELINE.as_table_rows())
        assert "10,000" in rows["ServCost"]
