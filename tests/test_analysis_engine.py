"""Engine mechanics: discovery, suppressions, baseline, fingerprints."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintConfig,
    Severity,
    load_config,
    run_lint,
)
from repro.analysis.baseline import BaselineError, default_baseline_path
from repro.analysis.engine import discover_files, module_name_for
from repro.analysis.lintconfig import LintConfigError
from repro.analysis.reporters import render_json, render_text


class TestDiscovery:
    def test_directories_expand_recursively(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("")
        (tmp_path / "b.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["b.py", "a.py"] or len(found) == 2

    def test_pycache_and_out_dirs_are_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("")
        (tmp_path / "out").mkdir()
        (tmp_path / "out" / "gen.py").write_text("")
        (tmp_path / "real.py").write_text("")
        assert [p.name for p in discover_files([tmp_path])] == ["real.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_files([tmp_path / "nope"])


class TestModuleNaming:
    def test_package_module(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "x.py").write_text("")
        assert (
            module_name_for(pkg / "x.py", "repro") == "repro.core.x"
        )

    def test_init_keeps_explicit_suffix(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        assert module_name_for(pkg / "__init__.py", "repro") == "repro.__init__"

    def test_outside_package_is_none(self, tmp_path):
        (tmp_path / "bench.py").write_text("")
        assert module_name_for(tmp_path / "bench.py", "repro") is None


class TestSuppressions:
    def run(self, tmp_path, code):
        path = tmp_path / "mod.py"
        path.write_text(code)
        return run_lint([path], checker_names=["hygiene"], base_dir=tmp_path)

    def test_line_suppression(self, tmp_path):
        result = self.run(
            tmp_path,
            "def f(xs=[]):  # repro-lint: disable=H001\n    return xs\n",
        )
        assert result.findings == []
        assert result.suppression_directives == 1

    def test_trailing_justification_does_not_leak(self, tmp_path):
        result = self.run(
            tmp_path,
            "def f(xs=[]):  # repro-lint: disable=H001  shared sentinel\n"
            "    return xs\n",
        )
        assert result.findings == []

    def test_other_rule_suppression_does_not_apply(self, tmp_path):
        result = self.run(
            tmp_path,
            "def f(xs=[]):  # repro-lint: disable=N001\n    return xs\n",
        )
        assert [f.rule_id for f in result.findings] == ["H001"]

    def test_disable_all(self, tmp_path):
        result = self.run(
            tmp_path,
            "def f(xs=[], ys={}):  # repro-lint: disable=all\n    return xs\n",
        )
        assert result.findings == []

    def test_file_wide_suppression(self, tmp_path):
        result = self.run(
            tmp_path,
            "# repro-lint: disable-file=H001\n"
            "def f(xs=[]):\n    return xs\n"
            "def g(ys={}):\n    return ys\n",
        )
        assert result.findings == []


class TestParseErrors:
    def test_syntax_error_becomes_e001(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = run_lint([path], base_dir=tmp_path)
        assert [f.rule_id for f in result.findings] == ["E001"]
        assert result.exit_code == 1


class TestBaseline:
    def make_finding(self, line_text="x = 0.0", rule="N003"):
        return Finding(
            rule_id=rule,
            path="src/mod.py",
            line=3,
            column=0,
            message="msg",
            severity=Severity.WARNING,
            checker="numeric",
            line_text=line_text,
        )

    def test_round_trip_and_split(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        old = self.make_finding()
        Baseline.write(baseline_path, [old])
        baseline = Baseline.load(baseline_path)
        fresh = self.make_finding(line_text="y = 1.0")
        new, baselined, stale = baseline.split([old, fresh])
        assert new == [fresh]
        assert baselined == [old]
        assert stale == []

    def test_stale_entries_surface(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, [self.make_finding()])
        baseline = Baseline.load(baseline_path)
        new, baselined, stale = baseline.split([])
        assert new == [] and baselined == []
        assert len(stale) == 1

    def test_fingerprint_survives_line_drift(self):
        a = self.make_finding()
        moved = Finding(
            rule_id=a.rule_id,
            path=a.path,
            line=99,
            column=4,
            message="different msg",
            severity=a.severity,
            checker=a.checker,
            line_text=a.line_text,
        )
        assert a.fingerprint == moved.fingerprint

    def test_fingerprint_distinguishes_duplicate_lines(self, tmp_path):
        path = tmp_path / "dup.py"
        path.write_text("a_bytes = 0.0\nb = 1\na_bytes = 0.0\n")
        result = run_lint([path], checker_names=["numeric"], base_dir=tmp_path)
        prints = [f.fingerprint for f in result.findings]
        assert len(prints) == 2 and len(set(prints)) == 2

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_default_path_sits_next_to_pyproject(self):
        repo = Path(__file__).parent.parent
        assert (
            default_baseline_path(repo / "src" / "repro")
            == repo / ".repro-lint-baseline.json"
        )

    def test_committed_baseline_is_empty(self):
        repo = Path(__file__).parent.parent
        baseline = Baseline.load(repo / ".repro-lint-baseline.json")
        assert baseline.entries == {}


class TestReporters:
    @pytest.fixture()
    def result(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f(xs=[]):\n    return xs\n")
        return run_lint([path], base_dir=tmp_path)

    def test_text_report_lists_findings_and_summary(self, result):
        text = render_text(result, [])
        assert "mod.py:1:" in text
        assert "H001" in text
        assert "1 finding" in text

    def test_json_report_round_trips(self, result):
        document = json.loads(render_json(result, ["deadbeef"]))
        assert document["version"] == 1
        assert document["summary"]["total"] == 1
        assert document["findings"][0]["rule"] == "H001"
        assert document["stale_baseline"] == ["deadbeef"]
        assert document["exit_code"] == 1


class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = load_config()
        assert config.root_package == "repro"
        assert config.rule_enabled("D001")

    def test_pyproject_overrides(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'disable = ["H003"]\n'
            "[tool.repro-lint.layers]\n"
            "alpha = 1\nbeta = 2\n"
        )
        config = load_config(pyproject)
        assert not config.rule_enabled("H003")
        assert config.layer_ranks == {"alpha": 1, "beta": 2}

    def test_malformed_table_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\ndisable = 3\n")
        with pytest.raises(LintConfigError):
            load_config(pyproject)

    def test_select_restricts_rules(self):
        config = LintConfig(select=frozenset({"D001"}))
        assert config.rule_enabled("D001")
        assert not config.rule_enabled("H001")

    def test_repo_pyproject_carries_layer_map(self):
        repo = Path(__file__).parent.parent
        config = load_config(repo / "pyproject.toml")
        assert config.layer_ranks["trace"] < config.layer_ranks["cli"]
