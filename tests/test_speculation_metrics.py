"""Tests for the four-ratio metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.speculation import SpeculationMetrics, SpeculationRatios, compare


def metrics(**kw):
    defaults = dict(
        bytes_sent=1000.0,
        server_requests=100,
        service_time=5000.0,
        miss_bytes=800.0,
        accessed_bytes=2000.0,
    )
    defaults.update(kw)
    return SpeculationMetrics(**defaults)


class TestMetrics:
    def test_miss_rate(self):
        assert metrics().miss_rate == 0.4

    def test_miss_rate_empty(self):
        m = metrics(miss_bytes=0.0, accessed_bytes=0.0)
        assert m.miss_rate == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            metrics(bytes_sent=-1.0)


class TestCompare:
    def test_identical_runs_all_ones(self):
        ratios = compare(metrics(), metrics())
        assert ratios.bandwidth_ratio == 1.0
        assert ratios.server_load_ratio == 1.0
        assert ratios.service_time_ratio == 1.0
        assert ratios.miss_rate_ratio == 1.0
        assert ratios.traffic_increase == 0.0

    def test_typical_speculation_outcome(self):
        speculation = metrics(
            bytes_sent=1100.0,  # +10% traffic
            server_requests=65,  # -35% load
            service_time=3650.0,  # -27% time
            miss_bytes=616.0,  # miss rate 0.308 vs 0.4 -> -23%
        )
        ratios = compare(speculation, metrics())
        assert ratios.traffic_increase == pytest.approx(0.10)
        assert ratios.server_load_reduction == pytest.approx(0.35)
        assert ratios.service_time_reduction == pytest.approx(0.27)
        assert ratios.miss_rate_reduction == pytest.approx(0.23)

    def test_zero_denominator(self):
        base = metrics(bytes_sent=0.0)
        spec = metrics(bytes_sent=0.0)
        assert compare(spec, base).bandwidth_ratio == 1.0
        spec2 = metrics(bytes_sent=5.0)
        assert compare(spec2, base).bandwidth_ratio == float("inf")

    def test_format_mentions_all_metrics(self):
        text = compare(metrics(), metrics()).format()
        for word in ("traffic", "load", "time", "miss"):
            assert word in text


@given(
    st.floats(min_value=0.0, max_value=1e9),
    st.floats(min_value=1.0, max_value=1e9),
)
def test_ratio_reduction_duality(spec_bytes, base_bytes):
    speculation = metrics(bytes_sent=spec_bytes)
    baseline = metrics(bytes_sent=base_bytes)
    ratios = compare(speculation, baseline)
    assert ratios.traffic_increase == pytest.approx(ratios.bandwidth_ratio - 1.0)
