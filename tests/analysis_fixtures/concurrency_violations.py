"""Fixture: every async-interleaving rule (A001-A003) should fire."""

import asyncio


class Holdings:
    def __init__(self):
        self._entries = {"a": 1}

    async def flush(self, victim):
        await asyncio.sleep(0)

    async def evict(self):
        victim = min(self._entries)  # read
        await self.flush(victim)  # suspension point
        self._entries.pop(victim)  # A001: write from the stale read

    async def restock(self):
        snapshot = dict(self._entries)
        await asyncio.sleep(0)
        self._entries = snapshot  # A001: plain assign from stale snapshot


async def tick():
    await asyncio.sleep(0)


async def forgets_await():
    tick()  # A002: coroutine called, never awaited
    asyncio.sleep(1)  # A002: asyncio coroutine, never awaited


async def drops_task(loop):
    loop.create_task(tick())  # A003: task handle dropped
