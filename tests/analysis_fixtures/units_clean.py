"""Fixture: unit-respecting clock and byte arithmetic; no U-rule fires."""

import time


def wall_elapsed():
    started = time.perf_counter()
    return time.perf_counter() - started  # wall with wall: fine


def virtual_deadline(loop, timeout):
    return loop.time() + timeout  # virtual with unitless scalar: fine


def eta(loop, body_bytes, bandwidth):
    # Rate division is the unit boundary: bytes / (bytes/second)
    # yields seconds, addable to virtual time.
    return loop.time() + body_bytes / bandwidth


def throughput(total_bytes, elapsed):
    return total_bytes / elapsed  # conversion, not addition


def budget_left(budget_bytes, used_bytes):
    return budget_bytes - used_bytes  # bytes with bytes: fine
