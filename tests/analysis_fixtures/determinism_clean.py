"""Fixture: seeded, clock-free code the determinism checker accepts."""

import time

import numpy as np


def seeded_pipeline(seed: int, rng: np.random.Generator | None = None):
    if rng is None:
        rng = np.random.default_rng(seed)
    child = np.random.default_rng(np.random.SeedSequence(seed))
    elapsed_start = time.perf_counter()  # measurement, not simulation time
    draw = rng.random()
    return child, draw, time.perf_counter() - elapsed_start
