"""Fixture: hygienic code the API-hygiene checker accepts."""


class SimulationError(Exception):
    pass


def immutable_defaults(history=None, limit=10, label="run", factor=(1, 2)):
    if history is None:
        history = []
    history.append(limit)
    return history, label, factor


def narrow_handler(simulate):
    try:
        return simulate()
    except SimulationError:
        return None


def broad_but_reraises(simulate, log):
    try:
        return simulate()
    except Exception as error:
        log(error)
        raise


def no_shadowing(items, key):
    doc_id = 7
    return [key(item) for item in items], doc_id
