"""Fixture: every API-hygiene rule (H001-H003) should fire here."""


def mutable_defaults(history=[], cache={}, seen=set(), order=list()):  # H001 x4
    history.append(len(cache) + len(seen) + len(order))
    return history


def swallows_everything(simulate):
    try:
        return simulate()
    except Exception:  # H002: swallowed
        return None


def swallows_bare(simulate):
    try:
        return simulate()
    except:  # H002: bare
        return None


def shadowing(list, sum):  # H003 x2
    id = 7  # H003
    return list, sum, id
