"""Fixture: every determinism rule (D001-D004) should fire on this file."""

import random  # D001
import time
from datetime import datetime

import numpy as np
from random import shuffle  # D001


def unseeded_everything(items):
    rng = np.random.default_rng()  # D003
    np.random.seed(42)  # D002
    values = np.random.rand(3)  # D002
    shuffle(items)
    started = time.time()  # D004
    stamp = datetime.now()  # D004
    tick = time.monotonic()  # D004 (only transport modules may)
    choice = random.choice(items)
    return rng, values, started, stamp, tick, choice
