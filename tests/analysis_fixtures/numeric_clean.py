"""Fixture: guarded, clamped, integer-counted code the numeric checker accepts."""

import math


def guarded_ratios(requests, weights):
    if not requests:
        return 0.0, []
    mean_size = sum(r.size for r in requests) / len(requests)
    total = sum(weights)
    normalised = [w / total for w in weights] if sum(weights) else []
    safe = len(requests) / max(1, len(weights))
    return mean_size, normalised, safe


def clamped_closure(count, base, neg_log):
    probability = min(1.0, count / base)
    hit_prob = min(1.0, math.exp(-neg_log))
    copied_probability = probability
    return probability, hit_prob, copied_probability


def exact_accounting(scale):
    total_bytes = 0
    bytes_sent = 0
    window_bytes = 0.0  # repro-lint: disable=N003  fractional by design
    return total_bytes, bytes_sent, window_bytes * scale
