"""Higher layer importing a lower layer: allowed by the DAG."""

from ..trace import records

FORMAT = records.TRACE_FORMAT
