"""Bottom layer: no intra-package imports."""

TRACE_FORMAT = "clf"
