"""A package with no rank in the layer map (L003)."""

from ..trace import records

FORMAT = records.TRACE_FORMAT
