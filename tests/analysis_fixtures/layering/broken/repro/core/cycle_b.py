"""Other half of the import cycle (L002)."""

from .cycle_a import A

B = ("b", A)
