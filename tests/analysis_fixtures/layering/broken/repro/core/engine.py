"""Core module referenced by the upward importer."""

READY = True
