"""Half of an intra-package import cycle (L002)."""

from .cycle_b import B

A = ("a", B)
