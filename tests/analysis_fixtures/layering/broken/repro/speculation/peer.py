"""Sideways import between peer layers (L001): the two protocols
(speculation / dissemination) must stay independent."""

from ..dissemination import push

PUSH = push
