"""Upward import: the bottom layer must not know about core (L001)."""

from ..core import engine

ENGINE = engine
