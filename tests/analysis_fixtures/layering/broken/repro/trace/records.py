"""Bottom-layer module (import target for the unranked package)."""

TRACE_FORMAT = "clf"
