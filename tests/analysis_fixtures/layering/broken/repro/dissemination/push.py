"""Peer-layer module imported sideways by speculation.peer."""

def push():
    return "pushed"
