"""Fixture: interleaving-safe async code; no A-rule should fire."""

import asyncio


class Holdings:
    def __init__(self):
        self._entries = {"a": 1}
        self._task = None

    async def flush(self):
        await asyncio.sleep(0)

    async def evict(self):
        await self.flush()
        victim = min(self._entries)  # re-read *after* the await
        self._entries.pop(victim)

    async def reset(self):
        if self._entries:  # guard-only read: no value dependence
            await self.flush()
            self._entries = {}

    async def start(self, loop):
        self._task = loop.create_task(self.flush())  # handle stored

    async def scoped(self):
        async with asyncio.TaskGroup() as tg:
            tg.create_task(self.flush())  # TaskGroup owns its tasks


def sync_helper():
    return 1


async def well_behaved():
    await tick()
    sync_helper()  # bare sync call: fine
    unknown_callable()  # unknown name: not flagged


async def tick():
    await asyncio.sleep(0)
