"""Fixture: both unit-mixing rules (U001-U002) should fire here."""

import time


class Probe:
    def __init__(self, loop):
        self._loop = loop

    def skew(self):
        started = time.perf_counter()
        now = self._loop.time()
        return now - started  # U001: virtual minus wall


def deadline(loop, body_bytes):
    return loop.time() + body_bytes  # U002: bytes added to virtual seconds


def overdue(loop, sent_bytes):
    return sent_bytes > loop.time()  # U002: bytes compared to virtual time
