"""Fixture: stream-respecting RNG plumbing; no R-rule should fire."""

import numpy as np


def make_streams(seed):
    # Anonymous generators take the stream of the role they are bound
    # to -- the binding *is* the declaration.
    fault_rng = np.random.default_rng(seed)
    retry_rng = np.random.default_rng(seed + 1)
    return fault_rng, retry_rng


def schedule_retry(retry_rng):
    # The `delay` sink expects the retry stream and gets it.
    return delay(retry_rng)


def consume_backoff(retry_rng):
    return retry_rng.random()


def forward(rng):
    return consume_backoff(rng)


def caller(retry_rng):
    # Crosses one forwarding function into a retry-role parameter with
    # a retry-stream generator: consistent, no finding.
    return forward(retry_rng)


def draw(fault_rng, size):
    # Non-sink, role-consistent use.
    return fault_rng.integers(0, size)
