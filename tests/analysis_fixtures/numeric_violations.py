"""Fixture: every numeric-safety rule (N001-N003) should fire here."""


def ratios(requests, weights):
    mean_size = sum(r.size for r in requests) / len(requests)  # N001
    normalised = [w / sum(weights) for w in weights]  # N001
    return mean_size, normalised


def closure(count, base, neg_log):
    import math

    probability = count / base  # N002
    hit_prob = math.exp(-neg_log)  # N002
    return probability, hit_prob


def accounting():
    total_bytes = 0.0  # N003
    bytes_sent = 0.0  # N003
    return total_bytes, bytes_sent
