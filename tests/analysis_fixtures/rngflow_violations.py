"""Fixture: every RNG stream-separation rule (R001-R003) should fire."""

import numpy as np


def schedule_retry(jitter_rng):
    # R001: the `delay` sink is declared retry-stream; jitter_rng
    # carries the network stream by role.
    return delay(jitter_rng)


def wire_streams(fault_rng):
    jitter_rng = fault_rng  # R002: faults generator bound to network role
    return jitter_rng


def make_backoff(seed):
    retry_rng = np.random.default_rng(seed)
    return retry_rng


def consume_backoff(retry_rng):
    return retry_rng.random()


def forward(rng):
    return consume_backoff(rng)


def couple(workload_rng):
    # R003: `forward`'s parameter is inferred (via its call into
    # consume_backoff's role-named parameter) to expect the retry
    # stream; workload_rng carries the workload stream.
    return forward(workload_rng)
