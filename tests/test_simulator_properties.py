"""Property-based invariants of the speculative-service simulator.

Random small traces and dependency models are generated with
hypothesis; the invariants below must hold for *every* workload, not
just the calibrated ones.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.config import BaselineConfig
from repro.speculation import (
    DependencyModel,
    SpeculativeServiceSimulator,
    ThresholdPolicy,
    make_cache_factory,
)
from repro.trace import Document, Request, Trace

CONFIG = BaselineConfig(comm_cost=1.0, serv_cost=50.0)

DOC_IDS = ["/a", "/b", "/c", "/d", "/e"]
SIZES = {doc: 100 * (index + 1) for index, doc in enumerate(DOC_IDS)}
DOCS = [Document(doc_id=d, size=s) for d, s in SIZES.items()]


@st.composite
def traces(draw):
    """A small random multi-client trace."""
    entries = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=5000, allow_nan=False),
                st.sampled_from(["x", "y", "z"]),
                st.sampled_from(DOC_IDS),
            ),
            min_size=1,
            max_size=40,
        )
    )
    requests = [
        Request(timestamp=t, client=c, doc_id=d, size=SIZES[d])
        for t, c, d in entries
    ]
    return Trace(requests, DOCS, sort=True)


@st.composite
def models(draw):
    """A small random (valid) dependency model."""
    occurrences = {doc: 10.0 for doc in DOC_IDS}
    pairs = {}
    for source in DOC_IDS:
        row = draw(
            st.dictionaries(
                st.sampled_from([d for d in DOC_IDS if d != source]),
                st.floats(min_value=0.0, max_value=10.0),
                max_size=3,
            )
        )
        if row:
            pairs[source] = row
    return DependencyModel.from_counts(pairs, occurrences)


@given(traces(), models(), st.sampled_from([0.9, 0.5, 0.2, 0.05]))
@settings(max_examples=60, deadline=None)
def test_conservation_and_bounds(trace, model, threshold):
    sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
    baseline = sim.run(None)
    run = sim.run(ThresholdPolicy(threshold=threshold))
    m = run.metrics

    # Bytes conservation: everything sent is a demand miss or a push.
    assert math.isclose(m.bytes_sent, m.miss_bytes + m.speculated_bytes)
    # Waste never exceeds what was pushed.
    assert m.wasted_bytes <= m.speculated_bytes + 1e-9
    # Server answers at most one request per access.
    assert m.server_requests <= run.accesses
    assert m.server_requests + run.cache_hits == run.accesses
    # Misses are a subset of accesses byte-wise.
    assert m.miss_bytes <= m.accessed_bytes + 1e-9
    # Accessed bytes are workload-determined, identical across runs.
    assert m.accessed_bytes == baseline.metrics.accessed_bytes
    # Speculation can only remove server requests, never add them.
    assert m.server_requests <= baseline.metrics.server_requests
    # ...and can only add bytes, never remove them.
    assert m.bytes_sent >= baseline.metrics.bytes_sent - 1e-9
    # Service time is ServCost+CommCost accounting over misses exactly.
    assert math.isclose(
        m.service_time,
        CONFIG.serv_cost * m.server_requests + CONFIG.comm_cost * m.miss_bytes,
    )


@given(traces(), models(), st.sampled_from([0.5, 0.1]))
@settings(max_examples=40, deadline=None)
def test_cooperation_dominates_bandwidth(trace, model, threshold):
    sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
    plain = sim.run(ThresholdPolicy(threshold=threshold))
    cooperative = sim.run(ThresholdPolicy(threshold=threshold), cooperative=True)
    # Cooperation never sends more bytes and never loses cache hits.
    assert cooperative.metrics.bytes_sent <= plain.metrics.bytes_sent + 1e-9
    assert cooperative.cache_hits == plain.cache_hits
    assert (
        cooperative.metrics.server_requests == plain.metrics.server_requests
    )


@given(traces(), models())
@settings(max_examples=40, deadline=None)
def test_threshold_monotonicity_at_policy_level(trace, model):
    """A looser threshold *proposes* a superset per request.

    Note the end-to-end run is NOT monotone in the threshold: a pushed
    document that turns a later request into a cache hit suppresses
    that request's own speculation trigger, so a looser run can
    legitimately send fewer bytes overall (hypothesis found this).
    The guaranteed property lives at the policy level.
    """
    catalog = trace.documents
    strict_policy = ThresholdPolicy(threshold=0.8)
    loose_policy = ThresholdPolicy(threshold=0.1)
    for doc_id in {r.doc_id for r in trace}:
        strict_set = {c.doc_id for c in strict_policy.select(doc_id, model, catalog)}
        loose_set = {c.doc_id for c in loose_policy.select(doc_id, model, catalog)}
        assert strict_set <= loose_set


@given(traces(), models())
@settings(max_examples=40, deadline=None)
def test_no_cache_degenerate(trace, model):
    """Without a cache, speculation changes bytes but nothing else."""
    sim = SpeculativeServiceSimulator(trace, CONFIG, model=model)
    factory = make_cache_factory(0.0)
    baseline = sim.run(None, cache_factory=factory)
    speculation = sim.run(
        ThresholdPolicy(threshold=0.2), cache_factory=factory
    )
    assert speculation.metrics.server_requests == baseline.metrics.server_requests
    assert speculation.metrics.miss_bytes == baseline.metrics.miss_bytes
    assert speculation.cache_hits == baseline.cache_hits == 0
    # Every pushed byte is wasted.
    assert math.isclose(
        speculation.metrics.wasted_bytes, speculation.metrics.speculated_bytes
    )


@given(traces())
@settings(max_examples=30, deadline=None)
def test_infinite_cache_never_refetches(trace):
    """With SessionTimeout=∞ each (client, doc) is fetched at most once."""
    sim = SpeculativeServiceSimulator(
        trace, CONFIG, model=DependencyModel.from_counts({}, {})
    )
    run = sim.run(None)
    distinct_pairs = len({(r.client, r.doc_id) for r in trace})
    assert run.metrics.server_requests == distinct_pairs
