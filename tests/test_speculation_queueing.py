"""Tests for the M/M/1 queueing view of server load."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.speculation import (
    MM1Server,
    SpeculationRatios,
    capacity_headroom,
    latency_impact,
)


def ratios(load_ratio):
    return SpeculationRatios(
        bandwidth_ratio=1.1,
        server_load_ratio=load_ratio,
        service_time_ratio=load_ratio,
        miss_rate_ratio=load_ratio,
    )


class TestMM1Server:
    def test_utilization(self):
        assert MM1Server(capacity=100.0).utilization(50.0) == 0.5

    def test_response_time(self):
        server = MM1Server(capacity=10.0)
        assert server.response_time(0.0) == pytest.approx(0.1)
        assert server.response_time(5.0) == pytest.approx(0.2)

    def test_saturation_infinite(self):
        server = MM1Server(capacity=10.0)
        assert math.isinf(server.response_time(10.0))
        assert math.isinf(server.response_time(20.0))

    def test_response_time_monotone(self):
        server = MM1Server(capacity=10.0)
        times = [server.response_time(rate) for rate in (0.0, 3.0, 6.0, 9.0)]
        assert times == sorted(times)

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            MM1Server(capacity=0.0)

    def test_negative_rate(self):
        with pytest.raises(SimulationError):
            MM1Server(capacity=10.0).response_time(-1.0)


class TestLatencyImpact:
    def test_load_reduction_speeds_up(self):
        server = MM1Server(capacity=100.0)
        impact = latency_impact(server, ratios(0.65), arrival_rate=90.0)
        assert impact.speculative_response < impact.baseline_response
        assert impact.speedup > 1.0

    def test_speedup_grows_with_utilization(self):
        """The hotter the server, the more a 35% load cut is worth."""
        server = MM1Server(capacity=100.0)
        cool = latency_impact(server, ratios(0.65), arrival_rate=30.0)
        hot = latency_impact(server, ratios(0.65), arrival_rate=95.0)
        assert hot.speedup > cool.speedup

    def test_rescue_from_saturation(self):
        server = MM1Server(capacity=100.0)
        impact = latency_impact(server, ratios(0.65), arrival_rate=120.0)
        assert math.isinf(impact.baseline_response)
        assert not math.isinf(impact.speculative_response)
        assert impact.speedup == math.inf

    def test_no_reduction_no_speedup(self):
        server = MM1Server(capacity=100.0)
        impact = latency_impact(server, ratios(1.0), arrival_rate=50.0)
        assert impact.speedup == pytest.approx(1.0)


class TestHeadroom:
    def test_headroom_formula(self):
        server = MM1Server(capacity=100.0)
        assert capacity_headroom(server, ratios(0.5), 50.0) == pytest.approx(4.0)

    def test_no_speculation_headroom(self):
        server = MM1Server(capacity=100.0)
        assert capacity_headroom(server, ratios(1.0), 50.0) == pytest.approx(2.0)

    def test_invalid_rate(self):
        with pytest.raises(SimulationError):
            capacity_headroom(MM1Server(100.0), ratios(0.5), 0.0)

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=1.0, max_value=99.0),
    )
    @settings(max_examples=40)
    def test_headroom_inverse_in_load_ratio(self, load_ratio, rate):
        """Halving the load ratio doubles the headroom."""
        server = MM1Server(capacity=100.0)
        full = capacity_headroom(server, ratios(load_ratio), rate)
        half = capacity_headroom(server, ratios(load_ratio / 2), rate)
        assert half == pytest.approx(2 * full)
