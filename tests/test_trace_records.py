"""Tests for repro.trace.records."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceFormatError
from repro.trace import Document, Request, Trace


def make_request(t=0.0, client="c1", doc="/a", size=100, **kw):
    return Request(timestamp=t, client=client, doc_id=doc, size=size, **kw)


class TestDocument:
    def test_basic_construction(self):
        doc = Document(doc_id="/a.html", size=1000)
        assert doc.kind == "page"
        assert not doc.mutable

    def test_empty_id_rejected(self):
        with pytest.raises(TraceFormatError):
            Document(doc_id="", size=10)

    def test_negative_size_rejected(self):
        with pytest.raises(TraceFormatError):
            Document(doc_id="/a", size=-1)

    def test_zero_size_allowed(self):
        assert Document(doc_id="/a", size=0).size == 0


class TestRequest:
    def test_defaults(self):
        r = make_request()
        assert r.status == 200
        assert r.method == "GET"
        assert r.remote
        assert r.ok

    def test_not_ok_on_404(self):
        assert not make_request(status=404).ok

    def test_304_is_ok(self):
        assert make_request(status=304).ok

    def test_empty_client_rejected(self):
        with pytest.raises(TraceFormatError):
            Request(timestamp=0, client="", doc_id="/a", size=1)

    def test_negative_size_rejected(self):
        with pytest.raises(TraceFormatError):
            make_request(size=-5)


class TestTraceConstruction:
    def test_ordered_accepted(self):
        trace = Trace([make_request(t=1.0), make_request(t=2.0)])
        assert len(trace) == 2

    def test_unordered_rejected_without_sort(self):
        with pytest.raises(TraceFormatError):
            Trace([make_request(t=2.0), make_request(t=1.0)])

    def test_unordered_sorted_with_flag(self):
        trace = Trace([make_request(t=2.0), make_request(t=1.0)], sort=True)
        assert [r.timestamp for r in trace] == [1.0, 2.0]

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.total_bytes() == 0

    def test_catalog_synthesised_from_requests(self):
        trace = Trace([make_request(doc="/x", size=123)])
        assert trace.document_size("/x") == 123

    def test_catalog_keeps_largest_observed_size(self):
        trace = Trace(
            [make_request(t=0, doc="/x", size=50), make_request(t=1, doc="/x", size=99)]
        )
        assert trace.document_size("/x") == 99

    def test_explicit_catalog_preserved(self):
        doc = Document(doc_id="/x", size=500, kind="embedded", mutable=True)
        trace = Trace([make_request(doc="/x", size=100)], [doc])
        assert trace.documents["/x"].size == 500
        assert trace.documents["/x"].kind == "embedded"
        assert trace.documents["/x"].mutable

    def test_unknown_document_raises(self):
        trace = Trace([make_request(doc="/x")])
        with pytest.raises(TraceFormatError):
            trace.document_size("/missing")


class TestTraceDerivation:
    def _trace(self):
        return Trace(
            [
                make_request(t=0.0, client="a", doc="/1", size=10),
                make_request(t=5.0, client="b", doc="/2", size=20, remote=False),
                make_request(t=10.0, client="a", doc="/3", size=30),
                make_request(t=15.0, client="b", doc="/1", size=10),
            ]
        )

    def test_window_half_open(self):
        trace = self._trace()
        window = trace.window(5.0, 15.0)
        assert [r.timestamp for r in window] == [5.0, 10.0]

    def test_window_preserves_catalog_sizes(self):
        trace = self._trace()
        window = trace.window(0.0, 6.0)
        assert window.document_size("/2") == 20

    def test_remote_only(self):
        remote = self._trace().remote_only()
        assert all(r.remote for r in remote)
        assert len(remote) == 3

    def test_by_client_preserves_order(self):
        groups = self._trace().by_client()
        assert [r.timestamp for r in groups["a"]] == [0.0, 10.0]
        assert [r.timestamp for r in groups["b"]] == [5.0, 15.0]

    def test_clients(self):
        assert self._trace().clients() == {"a", "b"}

    def test_total_bytes(self):
        assert self._trace().total_bytes() == 70

    def test_filter(self):
        big = self._trace().filter(lambda r: r.size >= 20)
        assert len(big) == 2


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["/1", "/2", "/3"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=50,
    )
)
def test_trace_sort_invariants(entries):
    """Sorted ingest always yields a monotone, length-preserving trace."""
    requests = [
        Request(timestamp=t, client=c, doc_id=d, size=s) for t, c, d, s in entries
    ]
    trace = Trace(requests, sort=True)
    assert len(trace) == len(requests)
    times = [r.timestamp for r in trace]
    assert times == sorted(times)
    # Windowing the full span loses nothing.
    if times:
        full = trace.window(times[0], times[-1] + 1.0)
        assert len(full) == len(trace)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30))
def test_catalog_size_is_max_observed(sizes):
    requests = [
        Request(timestamp=float(i), client="c", doc_id="/d", size=s)
        for i, s in enumerate(sizes)
    ]
    trace = Trace(requests)
    assert trace.document_size("/d") == max(sizes)


class TestMerge:
    def test_merge_sorts_across_traces(self):
        a = Trace([make_request(t=5.0, doc="/a")])
        b = Trace([make_request(t=1.0, doc="/b"), make_request(t=9.0, doc="/c")])
        merged = Trace.merge([a, b])
        assert [r.timestamp for r in merged] == [1.0, 5.0, 9.0]
        assert len(merged.documents) == 3

    def test_merge_empty(self):
        assert len(Trace.merge([])) == 0

    def test_merge_keeps_largest_catalog_size(self):
        a = Trace([make_request(t=0.0, doc="/x", size=10)])
        b = Trace([make_request(t=1.0, doc="/x", size=99)])
        merged = Trace.merge([a, b])
        assert merged.document_size("/x") == 99

    def test_merge_preserves_metadata(self):
        doc = Document(doc_id="/m", size=50, kind="embedded", mutable=True)
        a = Trace([make_request(t=0.0, doc="/m", size=50)], [doc])
        merged = Trace.merge([a, Trace([])])
        assert merged.documents["/m"].mutable


class TestCatalogCollisions:
    """Regression: colliding explicit catalog ids kept the last entry.

    The old constructor built the catalog with a dict comprehension, so
    a later, smaller duplicate silently replaced an earlier, larger one
    — and disagreed with merge(), which keeps the max size. Both paths
    now keep the largest entry.
    """

    def test_explicit_duplicates_keep_max_size(self):
        documents = [
            Document(doc_id="/x", size=500),
            Document(doc_id="/x", size=100),
        ]
        trace = Trace([make_request(doc="/x", size=100)], documents)
        assert trace.documents["/x"].size == 500

    def test_order_independent(self):
        big_first = Trace(
            [make_request(doc="/x")],
            [Document("/x", 500), Document("/x", 100)],
        )
        big_last = Trace(
            [make_request(doc="/x")],
            [Document("/x", 100), Document("/x", 500)],
        )
        assert (
            big_first.documents["/x"].size
            == big_last.documents["/x"].size
            == 500
        )

    def test_agrees_with_merge(self):
        left = Trace([make_request(t=0, doc="/x")], [Document("/x", 500)])
        right = Trace([make_request(t=1, doc="/x")], [Document("/x", 100)])
        merged = Trace.merge([left, right])
        concatenated = Trace(
            list(left) + list(right),
            [Document("/x", 500), Document("/x", 100)],
        )
        assert (
            merged.documents["/x"].size
            == concatenated.documents["/x"].size
        )
