"""Bit-identity of the vectorized columnar replay engine.

The columnar engine (:mod:`repro.speculation.columnar`) replays the
whole trace as numpy column passes; every run here is compared to the
specialized event loop *and* the general loop with exact ``==`` — the
engines must return identical metrics, not merely close ones.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BASELINE
from repro.errors import SimulationError
from repro.speculation.caches import make_cache_factory
from repro.speculation.dependency import DependencyModel
from repro.speculation.policies import (
    EmbeddingOnlyPolicy,
    ThresholdPolicy,
    TopKPolicy,
)
from repro.speculation.simulator import SpeculativeServiceSimulator
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


@functools.lru_cache(maxsize=8)
def _trace(seed: int):
    config = GeneratorConfig(
        seed=seed, n_pages=24, n_clients=12, n_sessions=80, duration_days=4
    )
    return SyntheticTraceGenerator(config).generate()


@functools.lru_cache(maxsize=8)
def _sparse_model(seed: int) -> DependencyModel:
    return DependencyModel.estimate(_trace(seed), window=5.0, backend="sparse")


def _policy(kind: str, parameter: float):
    if kind == "threshold":
        return ThresholdPolicy(threshold=parameter)
    if kind == "topk":
        return TopKPolicy(k=max(1, int(parameter * 8)), min_probability=0.05)
    if kind == "embedding":
        return EmbeddingOnlyPolicy(tolerance=min(parameter, 0.9))
    assert kind == "baseline"
    return None


class TestColumnarParity:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        kind=st.sampled_from(["baseline", "threshold", "topk", "embedding"]),
        parameter=st.floats(min_value=0.05, max_value=0.9),
    )
    def test_columnar_matches_event_and_general(self, seed, kind, parameter):
        policy = _policy(kind, parameter)
        sim = SpeculativeServiceSimulator(
            _trace(seed), BASELINE, model=_sparse_model(seed)
        )
        columnar = sim.run(policy, replay="columnar")
        event = sim.run(policy, replay="event")
        # An explicit cache_factory (same semantics) escapes the fast
        # path entirely, so this run exercises the general loop.
        general = sim.run(
            policy,
            cache_factory=make_cache_factory(BASELINE.session_timeout),
        )
        assert columnar.metrics == event.metrics
        assert columnar.metrics == general.metrics
        assert columnar.accesses == event.accesses == general.accesses
        assert columnar.cache_hits == event.cache_hits == general.cache_hits

    def test_auto_dispatch_equals_forced_columnar(self):
        sim = SpeculativeServiceSimulator(
            _trace(0), BASELINE, model=_sparse_model(0)
        )
        policy = ThresholdPolicy(threshold=0.25)
        assert sim.run(policy) == sim.run(policy, replay="columnar")
        assert sim.run() == sim.run(replay="columnar")


class TestReplaySelection:
    def test_event_escape_hatch_never_enters_columnar(self, monkeypatch):
        import repro.speculation.columnar as columnar_module

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("columnar engine entered despite escape hatch")

        monkeypatch.setattr(columnar_module, "replay_columnar", _boom)
        sim = SpeculativeServiceSimulator(
            _trace(1), BASELINE, model=_sparse_model(1)
        )
        run = sim.run(ThresholdPolicy(threshold=0.25), replay="event")
        assert run.accesses > 0

    def test_columnar_requires_sparse_model(self):
        dict_model = DependencyModel.estimate(
            _trace(0), window=5.0, backend="dict"
        )
        sim = SpeculativeServiceSimulator(_trace(0), BASELINE, model=dict_model)
        with pytest.raises(SimulationError, match="fast-path"):
            sim.run(ThresholdPolicy(threshold=0.25), replay="columnar")

    def test_columnar_rejects_cooperative_mode(self):
        sim = SpeculativeServiceSimulator(
            _trace(0), BASELINE, model=_sparse_model(0)
        )
        with pytest.raises(SimulationError, match="fast-path"):
            sim.run(
                ThresholdPolicy(threshold=0.25),
                cooperative=True,
                replay="columnar",
            )

    def test_unknown_replay_mode_rejected(self):
        sim = SpeculativeServiceSimulator(
            _trace(0), BASELINE, model=_sparse_model(0)
        )
        with pytest.raises(SimulationError, match="replay mode"):
            sim.run(replay="warp")
