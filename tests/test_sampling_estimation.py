"""Horvitz-Thompson ratio estimation from client samples."""

import numpy as np
import pytest

from repro.config import BASELINE
from repro.core import Experiment
from repro.core.sampling import (
    client_contributions,
    estimate_ratios,
    execute_sample_check,
    sample_check_workload,
)
from repro.errors import RuntimeProtocolError, TraceFormatError
from repro.speculation import DependencyModel, ThresholdPolicy
from repro.trace import Trace
from repro.trace.sampling import (
    RATIO_NAMES,
    RatioEstimate,
    SampledRatioReport,
    SamplingConfig,
    ht_ratio_estimates,
)
from repro.workload import GeneratorConfig, SyntheticTraceGenerator

WORKLOAD = GeneratorConfig(
    seed=5, n_pages=80, n_clients=120, n_sessions=900, duration_days=12
)


@pytest.fixture(scope="module")
def trace():
    return SyntheticTraceGenerator(WORKLOAD).generate().remote_only()


@pytest.fixture(scope="module")
def arms(trace):
    """Per-client contribution arrays for the test half of the trace."""
    from repro.core.experiment import train_test_split

    train, test = train_test_split(trace, 6.0)
    model = DependencyModel.estimate(
        train, window=BASELINE.stride_timeout, backend="sparse"
    )
    policy = ThresholdPolicy(
        threshold=BASELINE.threshold, max_size=BASELINE.max_size
    )
    clients, spec, base = client_contributions(
        test, config=BASELINE, model=model, policy=policy
    )
    return test, model, policy, clients, spec, base


class TestSamplingConfig:
    def test_defaults(self):
        config = SamplingConfig()
        assert config.fraction == 0.05
        assert config.n_boot == 400
        assert config.level == 0.95

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"n_boot": 0},
            {"level": 0.0},
            {"level": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TraceFormatError):
            SamplingConfig(**kwargs)


class TestRatioEstimate:
    def test_covers(self):
        estimate = RatioEstimate(value=1.0, low=0.8, high=1.2)
        assert estimate.covers(1.0)
        assert estimate.covers(0.8)
        assert not estimate.covers(1.3)


class TestClientContributions:
    def test_sums_reproduce_combined_replay(self, arms):
        """The HT foundation: per-client totals equal the full replay."""
        test, model, policy, clients, spec, base = arms
        from repro.speculation import SpeculativeServiceSimulator

        combined_spec = SpeculativeServiceSimulator(
            test, BASELINE, model=model
        ).run(policy)
        combined_base = SpeculativeServiceSimulator(
            test, BASELINE, model=model
        ).run(None)
        expected_spec = np.array(
            [
                combined_spec.metrics.bytes_sent,
                combined_spec.metrics.server_requests,
                combined_spec.metrics.service_time,
                combined_spec.metrics.miss_bytes,
                combined_spec.metrics.accessed_bytes,
            ],
            dtype=float,
        )
        expected_base = np.array(
            [
                combined_base.metrics.bytes_sent,
                combined_base.metrics.server_requests,
                combined_base.metrics.service_time,
                combined_base.metrics.miss_bytes,
                combined_base.metrics.accessed_bytes,
            ],
            dtype=float,
        )
        assert np.allclose(spec.sum(axis=0), expected_spec)
        assert np.allclose(base.sum(axis=0), expected_base)

    def test_one_row_per_client(self, arms):
        test, _, _, clients, spec, base = arms
        assert len(clients) == len(test.clients())
        assert spec.shape == (len(clients), 5)
        assert base.shape == (len(clients), 5)


class TestHtRatioEstimates:
    def test_full_population_matches_exact(self, arms):
        """With every client included, the point estimates are exact."""
        test, model, policy, clients, spec, base = arms
        estimates = ht_ratio_estimates(spec, base, n_boot=50, seed=1)
        assert set(estimates) == set(RATIO_NAMES)
        totals_spec = spec.sum(axis=0)
        totals_base = base.sum(axis=0)
        assert estimates["bandwidth"].value == pytest.approx(
            totals_spec[0] / totals_base[0]
        )
        assert estimates["server_load"].value == pytest.approx(
            totals_spec[1] / totals_base[1]
        )

    def test_intervals_bracket_point(self, arms):
        _, _, _, _, spec, base = arms
        for estimate in ht_ratio_estimates(spec, base, n_boot=50).values():
            assert estimate.low <= estimate.value <= estimate.high

    def test_deterministic_in_seed(self, arms):
        _, _, _, _, spec, base = arms
        first = ht_ratio_estimates(spec, base, n_boot=50, seed=9)
        second = ht_ratio_estimates(spec, base, n_boot=50, seed=9)
        for name in RATIO_NAMES:
            assert first[name] == second[name]


class TestEstimateRatios:
    def test_report_shape(self, trace):
        sampling = SamplingConfig(fraction=0.2, seed=0, n_boot=100)
        report = estimate_ratios(trace, sampling, train_days=6.0)
        assert isinstance(report, SampledRatioReport)
        assert set(report.estimates) == set(RATIO_NAMES)
        assert 0 < report.n_clients <= report.n_population
        assert report.fraction == 0.2
        payload = report.to_dict()
        assert set(payload["estimates"]) == set(RATIO_NAMES)
        assert "clients" in report.format()

    def test_coverage_over_seed_sweep(self):
        """95% intervals must cover the exact replay almost always.

        Percentile-bootstrap intervals are approximate, so the gate is
        >=90% of (seed, ratio) pairs covered rather than all of them.
        """
        covered = 0
        total = 0
        for seed in range(5):
            config = sample_check_workload(seed)
            trace = SyntheticTraceGenerator(config).generate().remote_only()
            experiment = Experiment(trace, BASELINE, train_days=10.0)
            policy = ThresholdPolicy(
                threshold=BASELINE.threshold, max_size=BASELINE.max_size
            )
            ratios, _ = experiment.evaluate(policy)
            exact = {
                "bandwidth": ratios.bandwidth_ratio,
                "server_load": ratios.server_load_ratio,
                "service_time": ratios.service_time_ratio,
                "miss_rate": ratios.miss_rate_ratio,
            }
            report = estimate_ratios(
                trace,
                SamplingConfig(fraction=0.05, seed=seed, n_boot=200),
                train_days=10.0,
            )
            for name in RATIO_NAMES:
                total += 1
                if report.estimates[name].covers(exact[name]):
                    covered += 1
        assert covered / total >= 0.90


class TestSampleCheck:
    def test_seed_zero_gate_passes(self):
        """The pinned acceptance gate: seed 0, 5% sample, all covered."""
        result = execute_sample_check(0)
        assert result["coverage"] == {
            name: True for name in RATIO_NAMES
        }
        for name in RATIO_NAMES:
            estimate = result["sampled"]["estimates"][name]
            assert estimate["low"] <= result["exact"][name]
            assert result["exact"][name] <= estimate["high"]

    def test_miss_raises_protocol_error(self, monkeypatch):
        import repro.core.sampling as sampling_module

        def tight(speculative, baseline, **kwargs):
            return {
                name: RatioEstimate(value=0.0, low=0.0, high=0.0)
                for name in RATIO_NAMES
            }

        monkeypatch.setattr(sampling_module, "ht_ratio_estimates", tight)
        with pytest.raises(RuntimeProtocolError):
            execute_sample_check(0)
