"""Async-interleaving checker: A001-A003."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name):
    return run_lint(
        [FIXTURES / name],
        config=LintConfig(),
        checker_names=["concurrency"],
        base_dir=FIXTURES,
    )


class TestViolations:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_fixture("concurrency_violations.py").findings

    def test_every_rule_fires(self, findings):
        assert {f.rule_id for f in findings} == {"A001", "A002", "A003"}

    def test_lost_update_windows(self, findings):
        flagged = [f for f in findings if f.rule_id == "A001"]
        assert len(flagged) == 2  # mutator call and plain assign forms
        assert all("`self._entries`" in f.message for f in flagged)

    def test_unawaited_coroutines(self, findings):
        messages = [f.message for f in findings if f.rule_id == "A002"]
        assert len(messages) == 2
        assert any("`tick(...)`" in m for m in messages)
        assert any("`asyncio.sleep(...)`" in m for m in messages)

    def test_dropped_task_handle(self, findings):
        flagged = [f for f in findings if f.rule_id == "A003"]
        assert len(flagged) == 1


class TestCleanCode:
    def test_interleaving_safe_code_passes(self):
        assert lint_fixture("concurrency_clean.py").findings == []


class TestScanSemantics:
    """Unit-level cases for the lost-update scan."""

    def run_snippet(self, tmp_path, code):
        path = tmp_path / "snippet.py"
        path.write_text(code)
        return run_lint(
            [path], checker_names=["concurrency"], base_dir=tmp_path
        ).findings

    def test_async_for_header_counts_as_suspension(self, tmp_path):
        code = (
            "class C:\n"
            "    async def f(self, source):\n"
            "        keys = list(self.held)\n"
            "        async for _ in source:\n"
            "            pass\n"
            "        self.held = keys\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["A001"]

    def test_await_in_write_statement_itself_is_a_window(self, tmp_path):
        code = (
            "class C:\n"
            "    async def f(self):\n"
            "        self.total = self.total + await self.fetch()\n"
            "    async def fetch(self):\n"
            "        return 1\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["A001"]

    def test_dependence_tracks_through_locals(self, tmp_path):
        code = (
            "class C:\n"
            "    async def f(self):\n"
            "        first = self.queue[0]\n"
            "        chosen = first\n"
            "        await self.ship(chosen)\n"
            "        self.queue.remove(chosen)\n"
            "    async def ship(self, item):\n"
            "        pass\n"
        )
        findings = self.run_snippet(tmp_path, code)
        assert [f.rule_id for f in findings] == ["A001"]

    def test_write_before_await_is_clean(self, tmp_path):
        code = (
            "class C:\n"
            "    async def f(self):\n"
            "        item = self.queue[0]\n"
            "        self.queue.remove(item)\n"
            "        await self.ship(item)\n"
            "    async def ship(self, item):\n"
            "        pass\n"
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_unrelated_attribute_write_is_clean(self, tmp_path):
        code = (
            "class C:\n"
            "    async def f(self):\n"
            "        item = self.queue[0]\n"
            "        await self.ship(item)\n"
            "        self.last_shipped = item\n"
            "    async def ship(self, item):\n"
            "        pass\n"
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_nested_def_is_a_separate_task_context(self, tmp_path):
        code = (
            "class C:\n"
            "    async def f(self):\n"
            "        item = self.queue[0]\n"
            "        await self.ship(item)\n"
            "        def callback():\n"
            "            self.queue.remove(item)\n"
            "        return callback\n"
            "    async def ship(self, item):\n"
            "        pass\n"
        )
        assert self.run_snippet(tmp_path, code) == []

    def test_sync_async_name_collision_is_not_flagged(self, tmp_path):
        code = (
            "def helper():\n"
            "    return 1\n"
            "async def other():\n"
            "    helper()\n"
        )
        assert self.run_snippet(tmp_path, code) == []


class TestRepoConcurrency:
    def test_repo_sources_have_no_unsuppressed_windows(self):
        repo = Path(__file__).parent.parent
        result = run_lint(
            [repo / "src"], checker_names=["concurrency"], base_dir=repo
        )
        assert result.findings == []
