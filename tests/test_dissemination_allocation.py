"""Tests for proxy storage allocation (paper eqs. 1-5)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.dissemination import (
    ServerModel,
    alpha_for_allocation,
    exponential_allocation,
    greedy_document_allocation,
)
from repro.popularity import PopularityProfile
from repro.trace import Request, Trace


class TestServerModel:
    def test_coverage(self):
        s = ServerModel("s", rate=100, lam=1e-6)
        assert s.coverage(0) == 0.0
        assert s.coverage(1e6) == pytest.approx(1 - math.exp(-1))

    def test_invalid_rate(self):
        with pytest.raises(AllocationError):
            ServerModel("s", rate=-1, lam=1e-6)

    def test_invalid_lambda(self):
        with pytest.raises(AllocationError):
            ServerModel("s", rate=1, lam=0)


class TestExponentialAllocation:
    def test_budget_exhausted(self):
        servers = [
            ServerModel("a", 100, 1e-6),
            ServerModel("b", 200, 2e-6),
            ServerModel("c", 50, 5e-7),
        ]
        result = exponential_allocation(servers, 3e6)
        assert result.used == pytest.approx(3e6)

    def test_non_negative(self):
        servers = [ServerModel("a", 1000, 1e-6), ServerModel("b", 1, 1e-6)]
        result = exponential_allocation(servers, 1000.0)  # tight budget
        assert all(v >= 0 for v in result.allocations.values())

    def test_unpopular_server_pinned_to_zero(self):
        servers = [ServerModel("a", 1000, 1e-6), ServerModel("b", 1, 1e-6)]
        result = exponential_allocation(servers, 1000.0)
        assert result.allocations["b"] == 0.0
        assert result.allocations["a"] == pytest.approx(1000.0)

    def test_symmetric_cluster_even_split(self):
        """Equation 8: identical servers each get B0/n."""
        servers = [ServerModel(f"s{i}", 100, 1e-6) for i in range(5)]
        result = exponential_allocation(servers, 10e6)
        for value in result.allocations.values():
            assert value == pytest.approx(2e6)

    def test_popular_server_gets_more(self):
        servers = [ServerModel("pop", 1000, 1e-6), ServerModel("nop", 10, 1e-6)]
        result = exponential_allocation(servers, 20e6)
        assert result.allocations["pop"] > result.allocations["nop"]

    def test_zero_budget(self):
        servers = [ServerModel("a", 10, 1e-6)]
        result = exponential_allocation(servers, 0.0)
        assert result.alpha == 0.0
        assert result.used == 0.0

    def test_alpha_matches_formula(self):
        servers = [ServerModel("a", 100, 1e-6), ServerModel("b", 300, 3e-6)]
        result = exponential_allocation(servers, 5e6)
        assert result.alpha == pytest.approx(
            alpha_for_allocation(servers, result.allocations)
        )

    def test_zero_rate_server_gets_nothing(self):
        servers = [ServerModel("a", 100, 1e-6), ServerModel("dead", 0, 1e-6)]
        result = exponential_allocation(servers, 1e6)
        assert result.allocations["dead"] == 0.0
        assert result.allocations["a"] == pytest.approx(1e6)

    def test_all_zero_rate_rejected(self):
        with pytest.raises(AllocationError):
            exponential_allocation([ServerModel("a", 0, 1e-6)], 1e6)

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            exponential_allocation([], 1e6)

    def test_duplicate_names_rejected(self):
        servers = [ServerModel("a", 1, 1e-6), ServerModel("a", 2, 1e-6)]
        with pytest.raises(AllocationError):
            exponential_allocation(servers, 1e6)

    def test_negative_budget_rejected(self):
        with pytest.raises(AllocationError):
            exponential_allocation([ServerModel("a", 1, 1e-6)], -1.0)

    def test_optimality_against_perturbations(self):
        """Moving bytes between any two servers never increases alpha."""
        servers = [
            ServerModel("a", 120, 8e-7),
            ServerModel("b", 340, 2.5e-6),
            ServerModel("c", 60, 1.2e-6),
        ]
        result = exponential_allocation(servers, 4e6)
        best = result.alpha
        for i, donor in enumerate(servers):
            for j, receiver in enumerate(servers):
                if i == j:
                    continue
                delta = min(100_000.0, result.allocations[donor.name])
                perturbed = dict(result.allocations)
                perturbed[donor.name] -= delta
                perturbed[receiver.name] += delta
                assert alpha_for_allocation(servers, perturbed) <= best + 1e-12

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1e4),
                st.floats(min_value=1e-8, max_value=1e-5),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0, max_value=1e8),
    )
    def test_invariants_property(self, params, budget):
        servers = [
            ServerModel(f"s{i}", rate, lam) for i, (rate, lam) in enumerate(params)
        ]
        result = exponential_allocation(servers, budget)
        assert all(v >= 0 for v in result.allocations.values())
        assert result.used <= budget * (1 + 1e-9) + 1e-6
        assert 0.0 <= result.alpha <= 1.0


class TestGreedyDocumentAllocation:
    def _profiles(self):
        t1 = Trace(
            [
                Request(timestamp=float(i), client="c", doc_id="/hot", size=100)
                for i in range(10)
            ]
            + [Request(timestamp=20.0, client="c", doc_id="/cold", size=100)]
        )
        t2 = Trace(
            [
                Request(timestamp=float(i), client="c", doc_id="/warm", size=100)
                for i in range(5)
            ]
        )
        return {
            "s1": PopularityProfile.from_trace(t1),
            "s2": PopularityProfile.from_trace(t2),
        }

    def test_highest_density_first(self):
        result = greedy_document_allocation(self._profiles(), budget=100)
        assert result.allocations == {"s1": 100.0, "s2": 0.0}
        assert result.alpha == pytest.approx(10 / 16)

    def test_two_documents(self):
        result = greedy_document_allocation(self._profiles(), budget=200)
        assert result.allocations == {"s1": 100.0, "s2": 100.0}
        assert result.alpha == pytest.approx(15 / 16)

    def test_full_budget_covers_everything(self):
        result = greedy_document_allocation(self._profiles(), budget=10_000)
        assert result.alpha == pytest.approx(1.0)

    def test_zero_budget(self):
        result = greedy_document_allocation(self._profiles(), budget=0)
        assert result.alpha == 0.0

    def test_empty_profiles_rejected(self):
        with pytest.raises(AllocationError):
            greedy_document_allocation({}, budget=10)

    def test_negative_budget_rejected(self):
        with pytest.raises(AllocationError):
            greedy_document_allocation(self._profiles(), budget=-1)

    def test_remote_only_toggle(self):
        t = Trace(
            [
                Request(
                    timestamp=0.0, client="c", doc_id="/x", size=10, remote=False
                )
            ]
        )
        profiles = {"s": PopularityProfile.from_trace(t)}
        remote = greedy_document_allocation(profiles, budget=100)
        assert remote.alpha == 0.0
        everything = greedy_document_allocation(profiles, budget=100, remote_only=False)
        assert everything.alpha == pytest.approx(1.0)
