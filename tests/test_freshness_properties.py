"""Property-based tests of the freshness simulator."""

from hypothesis import given, settings, strategies as st

from repro.config import SECONDS_PER_DAY
from repro.dissemination import FreshnessSimulator
from repro.trace import Request, Trace
from repro.workload.updates import UpdateEvent

DOCS = ["/a", "/b", "/c"]


@st.composite
def freshness_instances(draw):
    request_days = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
                st.sampled_from(DOCS),
            ),
            min_size=1,
            max_size=30,
        )
    )
    update_days = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30), st.sampled_from(DOCS)
            ),
            max_size=20,
        )
    )
    requests = [
        Request(
            timestamp=day * SECONDS_PER_DAY,
            client=f"c{i}",
            doc_id=doc,
            size=100,
        )
        for i, (day, doc) in enumerate(request_days)
    ]
    trace = Trace(requests, sort=True)
    updates = [UpdateEvent(day=d, doc_id=doc) for d, doc in update_days]
    disseminated = set(draw(st.lists(st.sampled_from(DOCS), max_size=3)))
    return trace, updates, disseminated


@given(freshness_instances())
@settings(max_examples=60, deadline=None)
def test_counting_invariants(instance):
    trace, updates, disseminated = instance
    simulator = FreshnessSimulator(trace, updates)
    for policy_kwargs in (
        dict(policy="ignore"),
        dict(policy="push-updates"),
        dict(policy="periodic-refresh", refresh_cycle_days=3.0),
        dict(policy="exclude-mutable", mutable_docs={"/a"}),
    ):
        result = simulator.simulate(disseminated, **policy_kwargs)
        assert 0 <= result.stale_hits <= result.proxy_hits <= result.requests
        assert result.refresh_bytes >= 0.0
        assert 0.0 <= result.coverage <= 1.0
        assert 0.0 <= result.stale_fraction <= 1.0


@given(freshness_instances())
@settings(max_examples=60, deadline=None)
def test_push_updates_never_stale(instance):
    trace, updates, disseminated = instance
    result = FreshnessSimulator(trace, updates).simulate(
        disseminated, policy="push-updates"
    )
    assert result.stale_hits == 0


@given(freshness_instances())
@settings(max_examples=60, deadline=None)
def test_exclude_mutable_dominates_ignore_on_staleness(instance):
    trace, updates, disseminated = instance
    simulator = FreshnessSimulator(trace, updates)
    ignore = simulator.simulate(disseminated, policy="ignore")
    exclude = simulator.simulate(
        disseminated, policy="exclude-mutable", mutable_docs={"/a", "/b"}
    )
    assert exclude.stale_hits <= ignore.stale_hits
    assert exclude.proxy_hits <= ignore.proxy_hits


@given(freshness_instances(), st.floats(min_value=0.5, max_value=5.0))
@settings(max_examples=60, deadline=None)
def test_divisible_refresh_cycles_monotone(instance, cycle):
    """A cycle that divides another refreshes at a superset of days, so
    it can only reduce staleness."""
    trace, updates, disseminated = instance
    simulator = FreshnessSimulator(trace, updates)
    fast = simulator.simulate(
        disseminated, policy="periodic-refresh", refresh_cycle_days=cycle
    )
    slow = simulator.simulate(
        disseminated, policy="periodic-refresh", refresh_cycle_days=cycle * 3
    )
    assert fast.stale_hits <= slow.stale_hits
    assert fast.refresh_bytes >= slow.refresh_bytes
