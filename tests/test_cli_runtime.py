"""CLI surface of the live runtime: ``repro loadtest`` / ``repro serve``."""

import json

import pytest

from repro.cli import main
from repro.errors import RuntimeProtocolError, TransportError


class TestLoadtest:
    def test_smoke_passes_and_reports(self, capsys):
        assert main(["loadtest", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "live ratios" in out
        assert "batch check" in out
        assert "divergence" in out

    def test_impossible_tolerance_exits_3(self, capsys):
        code = main(["loadtest", "--smoke", "--tolerance", "-1"])
        assert code == 3
        assert "protocol error:" in capsys.readouterr().err

    def test_json_output_is_deterministic(self, capsys):
        def run():
            assert main(
                ["loadtest", "--preset", "smoke", "--seed", "1", "--json"]
            ) == 0
            return capsys.readouterr().out

        first, second = run(), run()
        assert first == second
        data = json.loads(first)
        assert set(data) == {"baseline", "ratios", "speculative"}
        assert 0.0 < data["ratios"]["server_load"] < 1.0

    def test_unknown_preset_is_a_usage_error(self, capsys):
        assert main(["loadtest", "--preset", "no-such-preset"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_transport_failures_exit_4(self, capsys, monkeypatch):
        from repro.cli import commands

        def boom(args):
            raise TransportError("wire cut")

        monkeypatch.setattr(commands, "cmd_loadtest", boom)
        assert main(["loadtest", "--smoke"]) == 4
        assert "transport error: wire cut" in capsys.readouterr().err

    def test_protocol_failures_exit_3(self, capsys, monkeypatch):
        from repro.cli import commands

        def boom(args):
            raise RuntimeProtocolError("bad frame")

        monkeypatch.setattr(commands, "cmd_loadtest", boom)
        assert main(["loadtest", "--smoke"]) == 3
        assert "protocol error: bad frame" in capsys.readouterr().err


class TestChaos:
    def test_smoke_passes_and_reports(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fault events" in out
        assert "crash[" in out
        assert "clean ratios" in out
        assert "faulted ratios" in out
        assert "divergence" in out

    def test_impossible_tolerance_exits_3(self, capsys):
        code = main(["chaos", "--smoke", "--tolerance", "-1"])
        assert code == 3
        assert "protocol error:" in capsys.readouterr().err

    def test_json_output_has_both_pairs(self, capsys):
        assert main(["chaos", "--smoke", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"clean", "faulted", "fault_events", "divergence"}
        assert data["divergence"] <= 0.05
        assert any("crash[" in label for _, label in data["fault_events"])
        faulted = data["faulted"]["speculative"]["counters"]
        assert faulted["network.frames_dropped"] > 0

    def test_bad_proxy_index_is_a_usage_error(self, capsys):
        code = main(
            ["chaos", "--preset", "smoke", "--crash-proxy", "99"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFleet:
    def test_smoke_gate_passes_and_reports(self, capsys):
        assert main(["fleet", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fleet " in out
        assert "single (replicated)" in out
        assert "plan: hierarchical" in out

    def test_json_and_trace_artifact(self, capsys, tmp_path):
        trace_path = tmp_path / "fleet.jsonl"
        code = main(["fleet", "--json", "--trace-out", str(trace_path)])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"demand", "fleet", "improvement", "plan", "single"}
        for fleet_value, single_value in data["improvement"].values():
            assert fleet_value < single_value
        lines = trace_path.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "fleet-serve" in kinds

    def test_bad_region_fraction_is_a_usage_error(self, capsys):
        code = main(["fleet", "--region-fraction", "2.0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_preset_is_a_usage_error(self, capsys):
        assert main(["fleet", "--preset", "no-such-preset"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServe:
    @pytest.mark.parametrize("extra", [[], ["--threshold", "0.5"]])
    def test_tcp_smoke(self, capsys, extra):
        code = main(
            ["serve", "--preset", "smoke", "--seed", "0", "--smoke"] + extra
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "smoke OK: 5 requests served" in out

    def test_unknown_preset_is_a_usage_error(self, capsys):
        assert main(["serve", "--preset", "no-such-preset"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTrace:
    def test_smoke_gate_passes(self, capsys):
        assert main(["trace", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "trace smoke OK" in out
        assert "byte-identical" in out

    def test_stdout_is_jsonl(self, capsys):
        assert main(["trace", "--limit", "64"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 64
        for line in lines:
            event = json.loads(line)
            assert {"t", "kind"} <= set(event)

    def test_artifacts_are_written(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        prom_path = tmp_path / "metrics.prom"
        code = main(
            [
                "trace",
                "--out",
                str(trace_path),
                "--metrics-out",
                str(prom_path),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        lines = trace_path.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        assert "# TYPE repro_accesses counter" in prom_path.read_text()


class TestMetrics:
    def test_table_shows_the_curve(self, capsys):
        assert main(["metrics", "--window", "86400"]) == 0
        out = capsys.readouterr().out
        assert "four-ratio curve" in out
        assert "bandwidth" in out

    def test_json_has_both_arms(self, capsys):
        assert main(["metrics", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"baseline", "speculative", "window"}

    def test_chaos_run_exports_prometheus(self, capsys):
        assert main(["metrics", "chaos", "--format", "prometheus"]) == 0
        assert "# TYPE repro_accesses counter" in capsys.readouterr().out
