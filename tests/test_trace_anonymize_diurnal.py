"""Tests for trace anonymization and diurnal arrivals."""

import dataclasses

import numpy as np
import pytest

from repro.errors import CalibrationError, TraceFormatError
from repro.trace import Request, Trace, anonymize_trace, summarize
from repro.topology import build_clientele_tree
from repro.workload import GeneratorConfig, SyntheticTraceGenerator


def req(t, client, doc, size=10, remote=True):
    return Request(timestamp=t, client=client, doc_id=doc, size=size, remote=remote)


@pytest.fixture
def trace():
    return Trace(
        [
            req(0.0, "alice.example.org", "/secret/report.html", 100),
            req(1.0, "bob.region-03", "/secret/report.html", 100),
            req(2.0, "local-1.campus", "/public/index.html", 50, remote=False),
            req(3.0, "alice.example.org", "/public/index.html", 50),
        ]
    )


class TestAnonymize:
    def test_identifiers_replaced(self, trace):
        anonymous = anonymize_trace(trace, "k1")
        for request in anonymous:
            assert "alice" not in request.client
            assert "secret" not in request.doc_id

    def test_structure_preserved(self, trace):
        anonymous = anonymize_trace(trace, "k1")
        assert len(anonymous) == len(trace)
        assert anonymous.total_bytes() == trace.total_bytes()
        assert [r.timestamp for r in anonymous] == [r.timestamp for r in trace]
        assert [r.remote for r in anonymous] == [r.remote for r in trace]
        original = summarize(trace)
        mapped = summarize(anonymous)
        assert mapped.num_clients == original.num_clients
        assert mapped.num_documents == original.num_documents

    def test_consistent_mapping_within_trace(self, trace):
        anonymous = anonymize_trace(trace, "k1")
        # alice appears twice -> same pseudonym both times.
        assert anonymous[0].client == anonymous[3].client
        # the report is fetched by two clients -> same doc pseudonym.
        assert anonymous[0].doc_id == anonymous[1].doc_id

    def test_same_key_same_mapping_across_traces(self, trace):
        a = anonymize_trace(trace, "k1")
        b = anonymize_trace(trace, "k1")
        assert [r.client for r in a] == [r.client for r in b]

    def test_different_key_different_mapping(self, trace):
        a = anonymize_trace(trace, "k1")
        b = anonymize_trace(trace, "k2")
        assert [r.client for r in a] != [r.client for r in b]

    def test_regions_preserved(self, trace):
        anonymous = anonymize_trace(trace, "k1")
        regional = [r.client for r in anonymous if r.client.endswith(".region-03")]
        assert len(regional) == 1
        campus = [r.client for r in anonymous if r.client.endswith(".campus")]
        assert len(campus) == 1
        assert campus[0].startswith("local-")

    def test_regions_dropped_when_asked(self, trace):
        anonymous = anonymize_trace(trace, "k1", keep_regions=False)
        assert not any(".region-" in r.client for r in anonymous)

    def test_topology_still_builds(self, trace):
        anonymous = anonymize_trace(trace, "k1")
        tree = build_clientele_tree(anonymous)
        assert anonymous.clients() <= tree.leaves

    def test_catalog_metadata_preserved(self):
        from repro.trace import Document

        trace = Trace(
            [req(0.0, "c", "/x", 10)],
            [Document(doc_id="/x", size=10, kind="embedded", mutable=True)],
        )
        anonymous = anonymize_trace(trace, "k")
        (doc,) = anonymous.documents.values()
        assert doc.kind == "embedded"
        assert doc.mutable

    def test_empty_key_rejected(self, trace):
        with pytest.raises(TraceFormatError):
            anonymize_trace(trace, "")

    def test_bytes_key_accepted(self, trace):
        assert len(anonymize_trace(trace, b"binary-key")) == len(trace)


class TestDiurnalArrivals:
    def _hour_histogram(self, trace):
        hours = [(r.timestamp % 86_400) / 3_600 for r in trace]
        counts, __ = np.histogram(hours, bins=24, range=(0, 24))
        return counts

    def test_flat_without_amplitude(self):
        config = GeneratorConfig(
            seed=31, n_pages=50, n_clients=50, n_sessions=3000, duration_days=30
        )
        counts = self._hour_histogram(SyntheticTraceGenerator(config).generate())
        assert counts.max() < counts.mean() * 1.5

    def test_cycle_with_amplitude(self):
        config = dataclasses.replace(
            GeneratorConfig(
                seed=31, n_pages=50, n_clients=50, n_sessions=3000, duration_days=30
            ),
            diurnal_amplitude=1.0,
        )
        counts = self._hour_histogram(SyntheticTraceGenerator(config).generate())
        # Strong cycle: busiest hour far above the quietest.
        assert counts.max() > counts.min() * 2.0

    def test_volume_preserved(self):
        config = dataclasses.replace(
            GeneratorConfig(
                seed=31, n_pages=50, n_clients=50, n_sessions=500, duration_days=10
            ),
            diurnal_amplitude=0.8,
        )
        trace = SyntheticTraceGenerator(config).generate()
        stats = summarize(trace)
        assert stats.num_sessions >= 400  # sessions not lost to thinning

    def test_invalid_amplitude(self):
        with pytest.raises(CalibrationError):
            GeneratorConfig(diurnal_amplitude=1.5)

    def test_deterministic(self):
        config = dataclasses.replace(
            GeneratorConfig(seed=7, n_pages=40, n_clients=30, n_sessions=200, duration_days=5),
            diurnal_amplitude=0.7,
        )
        a = SyntheticTraceGenerator(config).generate()
        b = SyntheticTraceGenerator(config).generate()
        assert [r.timestamp for r in a] == [r.timestamp for r in b]
