"""Tests for period bucketing and the sensitivity sweep."""

import pytest

from repro.errors import SimulationError
from repro.core import sweep_workload
from repro.dissemination import DynamicShield
from repro.speculation import TopKPolicy
from repro.trace import Request, Trace, bytes_per_period, requests_per_period
from repro.workload import GeneratorConfig


def req(t, size=10):
    return Request(timestamp=t, client="c", doc_id="/d", size=size)


class TestPeriods:
    def test_requests_bucketed(self):
        trace = Trace([req(0.0), req(50.0), req(150.0), req(220.0)])
        assert requests_per_period(trace, 100.0) == [2, 1, 1]

    def test_bytes_bucketed(self):
        trace = Trace([req(0.0, 5), req(50.0, 7), req(150.0, 11)])
        assert bytes_per_period(trace, 100.0) == [12, 11]

    def test_counts_conserved(self):
        trace = Trace([req(float(i * 37)) for i in range(50)])
        assert sum(requests_per_period(trace, 100.0)) == 50

    def test_empty(self):
        assert requests_per_period(Trace([]), 100.0) == []
        assert bytes_per_period(Trace([]), 100.0) == []

    def test_single_request_single_period(self):
        assert requests_per_period(Trace([req(5.0)]), 100.0) == [1]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            requests_per_period(Trace([req(0.0)]), 0.0)
        with pytest.raises(ValueError):
            bytes_per_period(Trace([req(0.0)]), -1.0)

    def test_feeds_dynamic_shield(self):
        """The helper composes with the shielding control loop."""
        trace = Trace(
            [req(float(i % 3 * 86_400 + i)) for i in range(300)], sort=True
        )
        offered = [float(c) for c in requests_per_period(trace, 86_400.0)]
        shield = DynamicShield(
            n_servers=5, lam=1e-6, max_budget=1e7, capacity=50.0
        )
        snapshots = shield.run(offered)
        assert len(snapshots) == len(offered)


class TestSensitivity:
    BASE = GeneratorConfig(
        seed=1, n_pages=60, n_clients=60, n_sessions=400, duration_days=10
    )

    def test_sweep_runs_each_value(self):
        points = sweep_workload(
            "jump_probability", [0.0, 0.6], base_config=self.BASE
        )
        assert [p.value for p in points] == [0.0, 0.6]
        for point in points:
            assert point.n_requests > 0
            assert 0.0 <= point.ratios.server_load_reduction < 1.0

    def test_predictability_direction(self):
        """More jumps -> less predictable traversals -> weaker gains at
        the same policy (the knob works the way it claims)."""
        points = sweep_workload(
            "jump_probability",
            [0.0, 0.8],
            base_config=self.BASE,
            policy=TopKPolicy(k=2, min_probability=0.1),
        )
        predictable, chaotic = points
        assert (
            predictable.ratios.server_load_reduction
            >= chaotic.ratios.server_load_reduction - 0.05
        )

    def test_custom_policy_used(self):
        points = sweep_workload(
            "popularity_alpha",
            [1.0],
            base_config=self.BASE,
            policy=TopKPolicy(k=1, min_probability=0.5),
        )
        assert len(points) == 1

    def test_unknown_parameter(self):
        with pytest.raises(SimulationError):
            sweep_workload("not_a_field", [1])

    def test_empty_values(self):
        with pytest.raises(SimulationError):
            sweep_workload("jump_probability", [])
