"""The reusable dataflow engine behind the R/U flow checkers."""

import ast
from types import SimpleNamespace

from repro.analysis.dataflow import (
    EMPTY,
    EXIT,
    ProgramIndex,
    ProvenanceAnalysis,
    build_cfg,
    ref_of,
    terminal_name,
)
from repro.analysis.dispatch import set_parents


def first_function(code):
    tree = ast.parse(code)
    set_parents(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in snippet")


class _SourceAnalysis(ProvenanceAnalysis):
    """Labels every ``source()`` result and records sink() observations."""

    def __init__(self, func, initial_env=None):
        super().__init__(func, initial_env)
        self.sink_labels = []

    def call_result(self, call, arg_labels, env):
        if isinstance(call.func, ast.Name) and call.func.id == "source":
            return frozenset({"tainted"})
        return EMPTY

    def observe_call(self, call, arg_labels, env):
        if not self.observing:
            return
        if isinstance(call.func, ast.Name) and call.func.id == "sink":
            self.sink_labels.append(
                frozenset().union(*arg_labels) if arg_labels else EMPTY
            )


def analyze(code, initial_env=None):
    analysis = _SourceAnalysis(first_function(code), initial_env)
    analysis.run()
    return analysis


class TestRefHelpers:
    def test_ref_of_dotted_chain(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert ref_of(node) == "a.b.c"

    def test_ref_of_non_name_base_is_none(self):
        node = ast.parse("f().b", mode="eval").body
        assert ref_of(node) is None

    def test_terminal_name(self):
        assert terminal_name("a.b.c") == "c"
        assert terminal_name("x") == "x"
        assert terminal_name(None) == ""


class TestCfg:
    def build(self, code):
        return build_cfg(first_function(code))

    def test_straight_line_is_one_block(self):
        cfg = self.build("def f():\n    a = 1\n    b = a\n    return b\n")
        assert len(cfg.blocks) == 1
        assert EXIT in cfg.blocks[0].successors

    def test_if_produces_join(self):
        cfg = self.build(
            "def f(p):\n"
            "    if p:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        predecessors = cfg.predecessors()
        joins = [b for b, preds in predecessors.items() if len(preds) == 2]
        assert joins  # the post-if block joins both arms

    def test_while_has_back_edge(self):
        cfg = self.build(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    return n\n"
        )
        back_edges = [
            (index, successor)
            for index, block in enumerate(cfg.blocks)
            for successor in block.successors
            if successor != EXIT and successor <= index
        ]
        assert back_edges

    def test_try_handler_reachable_from_body(self):
        cfg = self.build(
            "def f():\n"
            "    try:\n"
            "        a = source()\n"
            "    except ValueError:\n"
            "        a = None\n"
            "    return a\n"
        )
        assert len(cfg.blocks) >= 3


class TestFixpoint:
    def test_straight_line_taint(self):
        analysis = analyze(
            "def f():\n"
            "    x = source()\n"
            "    y = x\n"
            "    sink(y)\n"
        )
        assert analysis.sink_labels == [frozenset({"tainted"})]

    def test_branch_join_is_union(self):
        analysis = analyze(
            "def f(p):\n"
            "    if p:\n"
            "        x = source()\n"
            "    else:\n"
            "        x = 1\n"
            "    sink(x)\n"
        )
        assert analysis.sink_labels == [frozenset({"tainted"})]

    def test_strong_update_clears_labels(self):
        analysis = analyze(
            "def f():\n"
            "    x = source()\n"
            "    x = 1\n"
            "    sink(x)\n"
        )
        assert analysis.sink_labels == [EMPTY]

    def test_loop_carried_taint_converges(self):
        analysis = analyze(
            "def f(n):\n"
            "    x = 0\n"
            "    while n:\n"
            "        x = x + source()\n"
            "        n = n - 1\n"
            "    sink(x)\n"
        )
        assert analysis.sink_labels == [frozenset({"tainted"})]

    def test_tuple_unpacking_spreads_labels(self):
        analysis = analyze(
            "def f():\n"
            "    a, b = source(), 1\n"
            "    sink(a)\n"
            "    sink(b)\n"
        )
        # Tuple element tracking is conservative: both targets may
        # carry the source label.
        assert all("tainted" in labels for labels in analysis.sink_labels[:1])

    def test_observation_fires_exactly_once_per_sink(self):
        analysis = analyze(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    sink(source())\n"
        )
        assert len(analysis.sink_labels) == 1

    def test_self_attribute_strong_update(self):
        analysis = analyze(
            "def f(self):\n"
            "    self.x = source()\n"
            "    self.x = 1\n"
            "    sink(self.x)\n"
        )
        assert analysis.sink_labels == [EMPTY]

    def test_initial_env_seeds_parameters(self):
        analysis = analyze(
            "def f(p):\n    sink(p)\n",
            initial_env={"p": frozenset({"seeded"})},
        )
        assert analysis.sink_labels == [frozenset({"seeded"})]

    def test_return_labels_join_all_returns(self):
        analysis = analyze(
            "def f(p):\n"
            "    if p:\n"
            "        return source()\n"
            "    return 1\n"
        )
        assert "tainted" in analysis.return_labels

    def test_all_env_collects_attribute_labels(self):
        analysis = analyze(
            "def __init__(self):\n"
            "    self.rng = source()\n"
        )
        assert analysis.all_env.get("self.rng") == frozenset({"tainted"})

    def test_nested_def_is_opaque(self):
        analysis = analyze(
            "def f():\n"
            "    x = source()\n"
            "    def g():\n"
            "        return x\n"
            "    sink(g)\n"
        )
        assert analysis.sink_labels == [EMPTY]

    def test_comprehension_carries_element_labels(self):
        analysis = analyze(
            "def f(items):\n"
            "    values = [source() for _ in items]\n"
            "    sink(values)\n"
        )
        assert analysis.sink_labels == [frozenset({"tainted"})]

    def test_unknown_calls_do_not_launder_labels(self):
        # Labels do not pass *through* unresolved calls (documented
        # limitation: ``min``/``max``-style builtins are opaque).
        analysis = analyze(
            "def f():\n"
            "    x = max(source(), 1)\n"
            "    sink(x)\n"
        )
        assert analysis.sink_labels == [EMPTY]


def make_ctx(code, module=None):
    tree = ast.parse(code)
    set_parents(tree)
    return SimpleNamespace(tree=tree, module=module, display_path="mem.py")


def call_in(tree, name):
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, (ast.Name, ast.Attribute))
            and (
                node.func.id == name
                if isinstance(node.func, ast.Name)
                else node.func.attr == name
            )
        ):
            return node
    raise AssertionError(f"no call to {name}")


class TestProgramIndex:
    def test_indexes_functions_and_methods(self):
        ctx = make_ctx(
            "def top():\n    pass\n"
            "class C:\n"
            "    def meth(self):\n        pass\n",
            module="pkg.mod",
        )
        index = ProgramIndex([ctx])
        names = {record.qualname for record in index.records}
        assert names == {"pkg.mod.top", "pkg.mod.C.meth"}

    def test_method_params_strip_self(self):
        ctx = make_ctx("class C:\n    def meth(self, a, b=1):\n        pass\n")
        index = ProgramIndex([ctx])
        (record,) = index.records
        assert record.param_names == ["a", "b"]

    def test_unique_simple_name_resolves(self):
        ctx = make_ctx(
            "def helper(x):\n    return x\n"
            "def caller():\n    return helper(1)\n"
        )
        index = ProgramIndex([ctx])
        call = call_in(ctx.tree, "helper")
        record = index.resolve_call(call)
        assert record is not None and record.name == "helper"

    def test_ambiguous_name_resolves_to_nothing(self):
        ctx = make_ctx(
            "class A:\n    def helper(self):\n        pass\n"
            "class B:\n    def helper(self):\n        pass\n"
            "def caller(obj):\n    return obj.helper()\n"
        )
        index = ProgramIndex([ctx])
        call = call_in(ctx.tree, "helper")
        assert index.resolve_call(call) is None

    def test_self_call_prefers_own_class(self):
        ctx = make_ctx(
            "class A:\n"
            "    def helper(self):\n        pass\n"
            "    def caller(self):\n        return self.helper()\n"
            "class B:\n    def helper(self):\n        pass\n"
        )
        index = ProgramIndex([ctx])
        call = call_in(ctx.tree, "helper")
        record = index.resolve_call(call, caller_class="A")
        assert record is not None and record.class_name == "A"

    def test_bind_arguments_positional_and_keyword(self):
        ctx = make_ctx(
            "def target(a, b, c=None):\n    pass\n"
            "def caller():\n    target(1, 2, c=3)\n"
        )
        index = ProgramIndex([ctx])
        call = call_in(ctx.tree, "target")
        record = index.resolve_call(call)
        pairs = ProgramIndex.bind_arguments(call, record)
        assert [name for name, _ in pairs] == ["a", "b", "c"]

    def test_bind_arguments_unbound_method_skips_receiver(self):
        ctx = make_ctx(
            "class C:\n    def meth(self, a):\n        pass\n"
            "def caller(obj):\n    C.meth(obj, 1)\n"
        )
        index = ProgramIndex([ctx])
        call = call_in(ctx.tree, "meth")
        record = index.resolve_call(call)
        pairs = ProgramIndex.bind_arguments(call, record)
        assert len(pairs) == 1
        assert pairs[0][0] == "a"
        assert isinstance(pairs[0][1], ast.Constant)

    def test_starred_arguments_are_skipped(self):
        ctx = make_ctx(
            "def target(a, b):\n    pass\n"
            "def caller(rest):\n    target(*rest)\n"
        )
        index = ProgramIndex([ctx])
        call = call_in(ctx.tree, "target")
        record = index.resolve_call(call)
        assert ProgramIndex.bind_arguments(call, record) == []
