"""Incremental DependencyModel API: observe() must equal batch estimate()."""

import math

import pytest

from repro.errors import DependencyModelError
from repro.speculation.dependency import DependencyModel
from repro.workload.generator import generate_trace


def replay(trace, **kwargs):
    model = DependencyModel.incremental(**kwargs)
    for request in trace:
        model.observe(request.client, request.doc_id, request.timestamp)
    return model


class TestBatchParity:
    """The satellite regression: batch fit == incremental fit, same trace."""

    @pytest.mark.parametrize(
        "window,stride_timeout",
        [(5.0, None), (5.0, 5.0), (2.0, 10.0), (30.0, math.inf)],
    )
    def test_identical_counts(self, window, stride_timeout):
        trace = generate_trace(
            7, n_pages=60, n_clients=40, n_sessions=300, duration_days=10
        )
        batch = DependencyModel.estimate(
            trace, window=window, stride_timeout=stride_timeout
        )
        incremental = replay(
            trace, window=window, stride_timeout=stride_timeout
        )
        assert incremental.occurrence_counts == batch.occurrence_counts
        assert incremental.pair_counts == batch.pair_counts

    def test_identical_probabilities(self):
        trace = generate_trace(
            11, n_pages=50, n_clients=30, n_sessions=250, duration_days=8
        )
        batch = DependencyModel.estimate(trace, window=5.0)
        incremental = replay(trace, window=5.0)
        for source in batch.pair_counts:
            assert incremental.successors(source) == batch.successors(source)
            assert incremental.closure_row(source) == batch.closure_row(source)


class TestObserve:
    def test_zero_stride_timeout_never_pairs(self):
        model = DependencyModel.incremental(window=5.0, stride_timeout=0.0)
        model.observe("c", "a", 0.0)
        model.observe("c", "b", 0.1)
        assert model.pair_counts == {}
        assert model.occurrence_counts == {"a": 1, "b": 1}

    def test_infinite_stride_never_splits(self):
        model = DependencyModel.incremental(window=1e9, stride_timeout=math.inf)
        model.observe("c", "a", 0.0)
        model.observe("c", "b", 1e6)
        assert model.pair_counts == {"a": {"b": 1}}

    def test_gap_at_timeout_splits_stride(self):
        model = DependencyModel.incremental(window=100.0, stride_timeout=5.0)
        model.observe("c", "a", 0.0)
        model.observe("c", "b", 5.0)  # gap == StrideTimeout → new stride
        assert model.pair_counts == {}

    def test_window_limits_pairing(self):
        model = DependencyModel.incremental(window=2.0, stride_timeout=10.0)
        model.observe("c", "a", 0.0)
        model.observe("c", "b", 3.0)  # same stride, outside T_w
        assert model.pair_counts == {}

    def test_repeat_document_counts_once_per_occurrence(self):
        model = DependencyModel.incremental(window=10.0, stride_timeout=10.0)
        model.observe("c", "a", 0.0)
        model.observe("c", "b", 1.0)
        model.observe("c", "b", 2.0)  # a→b already seen for this occurrence
        assert model.pair_counts["a"] == {"b": 1}

    def test_clients_are_independent(self):
        model = DependencyModel.incremental(window=10.0)
        model.observe("c1", "a", 0.0)
        model.observe("c2", "b", 1.0)
        assert model.pair_counts == {}

    def test_backwards_time_rejected(self):
        model = DependencyModel.incremental()
        model.observe("c", "a", 10.0)
        with pytest.raises(DependencyModelError):
            model.observe("c", "b", 9.0)

    def test_empty_ids_rejected(self):
        model = DependencyModel.incremental()
        with pytest.raises(DependencyModelError):
            model.observe("", "a", 0.0)
        with pytest.raises(DependencyModelError):
            model.observe("c", "", 0.0)


class TestRefreshClosure:
    def test_refresh_reflects_new_observations(self):
        model = DependencyModel.incremental(window=10.0, stride_timeout=10.0)
        model.observe("c", "a", 0.0)
        model.observe("c", "b", 1.0)
        stale = model.closure_row("a")  # memoized now
        model.observe("d", "a", 2.0)
        model.observe("d", "a", 100.0)  # new stride; dilutes p[a,b]
        assert model.closure_row("a") == stale  # paper: stale until refresh
        model.refresh_closure()
        assert model.closure_row("a") != stale

    def test_bounded_refresh_precomputes_requested_rows(self):
        trace = generate_trace(
            3, n_pages=40, n_clients=20, n_sessions=150, duration_days=5
        )
        model = replay(trace, window=5.0)
        sources = sorted(model.pair_counts)[:5]
        assert model.refresh_closure(sources) == len(sources)
