"""Edge cases of suppressions, rule filtering, baseline staleness, SARIF."""

import json
from pathlib import Path

from repro.analysis import Baseline, run_lint
from repro.analysis import runner
from repro.analysis.suppressions import SuppressionIndex

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def run(args, capsys):
    code = runner.main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def lint_snippet(tmp_path, code, **kwargs):
    path = tmp_path / "snippet.py"
    path.write_text(code)
    return run_lint([path], base_dir=tmp_path, **kwargs)


class TestMultiLineSuppression:
    def test_directive_on_last_line_of_statement_suppresses(self, tmp_path):
        code = (
            "def f(xs):\n"
            "    value = (sum(xs)\n"
            "             / len(xs))  # repro-lint: disable=N001\n"
            "    return value\n"
        )
        result = lint_snippet(tmp_path, code, checker_names=["numeric"])
        assert result.findings == []
        assert result.suppression_directives == 1

    def test_same_statement_without_directive_still_fires(self, tmp_path):
        code = (
            "def f(xs):\n"
            "    value = (sum(xs)\n"
            "             / len(xs))\n"
            "    return value\n"
        )
        result = lint_snippet(tmp_path, code, checker_names=["numeric"])
        assert [f.rule_id for f in result.findings] == ["N001"]

    def test_compound_header_span_covers_the_condition(self, tmp_path):
        code = (
            "def f(xs, flag):\n"
            "    if (1 / len(xs)\n"
            "            > 0.5):  # repro-lint: disable=N001\n"
            "        return 1\n"
            "    return 0\n"
        )
        result = lint_snippet(tmp_path, code, checker_names=["numeric"])
        assert result.findings == []

    def test_compound_header_directive_does_not_blanket_the_body(
        self, tmp_path
    ):
        code = (
            "def f(xs, flag):\n"
            "    if flag:  # repro-lint: disable=N001\n"
            "        return 1 / len(xs)\n"
            "    return 0\n"
        )
        result = lint_snippet(tmp_path, code, checker_names=["numeric"])
        assert [f.rule_id for f in result.findings] == ["N001"]

    def test_directive_count_is_not_inflated_by_span_expansion(self):
        lines = [
            "def f(xs):",
            "    value = (sum(xs)",
            "             / len(xs))  # repro-lint: disable=N001",
        ]
        index = SuppressionIndex(lines)
        import ast

        index.attach_tree(ast.parse("\n".join(lines)))
        assert index.directive_count == 1
        assert index.is_suppressed("N001", 2)
        assert index.is_suppressed("N001", 3)
        assert not index.is_suppressed("N001", 1)


class TestUnknownDirectiveRules:
    def test_unknown_rule_in_directive_warns_not_crashes(
        self, tmp_path, capsys
    ):
        path = tmp_path / "snippet.py"
        path.write_text(
            "def f():\n"
            "    return 1  # repro-lint: disable=Z999\n"
        )
        result = run_lint([path], base_dir=tmp_path)
        assert result.findings == []
        assert result.unknown_directive_rules == ("Z999",)

        code, _, err = run(["--no-baseline", str(path)], capsys)
        assert code == 0
        assert "unknown rule id(s): Z999" in err

    def test_known_rules_raise_no_warning(self, capsys):
        code, _, err = run(
            ["--no-baseline", str(FIXTURES / "numeric_clean.py")], capsys
        )
        assert code == 0
        assert "unknown rule" not in err

    def test_referenced_rules_excludes_all(self):
        index = SuppressionIndex(
            [
                "# repro-lint: disable-file=D004",
                "x = 1  # repro-lint: disable=all",
                "y = 2  # repro-lint: disable=N001,Z999",
            ]
        )
        assert index.referenced_rules == frozenset({"D004", "N001", "Z999"})


class TestSelectDisableOverlap:
    def test_disable_wins_inside_select(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--select",
                "N001,N002",
                "--disable",
                "N001",
                str(FIXTURES / "numeric_violations.py"),
            ],
            capsys,
        )
        assert code == 1
        assert "N002" in out
        assert "N001" not in out

    def test_disabling_everything_selected_is_clean(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--select",
                "N001",
                "--disable",
                "N001",
                str(FIXTURES / "numeric_violations.py"),
            ],
            capsys,
        )
        assert code == 0
        assert "clean" in out


class TestBaselineStaleness:
    def _baseline_for(self, tmp_path, code):
        source = tmp_path / "mod.py"
        source.write_text(code)
        result = run_lint([source], base_dir=tmp_path)
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, result.findings)
        return source, baseline_path

    def test_fixed_finding_reason(self, tmp_path):
        source, baseline_path = self._baseline_for(
            tmp_path, "def f(xs):\n    return 1 / len(xs)\n"
        )
        source.write_text("def f(xs):\n    return 0\n")
        baseline = Baseline.load(baseline_path)
        reasons = baseline.audit([], base_dir=tmp_path)
        assert list(reasons.values()) == ["finding no longer present"]

    def test_deleted_file_reason(self, tmp_path):
        source, baseline_path = self._baseline_for(
            tmp_path, "def f(xs):\n    return 1 / len(xs)\n"
        )
        source.unlink()
        baseline = Baseline.load(baseline_path)
        reasons = baseline.audit([], base_dir=tmp_path)
        (reason,) = reasons.values()
        assert "no longer exists" in reason and "mod.py" in reason

    def test_removed_rule_reason(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "fingerprint": "deadbeefdeadbeef",
                            "rule": "Q999",
                            "path": "mod.py",
                            "line": 1,
                        }
                    ],
                }
            )
        )
        baseline = Baseline.load(baseline_path)
        reasons = baseline.audit(
            [], known_rules={"N001"}, base_dir=tmp_path
        )
        assert reasons == {
            "deadbeefdeadbeef": "rule Q999 no longer exists"
        }

    def test_update_baseline_prunes_stale_entries(
        self, tmp_path, capsys, monkeypatch
    ):
        source, baseline_path = self._baseline_for(
            tmp_path, "def f(xs):\n    return 1 / len(xs)\n"
        )
        monkeypatch.chdir(tmp_path)
        source.write_text("def f(xs):\n    return 0\n")

        code, out, err = run(
            ["--baseline", str(baseline_path), str(source)], capsys
        )
        assert code == 0
        assert "stale baseline entry" in out

        code, out, err = run(
            [
                "--update-baseline",
                "--baseline",
                str(baseline_path),
                str(source),
            ],
            capsys,
        )
        assert code == 0
        assert "pruned 1 stale baseline entry" in err
        assert "stale baseline entry" not in out
        assert json.loads(baseline_path.read_text())["findings"] == []

        # A second run is quiet: the file reflects reality again.
        code, out, err = run(
            ["--baseline", str(baseline_path), str(source)], capsys
        )
        assert code == 0
        assert "stale" not in out

    def test_update_baseline_keeps_live_entries(
        self, tmp_path, capsys, monkeypatch
    ):
        source, baseline_path = self._baseline_for(
            tmp_path,
            "def f(xs):\n"
            "    return 1 / len(xs)\n"
            "def g(ys):\n"
            "    return 2 / len(ys)\n",
        )
        monkeypatch.chdir(tmp_path)
        source.write_text("def f(xs):\n    return 1 / len(xs)\n")
        code, _, err = run(
            [
                "--update-baseline",
                "--baseline",
                str(baseline_path),
                str(source),
            ],
            capsys,
        )
        assert code == 0
        remaining = json.loads(baseline_path.read_text())["findings"]
        assert len(remaining) == 1
        assert remaining[0]["rule"] == "N001"


class TestSarifReport:
    def test_sarif_document_shape(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--format",
                "sarif",
                str(FIXTURES / "numeric_violations.py"),
            ],
            capsys,
        )
        assert code == 1
        document = json.loads(out)
        assert document["version"] == "2.1.0"
        (sarif_run,) = document["runs"]
        assert sarif_run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {
            rule["id"] for rule in sarif_run["tool"]["driver"]["rules"]
        }
        # Every registered family ships rule metadata.
        for expected in ("D001", "L001", "N001", "H001", "R001", "U001",
                         "A001"):
            assert expected in rule_ids
        results = sarif_run["results"]
        assert {r["ruleId"] for r in results} == {"N001", "N002", "N003"}
        for entry in results:
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(
                "numeric_violations.py"
            )
            assert location["region"]["startLine"] >= 1
            assert "reproLint/fingerprint/v1" in entry["partialFingerprints"]

    def test_clean_run_yields_empty_results(self, capsys):
        code, out, _ = run(
            [
                "--no-baseline",
                "--format",
                "sarif",
                str(FIXTURES / "numeric_clean.py"),
            ],
            capsys,
        )
        assert code == 0
        document = json.loads(out)
        assert document["runs"][0]["results"] == []
