"""Tests for speculation policies."""

import math

import pytest

from repro.errors import PolicyError
from repro.speculation import (
    DependencyModel,
    EmbeddingOnlyPolicy,
    ThresholdPolicy,
    TopKPolicy,
)
from repro.trace import Document


@pytest.fixture
def model():
    # /page -> /inline (1.0), /page -> /next (0.5), /next -> /deep (0.6)
    return DependencyModel.from_counts(
        {
            "/page": {"/inline": 10.0, "/next": 5.0},
            "/next": {"/deep": 6.0},
        },
        {"/page": 10.0, "/next": 10.0, "/deep": 5.0, "/inline": 10.0},
    )


@pytest.fixture
def catalog():
    return {
        "/page": Document(doc_id="/page", size=1000),
        "/inline": Document(doc_id="/inline", size=200, kind="embedded"),
        "/next": Document(doc_id="/next", size=3000),
        "/deep": Document(doc_id="/deep", size=50_000),
    }


class TestThresholdPolicy:
    def test_selects_above_threshold(self, model, catalog):
        chosen = ThresholdPolicy(threshold=0.5).select("/page", model, catalog)
        assert [c.doc_id for c in chosen] == ["/inline", "/next"]

    def test_high_threshold_embeddings_only(self, model, catalog):
        chosen = ThresholdPolicy(threshold=0.99).select("/page", model, catalog)
        assert [c.doc_id for c in chosen] == ["/inline"]

    def test_closure_reaches_chained_documents(self, model, catalog):
        # /page -> /next -> /deep: 0.5 * 0.6 = 0.3
        chosen = ThresholdPolicy(threshold=0.3).select("/page", model, catalog)
        assert "/deep" in [c.doc_id for c in chosen]

    def test_direct_mode_ignores_chains(self, model, catalog):
        chosen = ThresholdPolicy(threshold=0.3, use_closure=False).select(
            "/page", model, catalog
        )
        assert "/deep" not in [c.doc_id for c in chosen]

    def test_max_size_filters(self, model, catalog):
        chosen = ThresholdPolicy(threshold=0.3, max_size=10_000).select(
            "/page", model, catalog
        )
        assert "/deep" not in [c.doc_id for c in chosen]
        assert "/next" in [c.doc_id for c in chosen]

    def test_sorted_by_probability(self, model, catalog):
        chosen = ThresholdPolicy(threshold=0.25).select("/page", model, catalog)
        probabilities = [c.probability for c in chosen]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_unknown_document_empty(self, model, catalog):
        assert ThresholdPolicy(threshold=0.5).select("/nope", model, catalog) == []

    def test_candidate_missing_from_catalog_skipped(self, model):
        chosen = ThresholdPolicy(threshold=0.5).select("/page", model, {})
        assert chosen == []

    def test_invalid_threshold(self):
        with pytest.raises(PolicyError):
            ThresholdPolicy(threshold=0.0)
        with pytest.raises(PolicyError):
            ThresholdPolicy(threshold=1.5)

    def test_invalid_max_size(self):
        with pytest.raises(PolicyError):
            ThresholdPolicy(threshold=0.5, max_size=0)


class TestEmbeddingOnlyPolicy:
    def test_only_certain_dependencies(self, model, catalog):
        chosen = EmbeddingOnlyPolicy().select("/page", model, catalog)
        assert [c.doc_id for c in chosen] == ["/inline"]

    def test_tolerance_widens(self, catalog):
        model = DependencyModel.from_counts(
            {"/page": {"/almost": 9.0}}, {"/page": 10.0, "/almost": 1.0}
        )
        catalog = dict(catalog)
        catalog["/almost"] = Document(doc_id="/almost", size=10)
        assert EmbeddingOnlyPolicy(tolerance=0.0).select("/page", model, catalog) == []
        chosen = EmbeddingOnlyPolicy(tolerance=0.15).select("/page", model, catalog)
        assert [c.doc_id for c in chosen] == ["/almost"]

    def test_max_size(self, model, catalog):
        chosen = EmbeddingOnlyPolicy(max_size=100).select("/page", model, catalog)
        assert chosen == []

    def test_invalid_tolerance(self):
        with pytest.raises(PolicyError):
            EmbeddingOnlyPolicy(tolerance=1.0)


class TestTopKPolicy:
    def test_caps_count(self, model, catalog):
        chosen = TopKPolicy(k=1, min_probability=0.05).select(
            "/page", model, catalog
        )
        assert len(chosen) == 1
        assert chosen[0].doc_id == "/inline"

    def test_floor_applied(self, model, catalog):
        chosen = TopKPolicy(k=10, min_probability=0.6).select(
            "/page", model, catalog
        )
        assert [c.doc_id for c in chosen] == ["/inline"]

    def test_direct_mode(self, model, catalog):
        chosen = TopKPolicy(k=10, min_probability=0.05, use_closure=False).select(
            "/page", model, catalog
        )
        assert "/deep" not in [c.doc_id for c in chosen]

    def test_size_filter_applies_before_cap(self, model, catalog):
        chosen = TopKPolicy(k=3, min_probability=0.05, max_size=5_000).select(
            "/page", model, catalog
        )
        assert "/deep" not in [c.doc_id for c in chosen]
        assert len(chosen) == 2

    def test_invalid(self):
        with pytest.raises(PolicyError):
            TopKPolicy(k=0)
        with pytest.raises(PolicyError):
            TopKPolicy(k=1, min_probability=0.0)
        with pytest.raises(PolicyError):
            TopKPolicy(k=1, max_size=-1)
