"""Tests for client cache models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.speculation import (
    InfiniteCache,
    LRUCache,
    NoCache,
    SessionCache,
    make_cache_factory,
)


class TestNoCache:
    def test_never_contains(self):
        cache = NoCache()
        cache.insert("/a", 10)
        assert not cache.contains("/a")
        assert cache.digest() == frozenset()


class TestSessionCache:
    def test_retains_within_session(self):
        cache = SessionCache(60.0)
        cache.access(0.0)
        cache.insert("/a", 10)
        cache.access(30.0)
        assert cache.contains("/a")

    def test_purges_after_gap(self):
        cache = SessionCache(60.0)
        cache.access(0.0)
        cache.insert("/a", 10)
        cache.access(60.0)  # gap == timeout purges
        assert not cache.contains("/a")

    def test_gap_just_under_keeps(self):
        cache = SessionCache(60.0)
        cache.access(0.0)
        cache.insert("/a", 10)
        cache.access(59.999)
        assert cache.contains("/a")

    def test_zero_timeout_is_no_cache(self):
        cache = SessionCache(0.0)
        cache.access(0.0)
        cache.insert("/a", 10)
        cache.access(0.0)
        assert not cache.contains("/a")

    def test_infinite_never_purges(self):
        cache = InfiniteCache()
        cache.access(0.0)
        cache.insert("/a", 10)
        cache.access(1e12)
        assert cache.contains("/a")

    def test_digest(self):
        cache = SessionCache(math.inf)
        cache.access(0.0)
        cache.insert("/a", 1)
        cache.insert("/b", 1)
        assert cache.digest() == frozenset({"/a", "/b"})

    def test_backwards_time_rejected(self):
        cache = SessionCache(60.0)
        cache.access(100.0)
        with pytest.raises(SimulationError):
            cache.access(50.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            SessionCache(-1.0)


class TestLRUCache:
    def test_evicts_least_recent(self):
        cache = LRUCache(capacity_bytes=100)
        cache.insert("/a", 50)
        cache.insert("/b", 50)
        cache.contains("/a")  # touch /a
        cache.insert("/c", 50)  # evicts /b
        assert cache.contains("/a")
        assert not cache.contains("/b")
        assert cache.contains("/c")

    def test_oversized_not_cached(self):
        cache = LRUCache(capacity_bytes=100)
        cache.insert("/big", 500)
        assert not cache.contains("/big")
        assert cache.used_bytes == 0

    def test_reinsert_updates_size(self):
        cache = LRUCache(capacity_bytes=100)
        cache.insert("/a", 40)
        cache.insert("/a", 60)
        assert cache.used_bytes == 60

    def test_used_never_exceeds_capacity(self):
        cache = LRUCache(capacity_bytes=100)
        for i in range(20):
            cache.insert(f"/d{i}", 30)
            assert cache.used_bytes <= 100

    def test_session_purge(self):
        cache = LRUCache(capacity_bytes=100, session_timeout=10.0)
        cache.access(0.0)
        cache.insert("/a", 10)
        cache.access(20.0)
        assert not cache.contains("/a")
        assert cache.used_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            LRUCache(capacity_bytes=0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["/a", "/b", "/c", "/d", "/e"]),
                st.integers(min_value=1, max_value=60),
            ),
            max_size=60,
        )
    )
    def test_capacity_invariant_property(self, operations):
        cache = LRUCache(capacity_bytes=100)
        for doc, size in operations:
            cache.insert(doc, size)
            assert cache.used_bytes <= 100
            assert len(cache.digest()) <= 100  # trivially bounded


class TestFactory:
    def test_zero_timeout_no_cache(self):
        assert isinstance(make_cache_factory(0.0)(), NoCache)

    def test_finite_timeout_session_cache(self):
        cache = make_cache_factory(3600.0)()
        assert isinstance(cache, SessionCache)

    def test_infinite_timeout(self):
        cache = make_cache_factory(math.inf)()
        cache.access(0.0)
        cache.insert("/a", 1)
        cache.access(1e9)
        assert cache.contains("/a")

    def test_finite_capacity_lru(self):
        cache = make_cache_factory(math.inf, capacity_bytes=100)()
        assert isinstance(cache, LRUCache)

    def test_factory_produces_independent_caches(self):
        factory = make_cache_factory(math.inf)
        a, b = factory(), factory()
        a.access(0.0)
        a.insert("/x", 1)
        assert not b.contains("/x")

    def test_invalid(self):
        with pytest.raises(SimulationError):
            make_cache_factory(-1.0)
        with pytest.raises(SimulationError):
            make_cache_factory(0.0, capacity_bytes=0)
